"""Ablation — ACO parameter sensitivity.

Table II says "multiple values were tested, and the best parameters were
chosen"; this bench quantifies what the choice trades: colony size and
iteration count against scheduling time and achieved makespan, plus the
heuristic/tabu variants discussed in DESIGN.md §5.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import AntColonyScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_CLOUDLETS = 500
NUM_VMS = 100


@pytest.fixture(scope="module")
def scenario():
    return heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)


@pytest.mark.parametrize("num_ants", [5, 20, 50])
def test_aco_colony_size(benchmark, scenario, num_ants):
    def run():
        return CloudSimulation(
            scenario, AntColonyScheduler(num_ants=num_ants, max_iterations=3), seed=0
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["num_ants"] = num_ants


@pytest.mark.parametrize("iterations", [1, 3, 8])
def test_aco_iterations(benchmark, scenario, iterations):
    def run():
        return CloudSimulation(
            scenario,
            AntColonyScheduler(num_ants=10, max_iterations=iterations),
            seed=0,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["iterations"] = iterations


@pytest.mark.parametrize(
    "variant,kwargs",
    [
        ("static-eta", {"load_aware": False}),
        ("load-aware", {"load_aware": True}),
        ("tabu-pass", {"load_aware": False, "tabu": "pass"}),
        ("vm-pheromone", {"load_aware": False, "pheromone": "vm"}),
    ],
)
def test_aco_variants(benchmark, scenario, variant, kwargs):
    def run():
        return CloudSimulation(
            scenario,
            AntColonyScheduler(num_ants=10, max_iterations=3, **kwargs),
            seed=0,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["variant"] = variant


@pytest.mark.parametrize("rho", [0.1, 0.4, 0.9])
def test_aco_evaporation(benchmark, scenario, rho):
    def run():
        return CloudSimulation(
            scenario, AntColonyScheduler(num_ants=10, max_iterations=3, rho=rho), seed=0
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["rho"] = rho
