"""Ablation — space-shared vs time-shared cloudlet execution.

The paper does not state which CloudSim cloudlet scheduler it used; this
bench quantifies what changes.  Per-VM completion times are identical, so
the makespan (Fig. 4/6a) is execution-model-invariant — only the per-task
time distribution (and hence Fig. 6c's imbalance) moves.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import RoundRobinScheduler
from repro.schedulers.aco import AntColonyScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_CLOUDLETS = 400
NUM_VMS = 50


@pytest.mark.parametrize("model", ["space-shared", "time-shared"])
@pytest.mark.parametrize("name", ["basetest", "antcolony"])
def test_execution_model(benchmark, model, name):
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)
    scheduler = (
        RoundRobinScheduler()
        if name == "basetest"
        else AntColonyScheduler(num_ants=10, max_iterations=2)
    )

    def run():
        return CloudSimulation(
            scenario, scheduler, seed=0, execution_model=model
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["execution_model"] = model

    # Makespan invariance across execution models (same per-VM totals).
    other = "time-shared" if model == "space-shared" else "space-shared"
    scheduler2 = (
        RoundRobinScheduler()
        if name == "basetest"
        else AntColonyScheduler(num_ants=10, max_iterations=2)
    )
    counterpart = CloudSimulation(
        scenario, scheduler2, seed=0, execution_model=other
    ).run()
    assert result.makespan == pytest.approx(counterpart.makespan, rel=1e-9)
