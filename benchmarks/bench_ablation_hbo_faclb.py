"""Ablation — HBO load-balance factor and scout rule.

The paper attributes HBO's (mild) balance to "the load balancing factor it
used"; this bench sweeps ``facLB`` and the scout time bias, exposing the
cost/makespan/imbalance trade-off that DESIGN.md §5 discusses.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import HoneyBeeScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_CLOUDLETS = 800
NUM_VMS = 100


@pytest.fixture(scope="module")
def scenario():
    return heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)


@pytest.mark.parametrize("faclb", [0.25, 0.5, 0.75, 1.0])
def test_hbo_load_balance_factor(benchmark, scenario, faclb):
    def run():
        return CloudSimulation(
            scenario, HoneyBeeScheduler(load_balance_factor=faclb), seed=0
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["faclb"] = faclb


@pytest.mark.parametrize("bias", [0.0, 0.5, 1.0])
def test_hbo_scout_time_bias(benchmark, scenario, bias):
    def run():
        return CloudSimulation(
            scenario, HoneyBeeScheduler(scout_time_bias=bias), seed=0
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["scout_time_bias"] = bias
    # The completion-greedy scout must not be slower to schedule by much,
    # and must not worsen the makespan.
    if bias > 0:
        plain = CloudSimulation(scenario, HoneyBeeScheduler(), seed=0).run()
        assert result.makespan <= plain.makespan * 1.05
