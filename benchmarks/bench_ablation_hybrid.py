"""Ablation — the future-work hybrid scheduler vs its constituent modules.

The paper's conclusion proposes a hybrid that picks a behaviour from system
conditions; this bench verifies the dispatcher recovers each specialist's
headline metric on the scenario family that specialist wins.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import (
    AntColonyScheduler,
    HoneyBeeScheduler,
    HybridScheduler,
    RoundRobinScheduler,
)
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario

NUM_CLOUDLETS = 500


@pytest.mark.parametrize("objective", ["auto", "performance", "cost", "balance"])
def test_hybrid_objectives_heterogeneous(benchmark, objective):
    scenario = heterogeneous_scenario(100, NUM_CLOUDLETS, seed=0)
    hybrid = HybridScheduler(
        objective=objective,
        aco=AntColonyScheduler(num_ants=10, max_iterations=2),
    )

    def run():
        return CloudSimulation(scenario, hybrid, seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["objective"] = objective
    benchmark.extra_info["delegated_to"] = result.info["delegated_to"]


def test_hybrid_cost_objective_matches_hbo(benchmark):
    scenario = heterogeneous_scenario(100, NUM_CLOUDLETS, seed=0)

    def run():
        return CloudSimulation(scenario, HybridScheduler(objective="cost"), seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    hbo = CloudSimulation(scenario, HoneyBeeScheduler(), seed=0).run()
    assert result.total_cost == pytest.approx(hbo.total_cost)


def test_hybrid_auto_on_homogeneous_matches_base_test(benchmark):
    scenario = homogeneous_scenario(50, NUM_CLOUDLETS, seed=0)

    def run():
        return CloudSimulation(scenario, HybridScheduler(), seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    base = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
    assert result.makespan == pytest.approx(base.makespan)
    assert result.info["delegated_to"] == "basetest"
