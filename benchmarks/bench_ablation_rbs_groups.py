"""Ablation — RBS group count.

The paper blames RBS's curve fluctuations on the random walk lengths; the
group count controls how much randomness the walk can express.  This bench
sweeps it and records makespan/imbalance.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import RandomBiasedSamplingScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_CLOUDLETS = 800
NUM_VMS = 100


@pytest.mark.parametrize("groups", [1, 2, 4, 8, 16])
def test_rbs_group_count(benchmark, groups):
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)

    def run():
        return CloudSimulation(
            scenario, RandomBiasedSamplingScheduler(num_groups=groups), seed=0
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["groups"] = groups
    assert result.makespan > 0
