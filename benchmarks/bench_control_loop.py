"""Extension benchmarks — closed-loop MAPE-K control under chaos storms.

Quantifies what the control loop buys: every cell runs one timeline-driven
storm three ways (calm twin, self-healing only, MAPE-K controlled) on the
online engine and reduces the arms to
:class:`~repro.metrics.resilience.RecoveryMetrics`.  The efficacy contract
pinned here (and recorded in ``BENCH_control_loop.json`` by ``main``):
the loop strictly reduces both mean makespan degradation and the
SLA-violation count versus the no-control baseline.

Run as a script to regenerate the committed results file::

    PYTHONPATH=src:. python benchmarks/bench_control_loop.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cloud.chaos import StormReport, demo_storm_timeline, run_storm_suite
from repro.cloud.control import ControlConfig
from repro.schedulers.online import OnlineGreedyMCT, OnlineLeastLoaded
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_VMS = 12
NUM_CLOUDLETS = 150
SEEDS = (0, 1, 2)
SLA_SECONDS = 30.0

POLICIES = {
    "greedy-mct": OnlineGreedyMCT,
    "leastloaded": OnlineLeastLoaded,
}


def storm_control() -> ControlConfig:
    """The loop tuning the bench (and the committed JSON) is measured at."""
    return ControlConfig(
        cadence=0.5,
        cooldown=2.0,
        max_moves_per_cycle=2,
        imbalance_threshold=2.0,
        scale_up_backlog=1.5,
        standby_vms=2,
        sla_seconds=SLA_SECONDS,
    )


def run_bench_suite(seeds=SEEDS) -> StormReport:
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=5)
    timeline = demo_storm_timeline(NUM_VMS)
    return run_storm_suite(
        scenario,
        POLICIES,
        timeline,
        storm_control(),
        seeds=seeds,
        sla_seconds=SLA_SECONDS,
    )


def test_storm_suite_controlled_beats_uncontrolled(benchmark):
    """The headline claim: MAPE-K strictly reduces degradation and SLA misses."""
    report = benchmark.pedantic(run_bench_suite, rounds=1, iterations=1)
    controlled = report.mean_degradation("controlled")
    uncontrolled = report.mean_degradation("uncontrolled")
    benchmark.extra_info["controlled_degradation"] = round(controlled, 4)
    benchmark.extra_info["uncontrolled_degradation"] = round(uncontrolled, 4)
    benchmark.extra_info["controlled_sla"] = report.sla_violation_count("controlled")
    benchmark.extra_info["uncontrolled_sla"] = report.sla_violation_count(
        "uncontrolled"
    )
    assert controlled < uncontrolled
    assert report.sla_violation_count("controlled") < report.sla_violation_count(
        "uncontrolled"
    )


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_per_policy_degradation(benchmark, policy_name):
    """Per-policy view of the same contract on a single seed."""
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=5)
    timeline = demo_storm_timeline(NUM_VMS)

    def run():
        return run_storm_suite(
            scenario,
            {policy_name: POLICIES[policy_name]},
            timeline,
            storm_control(),
            seeds=(0,),
            sla_seconds=SLA_SECONDS,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    (cell,) = report.cells
    benchmark.extra_info["policy"] = policy_name
    benchmark.extra_info["controlled_degradation"] = round(
        cell.controlled_recovery.makespan_degradation, 4
    )
    benchmark.extra_info["uncontrolled_degradation"] = round(
        cell.uncontrolled_recovery.makespan_degradation, 4
    )
    assert (
        cell.controlled_recovery.makespan_degradation
        <= cell.uncontrolled_recovery.makespan_degradation
    )


def main(out: "str | Path" = Path(__file__).parent.parent / "BENCH_control_loop.json") -> Path:
    """Regenerate the committed efficacy record.

    The file pins the numbers the acceptance criteria reference: mean
    degradation and SLA-violation count per arm, plus per-cell rows.
    Deterministic — rerunning on the same code must reproduce it exactly.
    """
    report = run_bench_suite()
    controlled = report.mean_degradation("controlled")
    uncontrolled = report.mean_degradation("uncontrolled")
    if not controlled < uncontrolled:
        raise AssertionError(
            f"control loop failed to reduce degradation: "
            f"{controlled:.4f} vs {uncontrolled:.4f}"
        )
    if not (
        report.sla_violation_count("controlled")
        < report.sla_violation_count("uncontrolled")
    ):
        raise AssertionError("control loop failed to reduce SLA violations")
    payload = {
        "benchmark": "control_loop",
        "scenario": report.scenario_name,
        "timeline": report.timeline_name,
        "seeds": list(SEEDS),
        "sla_seconds": SLA_SECONDS,
        "control": report.control,
        "mean_degradation": {
            "controlled": controlled,
            "uncontrolled": uncontrolled,
        },
        "sla_violations": {
            "controlled": report.sla_violation_count("controlled"),
            "uncontrolled": report.sla_violation_count("uncontrolled"),
        },
        "rows": report.to_rows(),
    }
    out = Path(out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"mean degradation: controlled {controlled:.4f} vs "
        f"uncontrolled {uncontrolled:.4f}; SLA violations "
        f"{payload['sla_violations']['controlled']} vs "
        f"{payload['sla_violations']['uncontrolled']}"
    )
    print(f"written to {out}")
    return out


if __name__ == "__main__":
    main()
