"""Substrate benchmarks — DES kernel throughput and fast-path speedup.

Not a paper figure: these quantify the simulator substrate itself (events
per second through the kernel, event-queue operations, how much the
analytic fast path buys on the homogeneous scenario, the optimizer
kernel's delta-evaluation against full recomputes, and the parallel sweep
runner), guarding against performance regressions in the engine the whole
study stands on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.fast import FastSimulation
from repro.cloud.simulation import CloudSimulation
from repro.core.engine import Simulation
from repro.core.entity import Entity
from repro.core.eventqueue import EventQueue
from repro.core.tags import EventTag
from repro.experiments.figures import ScenarioFamily
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import SchedulerFactory
from repro.optim import FitnessKernel, IncrementalLoads
from repro.schedulers import RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


class PingPong(Entity):
    """Two of these bounce an event back and forth ``hops`` times."""

    def __init__(self, name: str, hops: int) -> None:
        super().__init__(name)
        self.hops = hops
        self.peer_id = -1

    def process_event(self, event) -> None:
        if event.data < self.hops:
            self.send(self.peer_id, 1.0, EventTag.NONE, data=event.data + 1)


def test_event_queue_push_pop(benchmark):
    def run():
        q = EventQueue()
        for i in range(10_000):
            q.push(time=float(i % 97), src=0, dst=0, tag=EventTag.NONE)
        while q:
            q.pop()

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kernel_ping_pong_throughput(benchmark):
    hops = 20_000

    def run():
        sim = Simulation()
        a, b = PingPong("a", hops), PingPong("b", hops)
        sim.register_all([a, b])
        a.peer_id, b.peer_id = b.id, a.id
        sim.schedule(delay=0.0, src=-1, dst=a.id, tag=EventTag.NONE, data=0)
        sim.run()
        return sim.events_processed

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["events"] = events
    assert events == hops + 1


@pytest.mark.parametrize("engine", ["des", "fast"])
def test_pipeline_engine_comparison(benchmark, engine):
    scenario = heterogeneous_scenario(100, 2000, seed=0)

    def run():
        cls = CloudSimulation if engine == "des" else FastSimulation
        return cls(scenario, RoundRobinScheduler(), seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["events"] = result.events_processed
    assert result.makespan > 0


@pytest.mark.parametrize("mode", ["full_recompute", "delta"])
def test_kernel_move_evaluation(benchmark, mode):
    """O(n) full makespan recompute vs O(1) amortised delta evaluation."""
    arrays = heterogeneous_scenario(50, 2000, seed=0).arrays()
    kernel = FitnessKernel(arrays)
    rng = np.random.default_rng(1)
    moves_i = rng.integers(0, arrays.num_cloudlets, size=2000)
    moves_j = rng.integers(0, arrays.num_vms, size=2000)

    def run_full():
        assignment = np.arange(arrays.num_cloudlets, dtype=np.int64) % arrays.num_vms
        best = kernel.makespan(assignment)
        for i, j in zip(moves_i, moves_j):
            old = assignment[i]
            assignment[i] = j
            candidate = kernel.makespan(assignment)
            if candidate < best:
                best = candidate
            else:
                assignment[i] = old
        return best

    def run_delta():
        state = IncrementalLoads(
            kernel, np.arange(arrays.num_cloudlets, dtype=np.int64) % arrays.num_vms
        )
        for i, j in zip(moves_i, moves_j):
            candidate = state.propose(int(i), int(j))
            if candidate is None:
                continue
            if candidate < state.makespan:
                state.commit()
            else:
                state.reject()
        return state.makespan

    best = benchmark.pedantic(
        run_full if mode == "full_recompute" else run_delta, rounds=3, iterations=1
    )
    benchmark.extra_info["mode"] = mode
    assert best > 0


@pytest.mark.parametrize("workers", [0, 2])
def test_sweep_runner_scaling(benchmark, workers):
    """Serial vs process-pool sweep over one small heterogeneous grid.

    On multi-core runners workers=2 should approach 2x; the records are
    bit-identical either way (pinned by tests/experiments/test_runner.py).
    """
    kwargs = dict(
        scenario_factory=ScenarioFamily("heterogeneous"),
        scheduler_factories={
            "basetest": SchedulerFactory("basetest"),
            "antcolony": SchedulerFactory(
                "antcolony", (("max_iterations", 2), ("num_ants", 8))
            ),
        },
        vm_counts=(10, 20, 30, 40),
        num_cloudlets=150,
        seeds=(0,),
        engine="des",
        workers=workers or None,
    )
    records = benchmark.pedantic(lambda: run_sweep(**kwargs), rounds=1, iterations=1)
    benchmark.extra_info["workers"] = workers
    assert len(records) == 8
