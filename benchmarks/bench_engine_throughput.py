"""Substrate benchmarks — DES kernel throughput and fast-path speedup.

Not a paper figure: these quantify the simulator substrate itself (events
per second through the kernel, event-queue operations, and how much the
analytic fast path buys on the homogeneous scenario), guarding against
performance regressions in the engine the whole study stands on.
"""

from __future__ import annotations

import pytest

from repro.cloud.fast import FastSimulation
from repro.cloud.simulation import CloudSimulation
from repro.core.engine import Simulation
from repro.core.entity import Entity
from repro.core.eventqueue import EventQueue
from repro.core.tags import EventTag
from repro.schedulers import RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario


class PingPong(Entity):
    """Two of these bounce an event back and forth ``hops`` times."""

    def __init__(self, name: str, hops: int) -> None:
        super().__init__(name)
        self.hops = hops
        self.peer_id = -1

    def process_event(self, event) -> None:
        if event.data < self.hops:
            self.send(self.peer_id, 1.0, EventTag.NONE, data=event.data + 1)


def test_event_queue_push_pop(benchmark):
    def run():
        q = EventQueue()
        for i in range(10_000):
            q.push(time=float(i % 97), src=0, dst=0, tag=EventTag.NONE)
        while q:
            q.pop()

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kernel_ping_pong_throughput(benchmark):
    hops = 20_000

    def run():
        sim = Simulation()
        a, b = PingPong("a", hops), PingPong("b", hops)
        sim.register_all([a, b])
        a.peer_id, b.peer_id = b.id, a.id
        sim.schedule(delay=0.0, src=-1, dst=a.id, tag=EventTag.NONE, data=0)
        sim.run()
        return sim.events_processed

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["events"] = events
    assert events == hops + 1


@pytest.mark.parametrize("engine", ["des", "fast"])
def test_pipeline_engine_comparison(benchmark, engine):
    scenario = heterogeneous_scenario(100, 2000, seed=0)

    def run():
        cls = CloudSimulation if engine == "des" else FastSimulation
        return cls(scenario, RoundRobinScheduler(), seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["events"] = result.events_processed
    assert result.makespan > 0
