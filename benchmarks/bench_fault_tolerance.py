"""Extension benchmarks — resilience under VM failures.

Measures makespan degradation and retry volume as VMs are killed
mid-batch, comparing blind round-robin recovery against failure-aware
rescheduling, plus a seeded chaos-suite smoke.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.chaos import ChaosConfig, run_chaos_suite
from repro.cloud.faults import VmFailure, run_with_failures
from repro.cloud.resilience import ImmediateRetry, run_resilient
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import GreedyMinCompletionScheduler, RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_VMS = 20
NUM_CLOUDLETS = 300


@pytest.mark.parametrize("num_failures", [0, 1, 4, 8])
def test_failure_cascade_degradation(benchmark, num_failures):
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)
    failures = [VmFailure(i, at_time=2.0 + i) for i in range(num_failures)]

    def run():
        return run_with_failures(scenario, RoundRobinScheduler(), failures, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["num_failures"] = num_failures
    benchmark.extra_info["retries"] = result.info["retries"]
    assert result.num_cloudlets == NUM_CLOUDLETS


@pytest.mark.parametrize("scheduler_factory", [RoundRobinScheduler, GreedyMinCompletionScheduler])
def test_failure_recovery_per_scheduler(benchmark, scheduler_factory):
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)
    failures = [VmFailure(0, at_time=3.0), VmFailure(7, at_time=6.0)]

    def run():
        return run_with_failures(scenario, scheduler_factory(), failures, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["retries"] = result.info["retries"]


@pytest.mark.parametrize("recovery", ["round-robin", "rescheduling"])
def test_recovery_strategy_degradation(benchmark, recovery):
    """Blind RR resubmission vs re-invoking the scheduler over survivors."""
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=5)
    scheduler = GreedyMinCompletionScheduler()
    baseline = CloudSimulation(scenario, scheduler, seed=5).run()
    failures = [VmFailure(0, at_time=2.0), VmFailure(4, at_time=3.0)]

    def run():
        if recovery == "round-robin":
            return run_with_failures(scenario, scheduler, failures, seed=5)
        return run_resilient(
            scenario, scheduler, failures, seed=5,
            retry_policy=ImmediateRetry(max_attempts=8),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["recovery"] = recovery
    benchmark.extra_info["degradation"] = result.makespan / baseline.makespan
    benchmark.extra_info["retries"] = result.info["retries"]


def test_chaos_suite_smoke(benchmark):
    """Seeded crash+straggler chaos plan across both recovery strategies."""
    scenario = heterogeneous_scenario(12, 150, seed=0)
    config = ChaosConfig(num_vm_failures=2, num_stragglers=1, recover_fraction=0.5)

    def run():
        return run_chaos_suite(
            scenario,
            {"greedy": GreedyMinCompletionScheduler()},
            seeds=(0,),
            config=config,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    cell = report.cells[0]
    assert cell.rescheduling_recovery.completed_fraction == 1.0
    benchmark.extra_info["rr_degradation"] = cell.round_robin_recovery.makespan_degradation
    benchmark.extra_info["resched_degradation"] = (
        cell.rescheduling_recovery.makespan_degradation
    )
    benchmark.extra_info["mttr"] = cell.rescheduling_recovery.mttr
