"""Extension benchmarks — resilience under VM failures.

Measures makespan degradation and retry volume as VMs are killed
mid-batch, with the round-robin recovery broker.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.faults import VmFailure, run_with_failures
from repro.schedulers import GreedyMinCompletionScheduler, RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_VMS = 20
NUM_CLOUDLETS = 300


@pytest.mark.parametrize("num_failures", [0, 1, 4, 8])
def test_failure_cascade_degradation(benchmark, num_failures):
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)
    failures = [VmFailure(i, at_time=2.0 + i) for i in range(num_failures)]

    def run():
        return run_with_failures(scenario, RoundRobinScheduler(), failures, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["num_failures"] = num_failures
    benchmark.extra_info["retries"] = result.info["retries"]
    assert result.num_cloudlets == NUM_CLOUDLETS


@pytest.mark.parametrize("scheduler_factory", [RoundRobinScheduler, GreedyMinCompletionScheduler])
def test_failure_recovery_per_scheduler(benchmark, scheduler_factory):
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)
    failures = [VmFailure(0, at_time=3.0), VmFailure(7, at_time=6.0)]

    def run():
        return run_with_failures(scenario, scheduler_factory(), failures, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["retries"] = result.info["retries"]
