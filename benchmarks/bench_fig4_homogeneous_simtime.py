"""Fig. 4 — homogeneous simulation time (makespan) per scheduler.

Benchmarks the full pipeline (schedule + analytic execution) on the
Table III/IV homogeneous scenario at two fleet sizes; ``extra_info``
records the makespan series the paper plots.  Expectation (Fig. 4): every
scheduler's makespan equals the Base Test optimum and falls with fleet
size.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.fast import FastSimulation
from repro.schedulers import (
    AntColonyScheduler,
    HoneyBeeScheduler,
    RandomBiasedSamplingScheduler,
    RoundRobinScheduler,
)
from repro.workloads.homogeneous import homogeneous_scenario

NUM_CLOUDLETS = 5_000
VM_POINTS = (200, 800)


def make_scheduler(name: str):
    return {
        "basetest": lambda: RoundRobinScheduler(),
        "antcolony": lambda: AntColonyScheduler(
            num_ants=5, max_iterations=2, tabu="pass", pheromone="vm"
        ),
        "honeybee": lambda: HoneyBeeScheduler(),
        "rbs": lambda: RandomBiasedSamplingScheduler(),
    }[name]()


@pytest.mark.parametrize("num_vms", VM_POINTS)
@pytest.mark.parametrize("name", ["basetest", "antcolony", "honeybee", "rbs"])
def test_fig4_homogeneous_makespan(benchmark, name, num_vms):
    scenario = homogeneous_scenario(num_vms, NUM_CLOUDLETS, seed=0)

    def run():
        return FastSimulation(scenario, make_scheduler(name), seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["num_vms"] = num_vms
    # Fig. 4's claim: convergence to the cyclic optimum.
    optimum = -(-NUM_CLOUDLETS // num_vms) * 250.0 / 1000.0
    assert result.makespan <= optimum * 1.1
