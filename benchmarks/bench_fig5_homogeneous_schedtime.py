"""Fig. 5 — homogeneous scheduling time per scheduler.

Here the benchmark *timing is the figure's metric*: the wall-clock cost of
each scheduler's decision on the homogeneous batch.  Expectation (Fig. 5):
Base Test orders of magnitude below ACO/HBO/RBS.
"""

from __future__ import annotations

import pytest

from repro.schedulers import (
    AntColonyScheduler,
    HoneyBeeScheduler,
    RandomBiasedSamplingScheduler,
    RoundRobinScheduler,
)
from repro.schedulers.base import SchedulingContext
from repro.workloads.homogeneous import homogeneous_scenario

NUM_CLOUDLETS = 5_000
NUM_VMS = 500


@pytest.fixture(scope="module")
def context():
    scenario = homogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)
    return SchedulingContext.from_scenario(scenario, seed=0)


def make_scheduler(name: str):
    return {
        "basetest": lambda: RoundRobinScheduler(),
        "antcolony": lambda: AntColonyScheduler(
            num_ants=5, max_iterations=2, tabu="pass", pheromone="vm"
        ),
        "honeybee": lambda: HoneyBeeScheduler(),
        "rbs": lambda: RandomBiasedSamplingScheduler(),
    }[name]()


@pytest.mark.parametrize("name", ["basetest", "antcolony", "honeybee", "rbs"])
def test_fig5_scheduling_time(benchmark, context, name):
    scheduler = make_scheduler(name)
    result = benchmark.pedantic(
        lambda: scheduler.schedule_checked(context), rounds=3, iterations=1
    )
    benchmark.extra_info["scheduler"] = name
    benchmark.extra_info["num_vms"] = NUM_VMS
    benchmark.extra_info["num_cloudlets"] = NUM_CLOUDLETS
    assert result.assignment.shape == (NUM_CLOUDLETS,)
