"""Fig. 6a — heterogeneous simulation time (makespan) per scheduler.

Benchmarks the full DES pipeline on the Table V/VI/VII heterogeneous
scenario.  Expectation: ACO lowest makespan, HBO between ACO and Base
Test, RBS ≈ Base Test.  The figure's makespan values land in
``extra_info``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import (
    AntColonyScheduler,
    HoneyBeeScheduler,
    RandomBiasedSamplingScheduler,
    RoundRobinScheduler,
)
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_CLOUDLETS = 800
VM_POINTS = (50, 450)


def make_scheduler(name: str):
    return {
        "basetest": lambda: RoundRobinScheduler(),
        "antcolony": lambda: AntColonyScheduler(num_ants=20, max_iterations=3),
        "honeybee": lambda: HoneyBeeScheduler(),
        "rbs": lambda: RandomBiasedSamplingScheduler(),
    }[name]()


@pytest.mark.parametrize("num_vms", VM_POINTS)
@pytest.mark.parametrize("name", ["basetest", "antcolony", "honeybee", "rbs"])
def test_fig6a_heterogeneous_makespan(benchmark, name, num_vms):
    scenario = heterogeneous_scenario(num_vms, NUM_CLOUDLETS, seed=0)

    def run():
        return CloudSimulation(scenario, make_scheduler(name), seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["num_vms"] = num_vms
    # The base test is never better than the ACO on this scenario family;
    # assert the per-scheduler sanity that holds cell-by-cell.
    assert result.makespan > 0
    if name == "antcolony":
        base = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
        assert result.makespan < base.makespan
