"""Fig. 6b — heterogeneous scheduling time per scheduler.

The benchmark timing is the figure's metric.  Expectation:
Base Test < RBS < HBO < ACO.
"""

from __future__ import annotations

import pytest

from repro.schedulers import (
    AntColonyScheduler,
    HoneyBeeScheduler,
    RandomBiasedSamplingScheduler,
    RoundRobinScheduler,
)
from repro.schedulers.base import SchedulingContext
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_CLOUDLETS = 800
NUM_VMS = 450


@pytest.fixture(scope="module")
def context():
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)
    return SchedulingContext.from_scenario(scenario, seed=0)


def make_scheduler(name: str):
    return {
        "basetest": lambda: RoundRobinScheduler(),
        "antcolony": lambda: AntColonyScheduler(num_ants=20, max_iterations=3),
        "honeybee": lambda: HoneyBeeScheduler(),
        "rbs": lambda: RandomBiasedSamplingScheduler(),
    }[name]()


@pytest.mark.parametrize("name", ["basetest", "rbs", "honeybee", "antcolony"])
def test_fig6b_scheduling_time(benchmark, context, name):
    scheduler = make_scheduler(name)
    result = benchmark.pedantic(
        lambda: scheduler.schedule_checked(context), rounds=3, iterations=1
    )
    benchmark.extra_info["scheduler"] = name
    # Iterative schedulers publish a convergence trace; record how many
    # evaluations the timed run consumed so the figure can be read as
    # time-per-evaluation, not just endpoint wall clock.
    trace = result.info.get("convergence")
    if trace is not None:
        benchmark.extra_info["evaluations"] = trace["evaluations"][-1]
        benchmark.extra_info["best_fitness"] = trace["best_fitness"][-1]
    assert result.assignment.shape == (NUM_CLOUDLETS,)
