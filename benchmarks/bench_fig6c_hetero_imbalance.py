"""Fig. 6c — heterogeneous degree of time imbalance per scheduler.

Benchmarks the pipeline and records Eq. 13 per scheduler.  Expectation:
the fast-VM-seeking metaheuristics (ACO, HBO) sit above the count-spreading
policies (Base Test, RBS) — see EXPERIMENTS.md for the deviation note on
the paper's exact internal ordering.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import (
    AntColonyScheduler,
    HoneyBeeScheduler,
    RandomBiasedSamplingScheduler,
    RoundRobinScheduler,
)
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_CLOUDLETS = 800
NUM_VMS = 150


def make_scheduler(name: str):
    return {
        "basetest": lambda: RoundRobinScheduler(),
        "antcolony": lambda: AntColonyScheduler(num_ants=20, max_iterations=3),
        "honeybee": lambda: HoneyBeeScheduler(),
        "rbs": lambda: RandomBiasedSamplingScheduler(),
    }[name]()


@pytest.mark.parametrize("name", ["basetest", "antcolony", "honeybee", "rbs"])
def test_fig6c_time_imbalance(benchmark, name):
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)

    def run():
        return CloudSimulation(scenario, make_scheduler(name), seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    assert result.time_imbalance >= 0
    if name == "antcolony":
        base = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
        assert result.time_imbalance > base.time_imbalance
