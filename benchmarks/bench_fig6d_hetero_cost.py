"""Fig. 6d — heterogeneous processing cost per scheduler.

Benchmarks the pipeline and records the Section VI-C4 processing cost.
Expectation: HBO strictly cheapest; the other three clustered above it.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import (
    AntColonyScheduler,
    HoneyBeeScheduler,
    RandomBiasedSamplingScheduler,
    RoundRobinScheduler,
)
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_CLOUDLETS = 800
NUM_VMS = 150


def make_scheduler(name: str):
    return {
        "basetest": lambda: RoundRobinScheduler(),
        "antcolony": lambda: AntColonyScheduler(num_ants=20, max_iterations=3),
        "honeybee": lambda: HoneyBeeScheduler(),
        "rbs": lambda: RandomBiasedSamplingScheduler(),
    }[name]()


@pytest.mark.parametrize("name", ["basetest", "antcolony", "honeybee", "rbs"])
def test_fig6d_processing_cost(benchmark, name):
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)

    def run():
        return CloudSimulation(scenario, make_scheduler(name), seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    assert result.total_cost > 0
    if name == "honeybee":
        base = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
        assert result.total_cost < base.total_cost
