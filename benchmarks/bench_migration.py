"""Extension benchmarks — live migration and runtime consolidation.

Measures the consolidation controller packing a spread fleet at runtime:
how many hosts stay active, how many migrations it takes, and that
cloudlet timing is migration-invariant.
"""

from __future__ import annotations

import pytest

from repro.cloud.broker import DatacenterBroker
from repro.cloud.cloudlet import Cloudlet
from repro.cloud.datacenter import Datacenter
from repro.cloud.host import Host
from repro.cloud.migration import ConsolidationController
from repro.cloud.vm import Vm
from repro.core.engine import Simulation


def build(num_hosts: int, num_vms: int, length: float):
    sim = Simulation()
    dc = Datacenter(
        "dc",
        hosts=[
            Host(host_id=i, mips_per_pe=2000.0, pes=8, ram=1e6, bw=1e6, storage=1e9)
            for i in range(num_hosts)
        ],
    )
    sim.register(dc)
    vms = [Vm(vm_id=i, mips=1000.0) for i in range(num_vms)]
    cloudlets = [Cloudlet(cloudlet_id=i, length=length) for i in range(num_vms)]
    broker = DatacenterBroker(
        "broker",
        vms=vms,
        cloudlets=cloudlets,
        assignment=list(range(num_vms)),
        vm_placement={i: dc.id for i in range(num_vms)},
    )
    sim.register(broker)
    return sim, dc, broker


@pytest.mark.parametrize("num_hosts,num_vms", [(8, 8), (16, 16)])
def test_runtime_consolidation(benchmark, num_hosts, num_vms):
    def run():
        sim, dc, broker = build(num_hosts, num_vms, length=100_000.0)
        controller = ConsolidationController(
            "packer", dc, interval=2.0, max_rounds=30, moves_per_round=4
        )
        sim.register(controller)
        sim.run()
        return dc, broker, controller

    dc, broker, controller = benchmark.pedantic(run, rounds=1, iterations=1)
    active = sum(1 for h in dc.hosts if h.vm_count > 0)
    benchmark.extra_info["active_hosts_final"] = active
    benchmark.extra_info["migrations"] = dc.migrations_completed
    assert broker.all_finished
    assert active < num_hosts  # packing happened


def test_migration_timing_invariance(benchmark):
    def run():
        sim, dc, broker = build(4, 4, length=50_000.0)
        controller = ConsolidationController("packer", dc, interval=1.0, max_rounds=10)
        sim.register(controller)
        sim.run()
        return [c.finish_time for c in broker.cloudlets]

    finishes = benchmark.pedantic(run, rounds=1, iterations=1)
    # Post-copy live migration never pauses execution: 50 s exactly.
    assert all(f == pytest.approx(50.0) for f in finishes)
