"""Extension benchmarks — online policies under arrivals and SLA outcomes.

Not paper figures: these cover the dynamic-demand extension (DESIGN.md
"optional/extension features"): online policy throughput under Poisson
arrivals, and deadline compliance of the EDF scheduler vs the Base Test.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_result
from repro.cloud.online import OnlineCloudSimulation
from repro.cloud.simulation import CloudSimulation
from repro.metrics.sla import relative_deadlines, sla_report
from repro.schedulers import RoundRobinScheduler
from repro.schedulers.deadline import DeadlineAwareScheduler
from repro.schedulers.online import (
    BatchAdapter,
    OnlineGreedyMCT,
    OnlineLeastLoaded,
    OnlineRoundRobin,
)
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.heterogeneous import heterogeneous_scenario

NUM_VMS = 30
NUM_CLOUDLETS = 400


@pytest.mark.parametrize(
    "label,policy_factory",
    [
        ("roundrobin", OnlineRoundRobin),
        ("leastloaded", OnlineLeastLoaded),
        ("greedy-mct", OnlineGreedyMCT),
        ("batch-adapter", lambda: BatchAdapter(RoundRobinScheduler())),
    ],
)
def test_online_policy_under_poisson(benchmark, label, policy_factory):
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)

    def run():
        return OnlineCloudSimulation(
            scenario, policy_factory(), arrivals=PoissonArrivals(rate=50.0), seed=0
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    benchmark.extra_info["policy"] = label
    assert result.num_cloudlets == NUM_CLOUDLETS


@pytest.mark.parametrize("slack", [2.0, 6.0])
def test_deadline_scheduler_sla(benchmark, slack):
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=0)
    arr = scenario.arrays()
    deadlines = relative_deadlines(
        arr.cloudlet_length, float(arr.vm_mips.mean()), slack_factor=slack
    )

    def run():
        return CloudSimulation(
            scenario, DeadlineAwareScheduler(deadlines=deadlines), seed=0
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(benchmark, result)
    report = sla_report(result.finish_times, deadlines)
    benchmark.extra_info["slack"] = slack
    benchmark.extra_info["violation_rate"] = round(report.violation_rate, 4)
    benchmark.extra_info["mean_tardiness"] = round(report.mean_tardiness, 4)
    rr = CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run()
    rr_report = sla_report(rr.finish_times, deadlines)
    assert report.mean_tardiness <= rr_report.mean_tardiness
