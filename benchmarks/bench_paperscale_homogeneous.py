"""Paper-scale homogeneous points on the streaming engine (Figs. 4/5).

The headline homogeneous study runs 1,000,000 cloudlets; the in-memory
engines materialise O(n) per-cloudlet arrays and records, so those points
were previously out of reach on commodity memory.  These benchmarks
exercise the streaming path at that scale and record what the paper's
tables need: throughput (cloudlets scheduled+executed per second) and the
process's peak RSS, per chunk size.

``--benchmark-only`` selects these; the 1M point runs a single round (the
workload itself is the repetition).

Run as a script to regenerate the committed record
(``BENCH_paperscale.json``): the 10M serial-vs-sharded point plus the
serial-only 100M point the constant-memory assigners unlock::

    PYTHONPATH=src:. python benchmarks/bench_paperscale_homogeneous.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cloud.fast import StreamingSimulation, peak_rss_bytes, shutdown_shard_pool
from repro.schedulers.streaming import make_streaming_scheduler
from repro.workloads.streaming import homogeneous_stream

#: the paper's headline workload size.
PAPER_CLOUDLETS = 1_000_000
#: the ROADMAP's next decade, exercised serial vs sharded.
TENX_CLOUDLETS = 10_000_000
#: two decades past the paper — reachable only because every assigner is
#: O(num_vms + chunk_size); run serial-only (the point is memory, and
#: the RBS plan pre-pass would double the serial walk on few cores).
HUNDREDM_CLOUDLETS = 100_000_000
#: Fig. 4a/5a's smallest fleet (keeps per-VM accumulators tiny).
NUM_VMS = 1_000
SEED = 0
BENCH_SHARDS = 4
SCHEDULERS = ("basetest", "greedy-mct", "honeybee", "rbs")

#: chunk-size sweep: memory/throughput trade-off, metrics invariant.
CHUNK_SIZES = (16_384, 65_536, 262_144)


def _record(benchmark, result, elapsed_hint: float | None = None) -> None:
    benchmark.extra_info["scheduler"] = result.scheduler_name
    benchmark.extra_info["num_cloudlets"] = result.num_cloudlets
    benchmark.extra_info["chunk_size"] = result.chunk_size
    benchmark.extra_info["num_chunks"] = result.num_chunks
    benchmark.extra_info["makespan"] = round(result.makespan, 4)
    benchmark.extra_info["time_imbalance"] = round(result.time_imbalance, 6)
    benchmark.extra_info["total_cost"] = round(result.total_cost, 2)
    benchmark.extra_info["peak_rss_mb"] = round(result.peak_rss_bytes / 2**20, 1)
    stats = getattr(benchmark, "stats", None)
    mean = getattr(getattr(stats, "stats", None), "mean", None) or elapsed_hint
    if mean:
        benchmark.extra_info["throughput_cloudlets_per_s"] = round(
            result.num_cloudlets / mean
        )


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_paperscale_1m_roundrobin_chunk_sweep(benchmark, chunk_size):
    """1M-cloudlet round-robin point at each chunk size.

    Chunk size must not change any metric (pinned by the property suite);
    here it only moves the throughput/peak-RSS trade-off being measured.
    """
    stream = homogeneous_stream(
        NUM_VMS, PAPER_CLOUDLETS, seed=SEED, chunk_size=chunk_size
    )

    def run():
        return StreamingSimulation(
            stream, make_streaming_scheduler("basetest"), seed=SEED
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(benchmark, result)
    # Fig. 4a at 1,000 VMs: ceil(1e6 / 1e3) * 250 / 1000 = 250 s exactly.
    assert result.makespan == 250.0
    assert result.num_chunks == -(-PAPER_CLOUDLETS // chunk_size)


@pytest.mark.parametrize("name", ["basetest", "greedy-mct", "honeybee", "rbs"])
def test_paperscale_200k_scheduler_sweep(benchmark, name):
    """All four streamed schedulers at a 200k-cloudlet point.

    Scaled to a fifth of the paper's workload so the full scheduler sweep
    stays CI-sized; throughput and RSS per scheduler land in extra_info.
    """
    stream = homogeneous_stream(NUM_VMS, 200_000, seed=SEED, chunk_size=65_536)

    def run():
        return StreamingSimulation(
            stream, make_streaming_scheduler(name), seed=SEED
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(benchmark, result)
    # Homogeneous fleet: every scheduler converges to the cyclic optimum.
    optimum = -(-200_000 // NUM_VMS) * 250.0 / 1000.0
    assert result.makespan <= optimum * 1.1
    assert result.peak_rss_bytes == peak_rss_bytes()


@pytest.mark.parametrize("shards", [None, BENCH_SHARDS])
def test_paperscale_10m_serial_vs_sharded(benchmark, shards):
    """The 10M-cloudlet point, serially and through the shard pool.

    Pins the refactor's contract at the next decade of scale: the sharded
    run must reproduce the serial metrics bit-for-bit (constant-workload
    merges are exact at any shard count) while staying inside the bounded
    memory envelope.  Relative timing depends on core count — the
    committed record lives in ``BENCH_paperscale.json`` (see ``main``).
    """
    stream = homogeneous_stream(
        NUM_VMS, TENX_CLOUDLETS, seed=SEED, chunk_size=65_536
    )

    def run():
        return StreamingSimulation(
            stream, make_streaming_scheduler("basetest"), seed=SEED, shards=shards
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(benchmark, result)
    benchmark.extra_info["shards"] = result.info["shards"]
    # ceil(1e7 / 1e3) * 250 / 1000 = 2500 s exactly, any shard count.
    assert result.makespan == 2500.0
    if shards:
        shutdown_shard_pool()


def _bench_point(
    name: str,
    shards: int | None,
    rounds: int = 2,
    num_cloudlets: int = TENX_CLOUDLETS,
):
    """Best-of-``rounds`` timing for one (scheduler, mode, scale) cell."""
    stream = homogeneous_stream(
        NUM_VMS, num_cloudlets, seed=SEED, chunk_size=65_536
    )
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = StreamingSimulation(
            stream, make_streaming_scheduler(name), seed=SEED, shards=shards
        ).run()
        best = min(best, time.perf_counter() - t0)
    return result, best


def sweep_rows(
    num_cloudlets: int,
    shards: int | None = BENCH_SHARDS,
    rounds: int = 2,
    schedulers: "tuple[str, ...]" = SCHEDULERS,
) -> list[dict]:
    """One recorded row per scheduler at ``num_cloudlets``.

    With ``shards`` set, every row re-verifies the shard contract
    (bit-identical metrics and per-VM accumulators) before its timings
    are recorded, so the file can never pin a speedup obtained from a
    divergent result.  ``shards=None`` records serial-only rows (the
    100M point and the regression gauntlet's reduced-scale runs).
    """
    rows = []
    for name in schedulers:
        serial, serial_s = _bench_point(name, None, rounds, num_cloudlets)
        row = {
            "scheduler": name,
            "serial_seconds": round(serial_s, 3),
            "serial_throughput_cloudlets_per_s": round(num_cloudlets / serial_s),
            "serial_peak_rss_mb": round(serial.peak_rss_bytes / 2**20, 1),
            "makespan": serial.makespan,
        }
        if shards:
            sharded, sharded_s = _bench_point(name, shards, rounds, num_cloudlets)
            for field in ("makespan", "time_imbalance", "total_cost"):
                a, b = getattr(serial, field), getattr(sharded, field)
                if a != b:
                    raise AssertionError(
                        f"{name}: sharded {field} diverged: {a!r} != {b!r}"
                    )
            if serial.vm_finish_times.tobytes() != sharded.vm_finish_times.tobytes():
                raise AssertionError(f"{name}: sharded vm_finish_times diverged")
            if serial.vm_costs.tobytes() != sharded.vm_costs.tobytes():
                raise AssertionError(f"{name}: sharded vm_costs diverged")
            row.update(
                {
                    "sharded_seconds": round(sharded_s, 3),
                    "speedup_sharded_vs_serial": round(serial_s / sharded_s, 3),
                    "sharded_throughput_cloudlets_per_s": round(
                        num_cloudlets / sharded_s
                    ),
                    "sharded_peak_rss_mb": round(sharded.peak_rss_bytes / 2**20, 1),
                    "bit_identical": True,
                }
            )
            print(
                f"{name:12s} {num_cloudlets:>11,} serial {serial_s:6.2f}s  "
                f"sharded({shards}) {sharded_s:6.2f}s  bit-identical"
            )
        else:
            print(
                f"{name:12s} {num_cloudlets:>11,} serial {serial_s:6.2f}s  "
                f"peak RSS {row['serial_peak_rss_mb']:.0f} MiB"
            )
        rows.append(row)
    return rows


def main(
    out: "str | Path" = Path(__file__).parent.parent / "BENCH_paperscale.json",
    with_hundredm: bool = True,
) -> Path:
    """Regenerate the committed paper-scale streaming record.

    Two points: the 10M decade serial-vs-sharded (the shard contract and
    its overhead/speedup columns), and the 100M decade serial-only — the
    scale the constant-memory assigners unlock, recorded against the
    512 MiB smoke budget.  ``cpu_count`` is recorded because the speedup
    column only means something relative to it: with one core the pool
    serialises and sharding is pure overhead; parallel speedup needs
    >= ``shards`` cores.
    """
    points = [
        {
            "num_cloudlets": TENX_CLOUDLETS,
            "shards": BENCH_SHARDS,
            "rows": sweep_rows(TENX_CLOUDLETS, BENCH_SHARDS, rounds=2),
        }
    ]
    shutdown_shard_pool()
    if with_hundredm:
        points.append(
            {
                "num_cloudlets": HUNDREDM_CLOUDLETS,
                "shards": None,
                "rows": sweep_rows(HUNDREDM_CLOUDLETS, None, rounds=1),
            }
        )
    payload = {
        "benchmark": "paperscale_streaming",
        "num_vms": NUM_VMS,
        "chunk_size": 65_536,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "note": (
            "speedup_sharded_vs_serial folds two effects: pool parallelism "
            "(needs >= 'shards' cores; cpu_count is recorded for that) and "
            "lean shard execution — on constant workloads multi-shard runs "
            "skip the per-chunk float folds the merge rebuilds from counts, "
            "so sharding can beat serial even on one core. rbs is the "
            "exception: its walk is strictly sequential, so the carry "
            "planner re-walks the whole horizon serially before workers "
            "start, and one-core sharding stays a net loss. peak RSS is the "
            "ru_maxrss high-water mark, max across parent and shard workers; "
            "the 100M point runs serial-only and must sit inside the 512 MiB "
            "stream-smoke budget."
        ),
        "points": points,
    }
    out = Path(out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"written to {out}")
    return out


if __name__ == "__main__":
    main()
