"""Paper-scale homogeneous points on the streaming engine (Figs. 4/5).

The headline homogeneous study runs 1,000,000 cloudlets; the in-memory
engines materialise O(n) per-cloudlet arrays and records, so those points
were previously out of reach on commodity memory.  These benchmarks
exercise the streaming path at that scale and record what the paper's
tables need: throughput (cloudlets scheduled+executed per second) and the
process's peak RSS, per chunk size.

``--benchmark-only`` selects these; the 1M point runs a single round (the
workload itself is the repetition).
"""

from __future__ import annotations

import pytest

from repro.cloud.fast import StreamingSimulation, peak_rss_bytes
from repro.schedulers.streaming import make_streaming_scheduler
from repro.workloads.streaming import homogeneous_stream

#: the paper's headline workload size.
PAPER_CLOUDLETS = 1_000_000
#: Fig. 4a/5a's smallest fleet (keeps per-VM accumulators tiny).
NUM_VMS = 1_000
SEED = 0

#: chunk-size sweep: memory/throughput trade-off, metrics invariant.
CHUNK_SIZES = (16_384, 65_536, 262_144)


def _record(benchmark, result, elapsed_hint: float | None = None) -> None:
    benchmark.extra_info["scheduler"] = result.scheduler_name
    benchmark.extra_info["num_cloudlets"] = result.num_cloudlets
    benchmark.extra_info["chunk_size"] = result.chunk_size
    benchmark.extra_info["num_chunks"] = result.num_chunks
    benchmark.extra_info["makespan"] = round(result.makespan, 4)
    benchmark.extra_info["time_imbalance"] = round(result.time_imbalance, 6)
    benchmark.extra_info["total_cost"] = round(result.total_cost, 2)
    benchmark.extra_info["peak_rss_mb"] = round(result.peak_rss_bytes / 2**20, 1)
    stats = getattr(benchmark, "stats", None)
    mean = getattr(getattr(stats, "stats", None), "mean", None) or elapsed_hint
    if mean:
        benchmark.extra_info["throughput_cloudlets_per_s"] = round(
            result.num_cloudlets / mean
        )


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_paperscale_1m_roundrobin_chunk_sweep(benchmark, chunk_size):
    """1M-cloudlet round-robin point at each chunk size.

    Chunk size must not change any metric (pinned by the property suite);
    here it only moves the throughput/peak-RSS trade-off being measured.
    """
    stream = homogeneous_stream(
        NUM_VMS, PAPER_CLOUDLETS, seed=SEED, chunk_size=chunk_size
    )

    def run():
        return StreamingSimulation(
            stream, make_streaming_scheduler("basetest"), seed=SEED
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(benchmark, result)
    # Fig. 4a at 1,000 VMs: ceil(1e6 / 1e3) * 250 / 1000 = 250 s exactly.
    assert result.makespan == 250.0
    assert result.num_chunks == -(-PAPER_CLOUDLETS // chunk_size)


@pytest.mark.parametrize("name", ["basetest", "greedy-mct", "honeybee", "rbs"])
def test_paperscale_200k_scheduler_sweep(benchmark, name):
    """All four streamed schedulers at a 200k-cloudlet point.

    Scaled to a fifth of the paper's workload so the full scheduler sweep
    stays CI-sized; throughput and RSS per scheduler land in extra_info.
    """
    stream = homogeneous_stream(NUM_VMS, 200_000, seed=SEED, chunk_size=65_536)

    def run():
        return StreamingSimulation(
            stream, make_streaming_scheduler(name), seed=SEED
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(benchmark, result)
    # Homogeneous fleet: every scheduler converges to the cyclic optimum.
    optimum = -(-200_000 // NUM_VMS) * 250.0 / 1000.0
    assert result.makespan <= optimum * 1.1
    assert result.peak_rss_bytes == peak_rss_bytes()
