"""Result cache: warm fig6b sweep vs cold, and the ≥5× replay contract.

The acceptance bar for the cache is concrete: a warm re-run of the
fig6b heterogeneous scheduling-time sweep against a populated cache must
be at least 5× faster than the cold run, with records bit-identical to
the cold run's (wall-clock fields included — a hit replays the cold
run's measured value).  ``test_warm_sweep_speedup`` pins exactly that;
the two pytest-benchmark cases report the cold and warm wall clocks for
the benchmark dashboard.
"""

from __future__ import annotations

import time

import pytest

from repro.cache import ResultCache
from repro.experiments.figures import get_experiment
from repro.experiments.runner import run_sweep


def _fig6b_sweep_kwargs():
    definition = get_experiment("fig6b")
    config = definition.config("quick")
    return dict(
        scenario_factory=definition.scenario_factory(),
        scheduler_factories=config.make_schedulers(definition.schedulers),
        vm_counts=config.vm_counts,
        num_cloudlets=config.num_cloudlets,
        seeds=config.seeds,
        engine=definition.engine,
    )


def test_warm_sweep_speedup(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    kwargs = _fig6b_sweep_kwargs()

    t0 = time.perf_counter()
    cold = run_sweep(**kwargs, cache=cache)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_sweep(**kwargs, cache=cache)
    warm_s = time.perf_counter() - t0

    assert warm == cold  # byte-equal records, wall clock included
    assert cache.misses == len(cold) and cache.hits == len(cold)
    assert warm_s * 5 <= cold_s, (
        f"warm sweep not ≥5× faster: cold={cold_s:.3f}s warm={warm_s:.3f}s"
    )


def test_cold_sweep(benchmark, tmp_path):
    kwargs = _fig6b_sweep_kwargs()

    def cold():
        # A fresh directory per round keeps every timing genuinely cold.
        root = tmp_path / f"cold-{time.monotonic_ns()}"
        return run_sweep(**kwargs, cache=ResultCache(root))

    records = benchmark.pedantic(cold, rounds=2, iterations=1)
    benchmark.extra_info["cells"] = len(records)


def test_warm_sweep(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "warm")
    kwargs = _fig6b_sweep_kwargs()
    cold = run_sweep(**kwargs, cache=cache)

    records = benchmark.pedantic(
        lambda: run_sweep(**kwargs, cache=cache), rounds=3, iterations=1
    )
    assert records == cold
    benchmark.extra_info["cells"] = len(records)
    benchmark.extra_info["hits"] = cache.hits
