"""Serving-layer benchmarks — request latency and delivered throughput.

Three views of the same service:

* the in-process submission floor (scheduler + fold, no HTTP),
* one HTTP round trip on a quiet server,
* a seeded open-loop replay with the SLO gates and the offline
  bit-identity check — the configuration whose percentiles ``main``
  records into the committed ``BENCH_serve.json``.

Latency in the replay rows is measured from each request's *scheduled*
arrival instant to response completion (coordinated-omission-free), so
the percentiles include any queueing the service caused.

Run as a script to regenerate the committed results file::

    PYTHONPATH=src:. python benchmarks/bench_serve_latency.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.serve import (
    SERVABLE_SCHEDULERS,
    FleetSpec,
    SchedulerService,
    SloSpec,
    TraceSpec,
    assert_bit_identical,
    build_trace,
    replay,
    replay_inprocess,
    start_http_server,
)

NUM_VMS = 500
SEED = 0
#: open-loop arrival rate (requests/s) the committed percentiles are measured
#: at — the same rate the CI smoke gate (tools/serve_smoke.py) applies.
RATE = 1_500.0
#: requests per recorded replay (~13 s of simulated arrivals at RATE).
REQUESTS = 20_000
#: the documented serving SLO (docs/serving.md) applied to every recorded run.
SLO = SloSpec(p50_ms=100.0, p99_ms=750.0, min_throughput_rps=0.7 * RATE)


def make_service(scheduler: str) -> "tuple[FleetSpec, SchedulerService]":
    spec = FleetSpec(name=scheduler, num_vms=NUM_VMS, scheduler=scheduler, seed=SEED)
    service = SchedulerService()
    service.add_fleet(spec)
    return spec, service


@pytest.mark.parametrize("scheduler", sorted(SERVABLE_SCHEDULERS))
def test_inprocess_submit_floor(benchmark, scheduler):
    """Service-core latency with HTTP taken out: parse-free constant batches."""
    _, service = make_service(scheduler)
    payload = {"count": 16, "length": 1_000.0}
    benchmark(lambda: service.submit(scheduler, payload))


@pytest.mark.parametrize("scheduler", sorted(SERVABLE_SCHEDULERS))
def test_http_roundtrip(benchmark, scheduler):
    """One submission over the wire on an otherwise idle server."""
    import json as _json
    import socket

    _, service = make_service(scheduler)
    body = _json.dumps({"count": 16, "length": 1_000.0}).encode()
    head = (
        f"POST /v1/fleets/{scheduler}/submit HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode()

    with start_http_server(service) as handle:
        with socket.create_connection((handle.host, handle.port)) as sock:
            def roundtrip():
                sock.sendall(head + body)
                buf = b""
                while b"\r\n\r\n" not in buf:
                    buf += sock.recv(65536)
                header, _, rest = buf.partition(b"\r\n\r\n")
                length = next(
                    int(line.split(b":")[1])
                    for line in header.split(b"\r\n")
                    if line.lower().startswith(b"content-length")
                )
                while len(rest) < length:
                    rest += sock.recv(65536)
                assert header.split()[1] == b"200"

            benchmark(roundtrip)


def test_open_loop_replay_meets_slo_and_matches_offline(benchmark):
    """A small seeded replay passes the SLO and reproduces offline placements."""
    spec, service = make_service("greedy-mct")
    trace = build_trace(TraceSpec(requests=500, rate=RATE, seed=SEED + 1))

    def run():
        with start_http_server(service) as handle:
            return replay(trace, "greedy-mct", handle.host, handle.port)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.errors == 0
    assert SloSpec(p99_ms=5_000.0).violations(report) == []
    assert_bit_identical(spec, trace, report, chunk_sizes=(4_096,))
    benchmark.extra_info["throughput_rps"] = round(report.throughput_rps, 1)
    benchmark.extra_info["latency_p50_ms"] = round(report.p50_ms, 3)
    benchmark.extra_info["latency_p99_ms"] = round(report.p99_ms, 3)


def _record_scheduler(scheduler: str) -> dict:
    trace = build_trace(TraceSpec(requests=REQUESTS, rate=RATE, seed=SEED + 1))

    spec, service = make_service(scheduler)
    with start_http_server(service) as handle:
        open_loop = replay(trace, scheduler, handle.host, handle.port)
    if open_loop.errors:
        raise AssertionError(f"{scheduler}: {open_loop.errors} failed requests")
    violations = SLO.violations(open_loop)
    if violations:
        raise AssertionError(f"{scheduler}: SLO violations: {violations}")
    assert_bit_identical(spec, trace, open_loop, chunk_sizes=(65_536,))

    spec, service = make_service(scheduler)
    with start_http_server(service) as handle:
        saturated = replay(
            trace, scheduler, handle.host, handle.port, time_scale=0.0
        )
    if saturated.errors:
        raise AssertionError(f"{scheduler}: {saturated.errors} failed requests")

    spec, service = make_service(scheduler)
    floor = replay_inprocess(
        build_trace(TraceSpec(requests=2_000, rate=RATE, seed=SEED + 1)),
        service,
        scheduler,
    )
    return {
        "open_loop": {**open_loop.to_dict(), "rate_rps": RATE},
        "max_throughput": saturated.to_dict(),
        "inprocess_floor": floor.to_dict(),
    }


def main(out: "str | Path" = Path(__file__).parent.parent / "BENCH_serve.json") -> Path:
    """Regenerate the committed latency/throughput record.

    Placements are pinned bit-identical to the offline engine before any
    number is recorded; the timings themselves are machine-dependent (the
    committed file documents the reference machine's envelope, the SLO
    assertion is the portable part).
    """
    payload = {
        "benchmark": "serve_latency",
        "fleet": {"num_vms": NUM_VMS, "family": "homogeneous", "seed": SEED},
        "trace": {"requests": REQUESTS, "rate_rps": RATE, "seed": SEED + 1},
        "slo": {
            "p50_ms": SLO.p50_ms,
            "p99_ms": SLO.p99_ms,
            "min_throughput_rps": SLO.min_throughput_rps,
        },
        "schedulers": {
            name: _record_scheduler(name) for name in sorted(SERVABLE_SCHEDULERS)
        },
    }
    out = Path(out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for name, rows in payload["schedulers"].items():
        ol = rows["open_loop"]
        print(
            f"{name:12s} open-loop {ol['throughput_rps']:7,.0f} rps  "
            f"p50 {ol['latency_p50_ms']:6.2f} ms  p99 {ol['latency_p99_ms']:7.2f} ms  "
            f"(max {rows['max_throughput']['throughput_rps']:7,.0f} rps)"
        )
    print(f"written to {out}")
    return out


if __name__ == "__main__":
    main()
