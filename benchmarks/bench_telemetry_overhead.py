"""Telemetry overhead on the Round-Robin hot path.

The observability layer's performance contract: instrumentation must be
near-free.  Disabled, ``span()`` returns a shared no-op singleton and
``count()`` bails after one attribute load; enabled, the hot loops batch
their counters (one ``count()`` per ``Simulation.run``, not per event).
This bench pins that contract on the cheapest scheduler — Round-Robin on
the DES engine, where scheduling is trivial and the event loop dominates,
so any per-event instrumentation cost would show up immediately.

Methodology (documented in docs/observability.md): the enabled and
disabled pipelines are timed interleaved, min-of-N is compared (the
minimum is robust to scheduler jitter on shared CI runners), and the
assertion allows 2 % relative plus a small absolute slack so a sub-ms
wobble on a fast run cannot flake the build.
"""

from __future__ import annotations

from time import perf_counter

from repro import obs
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import RoundRobinScheduler
from repro.workloads.heterogeneous import heterogeneous_scenario

#: timing rounds per configuration (min is taken).
ROUNDS = 5
#: relative overhead budget for telemetry-enabled runs.
REL_BUDGET = 0.02
#: absolute slack so sub-ms jitter cannot flake a fast run.
ABS_SLACK_S = 0.010


def _run_pipeline(scenario) -> float:
    return CloudSimulation(scenario, RoundRobinScheduler(), seed=0).run().makespan


def _min_of_n(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def test_telemetry_overhead_rr_hot_path(benchmark):
    scenario = heterogeneous_scenario(50, 1000, seed=0)
    _run_pipeline(scenario)  # warm caches before timing anything

    times = {False: float("inf"), True: float("inf")}

    def measure_once():
        # interleave so drift (thermal, noisy neighbours) hits both arms
        for enabled in (False, True):
            with obs.enabled(enabled):
                obs.reset()
                t0 = perf_counter()
                _run_pipeline(scenario)
                times[enabled] = min(times[enabled], perf_counter() - t0)

    benchmark.pedantic(measure_once, rounds=ROUNDS, iterations=1)

    t_off, t_on = times[False], times[True]
    benchmark.extra_info["t_off_s"] = round(t_off, 6)
    benchmark.extra_info["t_on_s"] = round(t_on, 6)
    benchmark.extra_info["overhead_pct"] = round(100 * (t_on - t_off) / t_off, 3)
    assert t_on <= t_off * (1 + REL_BUDGET) + ABS_SLACK_S, (
        f"telemetry-enabled RR pipeline took {t_on:.4f}s vs {t_off:.4f}s disabled "
        f"({100 * (t_on - t_off) / t_off:.1f}% > {100 * REL_BUDGET:.0f}% budget)"
    )


def test_disabled_telemetry_records_nothing(benchmark):
    """The disabled path must be a true no-op, not just a cheap one."""
    scenario = heterogeneous_scenario(20, 200, seed=0)
    obs.reset()
    assert not obs.is_enabled()
    makespan = benchmark.pedantic(
        lambda: _run_pipeline(scenario), rounds=2, iterations=1
    )
    assert makespan > 0
    assert obs.snapshot().is_empty
