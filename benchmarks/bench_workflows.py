"""Extension benchmarks — workflow (DAG) scheduling.

Covers the workflow substrate: HEFT vs cyclic placement on the three DAG
families, recording makespan/speedup, plus the scaling of the
dependency-aware broker with DAG size.
"""

from __future__ import annotations

import pytest

from repro.workflows import (
    HeftScheduler,
    RoundRobinWorkflowScheduler,
    WorkflowSimulation,
    fork_join_workflow,
    layered_workflow,
    random_workflow,
)
from repro.workloads.heterogeneous import heterogeneous_scenario


@pytest.mark.parametrize(
    "shape,factory",
    [
        ("layered-6x4", lambda: layered_workflow(6, 4, seed=0)),
        ("forkjoin-16", lambda: fork_join_workflow(16, seed=0)),
        ("random-50", lambda: random_workflow(50, edge_probability=0.08, seed=0)),
    ],
)
@pytest.mark.parametrize("scheduler_name", ["heft", "workflow-roundrobin"])
def test_workflow_schedulers(benchmark, shape, factory, scheduler_name):
    workflow = factory()
    scenario = heterogeneous_scenario(12, 10, seed=0)
    scheduler = HeftScheduler() if scheduler_name == "heft" else RoundRobinWorkflowScheduler()

    def run():
        return WorkflowSimulation(workflow, scenario, scheduler).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["shape"] = shape
    benchmark.extra_info["scheduler"] = scheduler_name
    benchmark.extra_info["makespan"] = round(result.makespan, 3)
    benchmark.extra_info["speedup"] = round(result.speedup, 3)
    assert result.makespan >= result.critical_path_bound - 1e-9


@pytest.mark.parametrize("num_tasks", [50, 200])
def test_workflow_broker_scaling(benchmark, num_tasks):
    workflow = random_workflow(num_tasks, edge_probability=0.05, seed=1)
    scenario = heterogeneous_scenario(16, 10, seed=1)

    def run():
        return WorkflowSimulation(workflow, scenario, HeftScheduler()).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["num_tasks"] = num_tasks
    benchmark.extra_info["events"] = result.events_processed
