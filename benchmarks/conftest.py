"""Shared benchmark fixtures and helpers.

Each ``bench_fig*.py`` file regenerates (a scaled-down cell of) one paper
figure; the pytest-benchmark timing is the figure's operative computation
and ``benchmark.extra_info`` carries the figure's metric values so the
benchmark report doubles as the data series.  The full sweeps (all x-axis
points, multiple seeds) are produced by ``python -m repro.experiments``.
"""

from __future__ import annotations

import pytest

from repro.cloud.simulation import SimulationResult


def record_result(benchmark, result: SimulationResult) -> None:
    """Stash a run's paper metrics on the benchmark record."""
    benchmark.extra_info["scheduler"] = result.scheduler_name
    benchmark.extra_info["makespan"] = round(result.makespan, 4)
    benchmark.extra_info["time_imbalance"] = round(result.time_imbalance, 4)
    benchmark.extra_info["total_cost"] = round(result.total_cost, 2)
    benchmark.extra_info["scheduling_time_s"] = round(result.scheduling_time, 6)


@pytest.fixture
def paper_schedulers():
    """Fresh instances of the four compared schedulers, bench-sized ACO."""
    from repro.schedulers import (
        AntColonyScheduler,
        HoneyBeeScheduler,
        RandomBiasedSamplingScheduler,
        RoundRobinScheduler,
    )

    return {
        "basetest": RoundRobinScheduler(),
        "antcolony": AntColonyScheduler(num_ants=20, max_iterations=3),
        "honeybee": HoneyBeeScheduler(),
        "rbs": RandomBiasedSamplingScheduler(),
    }
