#!/usr/bin/env python3
"""Cost study: what does a cloud tenant pay under each scheduler?

Motivating workload from the paper's introduction: a tenant submits a
mixed batch to a provider whose datacenters price memory, storage and
bandwidth differently (Table VII ranges).  This example

1. sweeps HBO's load-balance factor ``facLB`` to chart the cost-vs-makespan
   frontier the paper's Section III leaves implicit, and
2. compares every registered scheduler's cost per finished cloudlet.

Run with::

    python examples/cost_budget_study.py
"""

from __future__ import annotations

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.tables import format_table
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import SCHEDULER_REGISTRY, HoneyBeeScheduler, make_scheduler
from repro.workloads import heterogeneous_scenario

NUM_VMS = 60
NUM_CLOUDLETS = 600
SEED = 7

#: bench-sized overrides for the slow metaheuristics
LIGHT = {
    "antcolony": {"num_ants": 10, "max_iterations": 2},
    "pso": {"num_particles": 15, "max_iterations": 20},
    "ga": {"population_size": 20, "generations": 20},
}


def faclb_frontier(scenario) -> None:
    print("== HBO facLB frontier (cost vs makespan trade-off) ==")
    faclbs = [0.25, 0.4, 0.55, 0.7, 0.85, 1.0]
    rows = []
    for faclb in faclbs:
        result = CloudSimulation(
            scenario, HoneyBeeScheduler(load_balance_factor=faclb), seed=SEED
        ).run()
        rows.append(
            {
                "facLB": faclb,
                "processing_cost": result.total_cost,
                "makespan_s": result.makespan,
                "spills": result.info["spills"],
            }
        )
    print(format_table(rows, float_format="{:.2f}"))
    print()
    print(
        ascii_plot(
            [int(f * 100) for f in faclbs],
            {
                "cost": [r["processing_cost"] for r in rows],
                "makespan x100": [r["makespan_s"] * 100 for r in rows],
            },
            title="facLB (%) vs cost and scaled makespan",
            xlabel="facLB (%)",
            ylabel="value",
            height=12,
        )
    )
    print()


def all_schedulers_cost(scenario) -> None:
    print("== Cost per cloudlet for every registered scheduler ==")
    rows = []
    for name in sorted(SCHEDULER_REGISTRY):
        scheduler = make_scheduler(name, **LIGHT.get(name, {}))
        result = CloudSimulation(scenario, scheduler, seed=SEED).run()
        rows.append(
            {
                "scheduler": name,
                "cost_per_cloudlet": result.total_cost / result.num_cloudlets,
                "makespan_s": result.makespan,
            }
        )
    rows.sort(key=lambda r: r["cost_per_cloudlet"])
    print(format_table(rows, float_format="{:.3f}"))


def main() -> None:
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=SEED)
    faclb_frontier(scenario)
    all_schedulers_cost(scenario)


if __name__ == "__main__":
    main()
