#!/usr/bin/env python3
"""Bring-your-own workload: build, persist and replay a synthetic trace.

Shows the extension surface beyond the paper's two setups:

1. a heavy-tailed (Pareto) task mix on a bimodal VM fleet, built with
   :class:`~repro.workloads.synthetic.SyntheticWorkloadBuilder`;
2. the scenario frozen to JSON with ``save_scenario`` (diffable, shareable)
   and reloaded with ``load_scenario``;
3. schedulers compared on the replayed trace — identical inputs,
   reproducible outputs.

Run with::

    python examples/custom_workload_trace.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.tables import format_table
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import (
    AntColonyScheduler,
    GreedyMinCompletionScheduler,
    MaxMinScheduler,
    RoundRobinScheduler,
)
from repro.workloads import (
    DistributionSpec,
    SyntheticWorkloadBuilder,
    load_scenario,
    save_scenario,
)


def build_trace():
    """Heavy-tailed tasks (many small, few huge) on a two-tier fleet."""
    return (
        SyntheticWorkloadBuilder(seed=2026)
        .vms(
            32,
            mips=DistributionSpec("bimodal", {"low": 500.0, "high": 4000.0, "p_high": 0.25}),
        )
        .cloudlets(
            400,
            length=DistributionSpec("pareto", {"shape": 1.5, "scale": 800.0}),
            file_size=DistributionSpec("uniform", {"low": 100.0, "high": 600.0}),
        )
        .datacenters(3)
        .build("pareto-two-tier")
    )


def main() -> None:
    scenario = build_trace()
    arr = scenario.arrays()
    print(
        f"Built trace {scenario.name!r}: {scenario.num_cloudlets} cloudlets "
        f"(length p50={sorted(arr.cloudlet_length)[len(arr.cloudlet_length) // 2]:.0f} MI, "
        f"max={arr.cloudlet_length.max():.0f} MI) on {scenario.num_vms} VMs\n"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.json"
        save_scenario(scenario, path)
        print(f"Frozen to {path.name} ({path.stat().st_size} bytes); reloading...\n")
        replayed = load_scenario(path)
        assert replayed == scenario

    schedulers = {
        "basetest": RoundRobinScheduler(),
        "greedy-mct": GreedyMinCompletionScheduler(),
        "maxmin": MaxMinScheduler(),
        "antcolony": AntColonyScheduler(num_ants=15, max_iterations=3),
    }
    rows = []
    for name, scheduler in schedulers.items():
        result = CloudSimulation(replayed, scheduler, seed=0).run()
        rows.append(
            {
                "scheduler": name,
                "makespan_s": result.makespan,
                "avg_wait_s": result.average_waiting_time,
                "imbalance": result.time_imbalance,
            }
        )
    print(format_table(rows, float_format="{:.2f}"))
    print(
        "\nHeavy tails punish count-based spreading: the completion-time-aware"
        "\nheuristics (greedy-mct, maxmin) should lead on makespan here."
    )


if __name__ == "__main__":
    main()
