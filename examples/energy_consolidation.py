#!/usr/bin/env python3
"""Energy study: scheduler choice and VM placement both move the power bill.

Two levers on fleet energy, demonstrated end to end:

1. the *scheduler* decides how long the batch takes (idle burn scales with
   makespan) — compare the paper's four on VM-level energy;
2. the *VM placement policy* decides how many hosts stay powered —
   compare CloudSim-simple spreading against consolidation at host level.

Run with::

    python examples/energy_consolidation.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cloud.consolidation import compare_placement_policies
from repro.cloud.power import PowerModelLinear, energy_of_result
from repro.cloud.simulation import CloudSimulation
from repro.cloud.vm_allocation import (
    VmAllocationConsolidating,
    VmAllocationLeastUsed,
    VmAllocationRoundRobin,
)
from repro.schedulers import PAPER_SCHEDULERS, make_scheduler
from repro.workloads import heterogeneous_scenario

NUM_VMS = 40
NUM_CLOUDLETS = 400
SEED = 21
MODEL = PowerModelLinear(idle_watts=100.0, peak_watts=250.0)


def scheduler_lever(scenario) -> None:
    print("== Lever 1: scheduler choice (VM-level energy) ==")
    rows = []
    for name in PAPER_SCHEDULERS:
        kwargs = {"num_ants": 15, "max_iterations": 3} if name == "antcolony" else {}
        result = CloudSimulation(scenario, make_scheduler(name, **kwargs), seed=SEED).run()
        rows.append(
            {
                "scheduler": name,
                "makespan_s": result.makespan,
                "energy_MJ": energy_of_result(result, scenario, MODEL) / 1e6,
            }
        )
    rows.sort(key=lambda r: r["energy_MJ"])
    print(format_table(rows, float_format="{:.2f}"))
    print()


def placement_lever(scenario) -> None:
    print("== Lever 2: VM placement policy (host-level energy) ==")
    result = CloudSimulation(scenario, make_scheduler("basetest"), seed=SEED).run()
    reports = compare_placement_policies(
        scenario,
        result,
        {
            "least-used (CloudSim simple)": VmAllocationLeastUsed(),
            "round-robin": VmAllocationRoundRobin(),
            "consolidating": VmAllocationConsolidating(),
        },
        MODEL,
    )
    rows = [
        {
            "placement": name,
            "active_hosts": r.active_hosts,
            "idle_hosts": r.idle_host_count,
            "energy_MJ": r.energy_joules / 1e6,
        }
        for name, r in reports.items()
    ]
    rows.sort(key=lambda r: r["energy_MJ"])
    print(format_table(rows, float_format="{:.3f}"))
    print(
        "\nConsolidation powers hosts off outright; the schedulers shorten the\n"
        "horizon every active host must stay up for. The levers compose."
    )


def main() -> None:
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=SEED)
    scheduler_lever(scenario)
    placement_lever(scenario)


if __name__ == "__main__":
    main()
