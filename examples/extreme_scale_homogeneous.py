#!/usr/bin/env python3
"""The paper's "extreme load" homogeneous stress test, at configurable scale.

Reproduces the Fig. 4/5 setup: identical VMs, identical cloudlets, and a
sweep over fleet sizes.  The analytic fast path makes genuinely large runs
feasible in Python — pass ``--cloudlets 1000000 --vms 100000`` for the
paper's full size (Base Test / HBO / RBS finish; ACO runs with the
memory-scalable per-VM pheromone layout).

Run with::

    python examples/extreme_scale_homogeneous.py                 # scaled default
    python examples/extreme_scale_homogeneous.py --cloudlets 200000 --vms 20000
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.tables import format_table
from repro.cloud.fast import FastSimulation
from repro.schedulers import (
    AntColonyScheduler,
    HoneyBeeScheduler,
    RandomBiasedSamplingScheduler,
    RoundRobinScheduler,
)
from repro.workloads import homogeneous_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vms", type=int, default=5000, help="fleet size")
    parser.add_argument("--cloudlets", type=int, default=50_000, help="batch size")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scenario = homogeneous_scenario(args.vms, args.cloudlets, seed=args.seed)
    print(
        f"Homogeneous stress test: {args.cloudlets} cloudlets over "
        f"{args.vms} identical VMs (Tables III & IV)\n"
    )

    schedulers = {
        "basetest": RoundRobinScheduler(),
        "antcolony": AntColonyScheduler(
            num_ants=5, max_iterations=2, tabu="pass", pheromone="vm"
        ),
        "honeybee": HoneyBeeScheduler(),
        "rbs": RandomBiasedSamplingScheduler(),
    }
    rows = []
    for name, scheduler in schedulers.items():
        t0 = time.perf_counter()
        result = FastSimulation(scenario, scheduler, seed=args.seed).run()
        rows.append(
            {
                "scheduler": name,
                "makespan_s": result.makespan,
                "scheduling_time_s": result.scheduling_time,
                "wall_s": time.perf_counter() - t0,
            }
        )
        print(f"  {name:10s} done in {rows[-1]['wall_s']:.2f}s")

    print()
    print(format_table(rows, float_format="{:.4g}"))
    optimum = rows[0]["makespan_s"]
    print(
        f"\nFig. 4 shape: every scheduler's makespan ≈ the Base Test optimum "
        f"({optimum:.3g}s).\nFig. 5 shape: the Base Test scheduling time is "
        "orders of magnitude below the others."
    )


if __name__ == "__main__":
    main()
