#!/usr/bin/env python3
"""Failure injection: how the batch survives VMs dying mid-run.

Kills an escalating number of VMs partway through a heterogeneous batch and
reports how the resilient broker's round-robin recovery absorbs the damage:
makespan degradation, retry volume and the waiting-time cost of recovery.

Run with::

    python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cloud.chaos import ChaosConfig, run_chaos_suite
from repro.cloud.faults import VmFailure, VmSlowdown, run_with_failures
from repro.cloud.resilience import ExponentialBackoffRetry, ImmediateRetry, run_resilient
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import GreedyMinCompletionScheduler, RoundRobinScheduler
from repro.workloads import heterogeneous_scenario

NUM_VMS = 20
NUM_CLOUDLETS = 300
SEED = 3


def main() -> None:
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=SEED)
    baseline = CloudSimulation(scenario, RoundRobinScheduler(), seed=SEED).run()
    print(
        f"Baseline (no failures): makespan {baseline.makespan:.1f}s, "
        f"mean wait {baseline.average_waiting_time:.1f}s\n"
    )

    rows = []
    for num_failures in (1, 2, 4, 8):
        failures = [
            VmFailure(vm_index=i, at_time=3.0 + 2.0 * i) for i in range(num_failures)
        ]
        result = run_with_failures(scenario, RoundRobinScheduler(), failures, seed=SEED)
        rows.append(
            {
                "failed_vms": num_failures,
                "makespan_s": result.makespan,
                "vs_baseline": result.makespan / baseline.makespan,
                "retries": result.info["retries"],
                "mean_wait_s": result.average_waiting_time,
            }
        )
    print("== Round-robin recovery under escalating failures ==")
    print(format_table(rows, float_format="{:.2f}"))

    print("\n== Scheduler choice matters for blast radius ==")
    failures = [VmFailure(0, at_time=3.0), VmFailure(7, at_time=6.0)]
    rows = []
    for scheduler in (RoundRobinScheduler(), GreedyMinCompletionScheduler()):
        result = run_with_failures(scenario, scheduler, failures, seed=SEED)
        rows.append(
            {
                "scheduler": result.scheduler_name,
                "makespan_s": result.makespan,
                "retries": result.info["retries"],
            }
        )
    print(format_table(rows, float_format="{:.2f}"))
    print(
        "\nGreedy concentrates work on fast VMs, so losing one bounces more"
        "\ncloudlets — resilience and packing efficiency trade off."
    )

    print("\n== Recovery strategy: blind round-robin vs rescheduling ==")
    scheduler = GreedyMinCompletionScheduler()
    baseline = CloudSimulation(scenario, scheduler, seed=SEED).run()
    failures = [VmFailure(0, at_time=2.0), VmFailure(7, at_time=4.0)]
    blind = run_with_failures(scenario, scheduler, failures, seed=SEED)
    smart = run_resilient(
        scenario, scheduler, failures, seed=SEED,
        retry_policy=ImmediateRetry(max_attempts=8),
    )
    rows = [
        {
            "recovery": name,
            "makespan_s": r.makespan,
            "degradation": r.makespan / baseline.makespan,
            "retries": r.info["retries"],
            "lost_mi": r.info["lost_mi"],
        }
        for name, r in (("round-robin", blind), ("rescheduling", smart))
    ]
    print(format_table(rows, float_format="{:.2f}"))
    print(
        "\nRescheduling re-invokes the batch scheduler over the survivors, so"
        "\nbounced work lands by completion time instead of by rotation."
    )

    print("\n== Stragglers: speculation cancels the hostage cloudlets ==")
    straggle = [VmSlowdown(3, at_time=1.0, duration=1e4, factor=0.05)]
    hostage = run_resilient(scenario, scheduler, straggle, seed=SEED)
    rescued = run_resilient(
        scenario, scheduler, straggle, seed=SEED,
        retry_policy=ImmediateRetry(max_attempts=10),
        speculation_multiple=3.0,
    )
    rows = [
        {
            "speculation": label,
            "makespan_s": r.makespan,
            "cancels": r.info["speculative_cancels"],
        }
        for label, r in (("off", hostage), ("3x expected", rescued))
    ]
    print(format_table(rows, float_format="{:.2f}"))

    print("\n== Seeded chaos suite: crash + straggler across schedulers ==")
    report = run_chaos_suite(
        scenario,
        {"round-robin": RoundRobinScheduler(), "greedy": GreedyMinCompletionScheduler()},
        seeds=(0, 1),
        config=ChaosConfig(num_vm_failures=1, num_stragglers=1, recover_fraction=1.0),
        retry_policy=ExponentialBackoffRetry(max_attempts=6),
    )
    print(format_table(report.to_rows(), float_format="{:.2f}"))
    print("\nMean makespan degradation (rescheduling recovery):")
    for name, ratio in report.mean_degradation("rescheduling").items():
        print(f"  {name:12s} {ratio:.3f}x")


if __name__ == "__main__":
    main()
