#!/usr/bin/env python3
"""Failure injection: how the batch survives VMs dying mid-run.

Kills an escalating number of VMs partway through a heterogeneous batch and
reports how the resilient broker's round-robin recovery absorbs the damage:
makespan degradation, retry volume and the waiting-time cost of recovery.

Run with::

    python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.cloud.faults import VmFailure, run_with_failures
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import GreedyMinCompletionScheduler, RoundRobinScheduler
from repro.workloads import heterogeneous_scenario

NUM_VMS = 20
NUM_CLOUDLETS = 300
SEED = 3


def main() -> None:
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=SEED)
    baseline = CloudSimulation(scenario, RoundRobinScheduler(), seed=SEED).run()
    print(
        f"Baseline (no failures): makespan {baseline.makespan:.1f}s, "
        f"mean wait {baseline.average_waiting_time:.1f}s\n"
    )

    rows = []
    for num_failures in (1, 2, 4, 8):
        failures = [
            VmFailure(vm_index=i, at_time=3.0 + 2.0 * i) for i in range(num_failures)
        ]
        result = run_with_failures(scenario, RoundRobinScheduler(), failures, seed=SEED)
        rows.append(
            {
                "failed_vms": num_failures,
                "makespan_s": result.makespan,
                "vs_baseline": result.makespan / baseline.makespan,
                "retries": result.info["retries"],
                "mean_wait_s": result.average_waiting_time,
            }
        )
    print("== Round-robin recovery under escalating failures ==")
    print(format_table(rows, float_format="{:.2f}"))

    print("\n== Scheduler choice matters for blast radius ==")
    failures = [VmFailure(0, at_time=3.0), VmFailure(7, at_time=6.0)]
    rows = []
    for scheduler in (RoundRobinScheduler(), GreedyMinCompletionScheduler()):
        result = run_with_failures(scenario, scheduler, failures, seed=SEED)
        rows.append(
            {
                "scheduler": result.scheduler_name,
                "makespan_s": result.makespan,
                "retries": result.info["retries"],
            }
        )
    print(format_table(rows, float_format="{:.2f}"))
    print(
        "\nGreedy concentrates work on fast VMs, so losing one bounces more"
        "\ncloudlets — resilience and packing efficiency trade off."
    )


if __name__ == "__main__":
    main()
