#!/usr/bin/env python3
"""The paper's future-work hybrid scheduler in action.

Section VII proposes a modular hybrid that "selects a specific behavior of
the scheduling algorithm" from system conditions and pre-selected
requirements.  This demo feeds the hybrid three environments —

* a homogeneous fleet            → it picks the Base Test (no decision cost),
* heterogeneous, spread prices   → it picks HBO (cost rules),
* heterogeneous, flat prices     → it picks ACO (performance rules),

and then shows the explicit PERFORMANCE/COST/BALANCE objectives overriding
the automatic choice.

Run with::

    python examples/hybrid_dispatch_demo.py
"""

from __future__ import annotations

import dataclasses

from repro.analysis.tables import format_table
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import AntColonyScheduler, HybridScheduler
from repro.workloads import heterogeneous_scenario, homogeneous_scenario


def flat_price_scenario(seed: int):
    """Heterogeneous VMs but identical datacenter pricing."""
    scenario = heterogeneous_scenario(40, 300, seed=seed)
    dc0 = scenario.datacenters[0]
    return dataclasses.replace(
        scenario,
        name="heterogeneous-flat-prices",
        datacenters=tuple(dc0 for _ in scenario.datacenters),
    )


def light_hybrid(**kwargs) -> HybridScheduler:
    return HybridScheduler(
        aco=AntColonyScheduler(num_ants=10, max_iterations=2), **kwargs
    )


def main() -> None:
    environments = {
        "homogeneous": homogeneous_scenario(40, 300, seed=1),
        "hetero, spread prices": heterogeneous_scenario(40, 300, seed=1),
        "hetero, flat prices": flat_price_scenario(seed=1),
    }

    print("== AUTO mode: environment drives the module choice ==")
    rows = []
    for label, scenario in environments.items():
        result = CloudSimulation(scenario, light_hybrid(), seed=1).run()
        rows.append(
            {
                "environment": label,
                "delegated_to": result.info["delegated_to"],
                "makespan_s": result.makespan,
                "cost": result.total_cost,
            }
        )
    print(format_table(rows, float_format="{:.2f}"))

    print("\n== Explicit objectives on the heterogeneous environment ==")
    scenario = environments["hetero, spread prices"]
    rows = []
    for objective in ("performance", "cost", "balance"):
        result = CloudSimulation(scenario, light_hybrid(objective=objective), seed=1).run()
        rows.append(
            {
                "objective": objective,
                "delegated_to": result.info["delegated_to"],
                "makespan_s": result.makespan,
                "imbalance": result.time_imbalance,
                "cost": result.total_cost,
            }
        )
    print(format_table(rows, float_format="{:.2f}"))


if __name__ == "__main__":
    main()
