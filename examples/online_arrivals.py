#!/usr/bin/env python3
"""Dynamic demand: online scheduling under Poisson and bursty arrivals.

The paper motivates its schedulers by dynamic demand but evaluates them in
batch mode; this example exercises the online extension: cloudlets arrive
over simulated time (steady Poisson stream, then on/off bursts) and each
policy places them with only the live backlog in hand.

The punchline mirrors the batch study: load-aware policies (least-loaded,
greedy MCT) absorb bursts gracefully; blind cyclic placement and wave-blind
batch re-solving pay in flow time.

Run with::

    python examples/online_arrivals.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.cloud.online import OnlineCloudSimulation
from repro.schedulers import RoundRobinScheduler
from repro.schedulers.online import (
    BatchAdapter,
    OnlineGreedyMCT,
    OnlineLeastLoaded,
    OnlineRoundRobin,
)
from repro.workloads import BurstyArrivals, PoissonArrivals, heterogeneous_scenario

NUM_VMS = 20
NUM_CLOUDLETS = 400
SEED = 5


def policies():
    return {
        "online-roundrobin": OnlineRoundRobin(),
        "online-leastloaded": OnlineLeastLoaded(),
        "online-greedy-mct": OnlineGreedyMCT(),
        "batch[basetest] per wave": BatchAdapter(RoundRobinScheduler()),
    }


def run_table(arrivals, label: str) -> None:
    print(f"== {label} ==")
    scenario = heterogeneous_scenario(NUM_VMS, NUM_CLOUDLETS, seed=SEED)
    rows = []
    for name, policy in policies().items():
        result = OnlineCloudSimulation(scenario, policy, arrivals=arrivals, seed=SEED).run()
        flow = result.finish_times - result.submission_times
        rows.append(
            {
                "policy": name,
                "makespan_s": result.makespan,
                "mean_flow_s": float(flow.mean()),
                "p95_flow_s": float(np.percentile(flow, 95)),
                "mean_wait_s": result.average_waiting_time,
            }
        )
    print(format_table(rows, float_format="{:.2f}"))
    print()


def main() -> None:
    run_table(PoissonArrivals(rate=20.0), "steady Poisson stream (20 cloudlets/s)")
    run_table(
        BurstyArrivals(burst_size=80, burst_rate=200.0, period=8.0),
        "bursty on/off load (80-task bursts every 8 s)",
    )
    print(
        "Load-aware policies keep p95 flow time flat across both regimes;\n"
        "blind cyclic placement queues up behind slow VMs, and the wave-blind\n"
        "batch adapter collapses entirely: every 1-cloudlet wave restarts the\n"
        "cyclic scan at VM 0, so the whole stream piles onto one machine —\n"
        "exactly the statefulness the paper's batch formulation hides."
    )


if __name__ == "__main__":
    main()
