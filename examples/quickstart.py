#!/usr/bin/env python3
"""Quickstart: run the paper's four schedulers on one heterogeneous batch.

Builds the Table V/VI/VII heterogeneous scenario (50 VMs, 500 cloudlets),
runs Base Test / ACO / HBO / RBS through the discrete-event simulator and
prints the paper's four metrics side by side.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.gantt import gantt_chart
from repro.analysis.tables import format_table
from repro.cloud.simulation import CloudSimulation
from repro.schedulers import PAPER_SCHEDULERS, make_scheduler
from repro.workloads import heterogeneous_scenario


def main() -> None:
    scenario = heterogeneous_scenario(num_vms=50, num_cloudlets=500, seed=42)
    print(f"Scenario: {scenario.name} "
          f"({scenario.num_datacenters} datacenters, seed={scenario.seed})\n")

    rows = []
    for name in PAPER_SCHEDULERS:
        # Keep ACO small so the quickstart finishes in seconds.
        kwargs = {"num_ants": 20, "max_iterations": 3} if name == "antcolony" else {}
        result = CloudSimulation(scenario, make_scheduler(name, **kwargs), seed=42).run()
        rows.append(
            {
                "scheduler": name,
                "makespan_s": result.makespan,
                "scheduling_time_ms": result.scheduling_time * 1e3,
                "time_imbalance": result.time_imbalance,
                "processing_cost": result.total_cost,
            }
        )

    print(format_table(rows, float_format="{:.3f}"))
    print(
        "\nExpected shape (paper Fig. 6): antcolony wins makespan, basetest wins"
        "\nscheduling time, honeybee wins processing cost.\n"
    )

    # A small Gantt makes the difference visible: cyclic placement leaves the
    # slowest VM as the bottleneck; ACO's heuristic levels the profile.
    small = heterogeneous_scenario(num_vms=8, num_cloudlets=48, seed=7)
    for name in ("basetest", "antcolony"):
        kwargs = {"num_ants": 10, "max_iterations": 3} if name == "antcolony" else {}
        result = CloudSimulation(small, make_scheduler(name, **kwargs), seed=7).run()
        print(gantt_chart(result, width=60))
        print()


if __name__ == "__main__":
    main()
