#!/usr/bin/env python3
"""Realistic load: a trace-like workload under a day/night arrival cycle.

Combines three extensions: the heavy-tailed, tiered-fleet trace-like
scenario (statistics modelled on published cluster-trace analyses), a
sinusoidally modulated (diurnal) Poisson arrival process sized to a target
mean utilization, and the online policies — then reports flow-time and
fairness statistics per policy.

Run with::

    python examples/tracelike_diurnal.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.cloud.online import OnlineCloudSimulation
from repro.metrics.definitions import jain_fairness_index
from repro.schedulers.online import (
    OnlineGreedyMCT,
    OnlineLeastLoaded,
    OnlineRoundRobin,
)
from repro.workloads import diurnal_arrivals_for, tracelike_scenario

NUM_VMS = 24
NUM_CLOUDLETS = 600
SEED = 17


def main() -> None:
    scenario = tracelike_scenario(NUM_VMS, NUM_CLOUDLETS, seed=SEED)
    arrivals = diurnal_arrivals_for(scenario, mean_utilization=0.55, period=120.0)
    lengths = scenario.arrays().cloudlet_length
    print(
        f"Trace-like batch: {NUM_CLOUDLETS} tasks "
        f"(p50={np.percentile(lengths, 50):.0f} MI, "
        f"p99={np.percentile(lengths, 99):.0f} MI) on a "
        f"{NUM_VMS}-VM tiered fleet; diurnal base rate "
        f"{arrivals.base_rate:.2f} tasks/s, period {arrivals.period:.0f}s\n"
    )

    rows = []
    for policy in (OnlineRoundRobin(), OnlineLeastLoaded(), OnlineGreedyMCT()):
        result = OnlineCloudSimulation(scenario, policy, arrivals=arrivals, seed=SEED).run()
        flow = result.finish_times - result.submission_times
        busy = np.zeros(NUM_VMS)
        np.add.at(busy, result.assignment, result.exec_times)
        rows.append(
            {
                "policy": result.scheduler_name,
                "mean_flow_s": float(flow.mean()),
                "p95_flow_s": float(np.percentile(flow, 95)),
                "p99_flow_s": float(np.percentile(flow, 99)),
                "jain_fairness": jain_fairness_index(busy),
            }
        )
    print(format_table(rows, float_format="{:.3f}"))
    print(
        "\nHeavy tails make the difference brutal: a single mega-task behind a\n"
        "blind cyclic pointer stalls a whole VM's queue through the next load\n"
        "peak, while completion-aware placement isolates it on a fast machine."
    )


if __name__ == "__main__":
    main()
