#!/usr/bin/env python3
"""Workflow scheduling: HEFT vs cyclic placement on scientific DAG shapes.

The paper's related work is full of *workflow* schedulers (PSO for
workflows, deadline-constrained workflows); this example runs the workflow
extension on three canonical DAG shapes — a deep layered pipeline, a wide
fork-join, and a sparse random DAG — and compares HEFT with a cyclic
baseline on makespan, speedup over serial execution and proximity to the
critical-path lower bound.

Run with::

    python examples/workflow_heft.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.workflows import (
    HeftScheduler,
    RoundRobinWorkflowScheduler,
    WorkflowSimulation,
    fork_join_workflow,
    layered_workflow,
    random_workflow,
)
from repro.workloads import heterogeneous_scenario

SEED = 11


def main() -> None:
    scenario = heterogeneous_scenario(num_vms=12, num_cloudlets=10, seed=SEED)
    workflows = {
        "layered 6x4 (pipeline)": layered_workflow(6, 4, seed=SEED),
        "fork-join x16": fork_join_workflow(16, seed=SEED),
        "random n=50 p=0.08": random_workflow(50, edge_probability=0.08, seed=SEED),
    }
    rows = []
    for label, workflow in workflows.items():
        for scheduler in (RoundRobinWorkflowScheduler(), HeftScheduler()):
            result = WorkflowSimulation(workflow, scenario, scheduler).run()
            rows.append(
                {
                    "workflow": label,
                    "scheduler": result.scheduler_name,
                    "makespan_s": result.makespan,
                    "speedup": result.speedup,
                    "bound_efficiency": result.efficiency_vs_bound,
                    "transfer_s": result.transfer_seconds,
                }
            )
    print(format_table(rows, float_format="{:.2f}"))
    print(
        "\nHEFT's rank-and-earliest-finish placement dominates cyclic placement on\n"
        "every shape; bound_efficiency shows how close each run gets to the\n"
        "critical-path lower bound (1.0 = optimal)."
    )


if __name__ == "__main__":
    main()
