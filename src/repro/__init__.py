"""repro — reproduction of *Performance Analysis of Bio-Inspired Scheduling
Algorithms for Cloud Environments* (Al Buhussain, De Grande, Boukerche;
IEEE IPDPS Workshops 2016).

The package is organised as:

``repro.core``
    A from-scratch discrete-event simulation (DES) kernel: event calendar,
    simulation clock, entities and message passing.  This replaces CloudSim's
    ``SimEntity``/``CloudSim`` core.

``repro.cloud``
    A CloudSim-equivalent cloud model built on the kernel: datacenters,
    hosts, virtual machines, cloudlets (tasks), brokers, provisioners,
    time-/space-shared execution models and network topologies.

``repro.schedulers``
    The paper's schedulers — Base Test (cyclic/round-robin), Ant Colony
    Optimization (ACO), Honey Bee Optimization (HBO), Random Biased Sampling
    (RBS) — plus related-work baselines (Max-Min, Min-Min, PSO, GA,
    priority-based) and the future-work hybrid scheduler.

``repro.metrics``
    The paper's four metrics (scheduling time, simulation time/makespan,
    time imbalance, processing cost) and supporting statistics.

``repro.workloads``
    Scenario generators encoding Tables III-VII of the paper and a generic
    synthetic workload library.

``repro.experiments``
    The sweep runner and one regeneration entry point per paper figure
    (Fig. 4a/4b, 5a/5b, 6a-6d) plus ablations.

Quickstart
----------

>>> from repro import quick_run
>>> from repro.schedulers import AntColonyScheduler
>>> result = quick_run(AntColonyScheduler(seed=7), num_vms=20, num_cloudlets=200, seed=1)
>>> result.makespan > 0
True
"""

from __future__ import annotations

from repro._version import __version__
from repro.cloud.simulation import CloudSimulation, SimulationResult, quick_run
from repro.schedulers import (
    AntColonyScheduler,
    HoneyBeeScheduler,
    RandomBiasedSamplingScheduler,
    RoundRobinScheduler,
)
from repro.workloads import heterogeneous_scenario, homogeneous_scenario

__all__ = [
    "__version__",
    "CloudSimulation",
    "SimulationResult",
    "quick_run",
    "RoundRobinScheduler",
    "AntColonyScheduler",
    "HoneyBeeScheduler",
    "RandomBiasedSamplingScheduler",
    "homogeneous_scenario",
    "heterogeneous_scenario",
]
