"""Result analysis: ASCII rendering, tabulation and paper-shape checks."""

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.gantt import gantt_chart
from repro.analysis.compare import CheckResult, check_figure, paper_shape_checks
from repro.analysis.queueing import (
    erlang_c,
    mm1_mean_sojourn,
    mm1_mean_wait,
    mmc_mean_sojourn,
    mmc_mean_wait,
)
from repro.analysis.report_md import (
    markdown_figure,
    markdown_report,
    markdown_table,
    write_markdown_report,
)
from repro.analysis.tables import format_table, write_csv

__all__ = [
    "ascii_plot",
    "format_table",
    "write_csv",
    "CheckResult",
    "check_figure",
    "paper_shape_checks",
    "markdown_table",
    "markdown_figure",
    "markdown_report",
    "write_markdown_report",
    "erlang_c",
    "mm1_mean_sojourn",
    "mm1_mean_wait",
    "mmc_mean_sojourn",
    "mmc_mean_wait",
    "gantt_chart",
]
