"""Terminal line plots.

matplotlib is not available in the reproduction environment, so figures are
rendered as ASCII charts (plus CSV files for external plotting).  One marker
character per series; overlapping points show the last series drawn.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_MARKERS = "ABHRMNGPXYZW"


def _format_val(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.2e}"
    return f"{v:.3g}"


def ascii_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 72,
    height: int = 18,
    logy: bool = False,
) -> str:
    """Render a multi-series line chart as text.

    Parameters
    ----------
    x:
        Shared x coordinates (ascending).
    series:
        Name → y values (same length as ``x``).
    logy:
        Plot ``log10(y)``; zero/negative values are clamped to the smallest
        positive value present.
    """
    if not x:
        raise ValueError("x must be non-empty")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length {len(ys)} != len(x) {len(x)}")
    if width < 20 or height < 5:
        raise ValueError("width must be >= 20 and height >= 5")

    all_y = [float(v) for ys in series.values() for v in ys]
    if logy:
        positive = [v for v in all_y if v > 0]
        floor = min(positive) if positive else 1e-12
        transform = lambda v: math.log10(max(v, floor))  # noqa: E731
    else:
        transform = lambda v: v  # noqa: E731
    ty = [transform(v) for v in all_y]
    y_min, y_max = min(ty), max(ty)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x[0]), float(x[-1])
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(xv: float) -> int:
        return min(width - 1, int((xv - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(yv: float) -> int:
        frac = (transform(yv) - y_min) / (y_max - y_min)
        return min(height - 1, int((1.0 - frac) * (height - 1)))

    legend: list[str] = []
    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker}={name}")
        prev: tuple[int, int] | None = None
        for xv, yv in zip(x, ys):
            col, row = to_col(float(xv)), to_row(float(yv))
            if prev is not None:
                # Connect consecutive points with interpolated dots.
                pc, pr = prev
                steps = max(abs(col - pc), abs(row - pr))
                for s in range(1, steps):
                    ic = pc + round((col - pc) * s / steps)
                    ir = pr + round((row - pr) * s / steps)
                    if grid[ir][ic] == " ":
                        grid[ir][ic] = "."
            grid[row][col] = marker
            prev = (col, row)

    # Assemble with a y-axis gutter.
    top_label = _format_val(10 ** y_max if logy else y_max)
    bottom_label = _format_val(10 ** y_min if logy else y_min)
    gutter = max(len(top_label), len(bottom_label)) + 1
    lines: list[str] = []
    if title:
        lines.append(title.center(width + gutter + 1))
    for r, row in enumerate(grid):
        if r == 0:
            label = top_label.rjust(gutter)
        elif r == height - 1:
            label = bottom_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{_format_val(x_min)}{' ' * max(1, width - len(_format_val(x_min)) - len(_format_val(x_max)))}{_format_val(x_max)}"
    lines.append(" " * (gutter + 1) + x_axis)
    footer = "  ".join(legend)
    if xlabel or ylabel:
        footer += f"   [{xlabel} vs {ylabel}{' (log y)' if logy else ''}]"
    lines.append(footer)
    return "\n".join(lines)


__all__ = ["ascii_plot"]
