"""Paper-shape checks.

The reproduction does not chase the paper's absolute numbers (Java testbed
vs Python simulator) but its *shapes*: who wins each metric, orderings, and
growth directions.  Each figure gets a programmatic check; EXPERIMENTS.md
and the slow test-suite both run them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.figures import FigureData


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one qualitative expectation."""

    figure: str
    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.figure}/{self.name}: {self.detail}"


def _mean_over_tail(values: list[float], tail: int = 3) -> float:
    """Mean of the last ``tail`` sweep points (robust ordering comparisons)."""
    return float(np.mean(values[-tail:]))


def _check(figure: str, name: str, passed: bool, detail: str) -> CheckResult:
    return CheckResult(figure=figure, name=name, passed=bool(passed), detail=detail)


def check_fig4(data: FigureData) -> list[CheckResult]:
    """Homogeneous makespan: decreasing in VM count, all near Base Test."""
    checks = []
    base = data.series["basetest"]
    checks.append(
        _check(
            data.experiment_id,
            "basetest-decreasing",
            base[0] > base[-1],
            f"Base Test makespan falls from {base[0]:.3g} to {base[-1]:.3g} as VMs grow",
        )
    )
    for name, ys in data.series.items():
        if name == "basetest":
            continue
        ratio = _mean_over_tail(ys) / max(_mean_over_tail(base), 1e-12)
        checks.append(
            _check(
                data.experiment_id,
                f"{name}-converges-to-basetest",
                ratio < 1.5,
                f"{name} tail makespan is {ratio:.2f}x Base Test (expect ≈1, <1.5)",
            )
        )
    return checks


def check_fig5(data: FigureData) -> list[CheckResult]:
    """Homogeneous scheduling time: Base Test far below the bio-inspired."""
    checks = []
    base = _mean_over_tail(data.series["basetest"])
    for name, ys in data.series.items():
        if name == "basetest":
            continue
        ratio = _mean_over_tail(ys) / max(base, 1e-12)
        checks.append(
            _check(
                data.experiment_id,
                f"{name}-pays-decision-cost",
                ratio > 5,
                f"{name} scheduling time is {ratio:.1f}x Base Test (expect >>1)",
            )
        )
    return checks


def check_fig6a(data: FigureData) -> list[CheckResult]:
    """Heterogeneous makespan: ACO best; HBO <= Base Test; RBS ≈ Base Test."""
    aco = _mean_over_tail(data.series["antcolony"])
    hbo = _mean_over_tail(data.series["honeybee"])
    base = _mean_over_tail(data.series["basetest"])
    rbs = _mean_over_tail(data.series["rbs"])
    return [
        _check(
            data.experiment_id,
            "aco-best-makespan",
            aco < hbo and aco < base and aco < rbs,
            f"ACO {aco:.3g} vs HBO {hbo:.3g}, Base {base:.3g}, RBS {rbs:.3g}",
        ),
        _check(
            data.experiment_id,
            "hbo-beats-basetest",
            hbo < base * 1.05,
            f"HBO {hbo:.3g} vs Base Test {base:.3g} (expect slightly better)",
        ),
        _check(
            data.experiment_id,
            "rbs-close-to-basetest",
            0.6 < rbs / base < 1.4,
            f"RBS/Base Test ratio {rbs / base:.2f} (expect ≈1 with fluctuations)",
        ),
    ]


def check_fig6b(data: FigureData) -> list[CheckResult]:
    """Heterogeneous scheduling time: Base Test < RBS < HBO < ACO."""
    order = ["basetest", "rbs", "honeybee", "antcolony"]
    values = [_mean_over_tail(data.series[name]) for name in order]
    detail = ", ".join(f"{n}={v:.3g}s" for n, v in zip(order, values))
    return [
        _check(
            data.experiment_id,
            "scheduling-time-ordering",
            all(values[i] < values[i + 1] for i in range(len(values) - 1)),
            detail,
        )
    ]


def check_fig6c(data: FigureData) -> list[CheckResult]:
    """Heterogeneous imbalance: metaheuristics above Base Test / RBS.

    The paper's exact ordering is base < RBS < HBO < ACO; what is robustly
    reproducible is the split — the fast-VM-seeking metaheuristics (ACO,
    HBO) create more per-task execution-time spread than the count-spreading
    policies (Base Test, RBS).  The internal ACO-vs-HBO order is noise-level
    in our implementation and is recorded as a known deviation in
    EXPERIMENTS.md.  Means are taken over the whole sweep: at the sparse end
    (more VMs than cloudlets) the metric degenerates for every scheduler.
    """
    means = {name: float(np.mean(ys)) for name, ys in data.series.items()}
    spreaders = max(means["basetest"], means["rbs"])
    return [
        _check(
            data.experiment_id,
            "aco-above-spreading-policies",
            means["antcolony"] > spreaders,
            f"ACO {means['antcolony']:.3g} vs max(Base, RBS)={spreaders:.3g}",
        ),
        _check(
            data.experiment_id,
            "metaheuristics-worst",
            min(means["antcolony"], means["honeybee"]) > min(means["basetest"], means["rbs"]),
            f"ACO/HBO ({means['antcolony']:.3g}/{means['honeybee']:.3g}) above "
            f"min(Base, RBS)={min(means['basetest'], means['rbs']):.3g}",
        ),
    ]


def check_fig6d(data: FigureData) -> list[CheckResult]:
    """Heterogeneous processing cost: HBO lowest; others close together."""
    hbo = _mean_over_tail(data.series["honeybee"])
    others = {
        name: _mean_over_tail(ys)
        for name, ys in data.series.items()
        if name != "honeybee"
    }
    best_other = min(others.values())
    spread = max(others.values()) / max(best_other, 1e-12)
    return [
        _check(
            data.experiment_id,
            "hbo-cheapest",
            hbo < best_other,
            f"HBO {hbo:.4g} vs min(other)={best_other:.4g}",
        ),
        _check(
            data.experiment_id,
            "others-clustered",
            spread < 1.2,
            f"non-HBO costs within {spread:.2f}x of each other (expect close)",
        ),
    ]


_CHECKERS = {
    "fig4a": check_fig4,
    "fig4b": check_fig4,
    "fig5a": check_fig5,
    "fig5b": check_fig5,
    "fig6a": check_fig6a,
    "fig6b": check_fig6b,
    "fig6c": check_fig6c,
    "fig6d": check_fig6d,
}


def check_figure(data: FigureData) -> list[CheckResult]:
    """Run the paper-shape checks registered for ``data``'s figure."""
    checker = _CHECKERS.get(data.experiment_id)
    if checker is None:
        return []
    return checker(data)


def paper_shape_checks(figures: dict[str, FigureData]) -> list[CheckResult]:
    """Run all available checks over a collection of figure results."""
    results: list[CheckResult] = []
    for data in figures.values():
        results.extend(check_figure(data))
    return results


__all__ = ["CheckResult", "check_figure", "paper_shape_checks"]
