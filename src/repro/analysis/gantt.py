"""ASCII Gantt charts of simulation results.

Renders per-VM execution timelines from a
:class:`~repro.cloud.simulation.SimulationResult` — the fastest way to *see*
what a scheduler did: round-robin's ragged right edge, greedy's level
profile, MET's single loaded row.

Intended for small runs (tens of VMs); larger fleets are summarised by the
busiest/least-busy rows.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.simulation import SimulationResult


def gantt_chart(
    result: SimulationResult,
    num_vms: int | None = None,
    width: int = 72,
    max_rows: int = 24,
) -> str:
    """Render per-VM busy intervals as an ASCII Gantt chart.

    Each row is a VM; each column is a time bucket of ``makespan / width``
    seconds.  A cell shows ``#`` when the VM executes for more than half
    the bucket, ``-`` for partial occupancy, and space when idle.  When the
    fleet exceeds ``max_rows``, the rows with the highest and lowest busy
    time are kept (annotated with an ellipsis marker).
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if max_rows < 2:
        raise ValueError(f"max_rows must be >= 2, got {max_rows}")
    if num_vms is None:
        num_vms = int(result.assignment.max()) + 1 if result.assignment.size else 0
    if num_vms < 1:
        raise ValueError("result has no assignments to draw")
    horizon = float(result.finish_times.max())
    if horizon <= 0:
        raise ValueError("result has a non-positive horizon")

    bucket = horizon / width
    occupancy = np.zeros((num_vms, width))
    for vm, start, finish in zip(
        result.assignment, result.start_times, result.finish_times
    ):
        first = int(start / bucket)
        last = min(int(np.ceil(finish / bucket)), width)
        for b in range(first, last):
            lo, hi = b * bucket, (b + 1) * bucket
            overlap = max(0.0, min(finish, hi) - max(start, lo))
            occupancy[vm, b] += overlap

    busy = occupancy.sum(axis=1)
    rows = np.arange(num_vms)
    truncated = False
    if num_vms > max_rows:
        order = np.argsort(-busy)
        keep = np.concatenate([order[: max_rows // 2], order[-max_rows // 2 :]])
        rows = np.sort(keep)
        truncated = True

    gutter = len(f"vm{num_vms - 1}") + 1
    lines = [
        f"{result.scheduler_name}: makespan {result.makespan:.3g}s "
        f"(#/- = busy/partial, bucket {bucket:.3g}s)"
    ]
    for vm in rows:
        cells = []
        for b in range(width):
            frac = occupancy[vm, b] / bucket
            cells.append("#" if frac > 0.5 else ("-" if frac > 0.0 else " "))
        lines.append(f"{f'vm{vm}'.rjust(gutter)}|{''.join(cells)}|")
    if truncated:
        lines.append(
            f"{' ' * gutter}({num_vms - len(rows)} mid-load VMs omitted)"
        )
    lines.append(f"{' ' * gutter}0{' ' * (width - len(f'{horizon:.3g}'))}{horizon:.3g}s")
    return "\n".join(lines)


__all__ = ["gantt_chart"]
