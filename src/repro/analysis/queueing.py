"""Queueing-theory reference formulas.

Closed-form M/M/1 and M/M/c results used to *validate the simulator
against theory*: with Poisson arrivals and exponentially distributed
cloudlet lengths on identical single-PE VMs, the online engine is a
queueing system with known steady-state behaviour, so measured sojourn
times must match (M/M/1) or be bracketed by (JSQ routing between M/M/c
and random-routing M/M/1) these formulas.  See
``tests/integration/test_queueing_validation.py``.
"""

from __future__ import annotations

import math


def _check_rates(arrival_rate: float, service_rate: float, servers: int = 1) -> float:
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("arrival_rate and service_rate must be positive")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    rho = arrival_rate / (servers * service_rate)
    if rho >= 1:
        raise ValueError(
            f"system is unstable: utilization {rho:.3f} >= 1 "
            f"(lambda={arrival_rate}, mu={service_rate}, c={servers})"
        )
    return rho


def utilization(arrival_rate: float, service_rate: float, servers: int = 1) -> float:
    """Offered utilization ``rho = lambda / (c * mu)``; must be < 1."""
    return _check_rates(arrival_rate, service_rate, servers)


def mm1_mean_sojourn(arrival_rate: float, service_rate: float) -> float:
    """Mean time in system of an M/M/1 queue: ``1 / (mu - lambda)``."""
    _check_rates(arrival_rate, service_rate)
    return 1.0 / (service_rate - arrival_rate)


def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean waiting time (excluding service) of an M/M/1 queue."""
    rho = _check_rates(arrival_rate, service_rate)
    return rho / (service_rate - arrival_rate)


def mm1_mean_number_in_system(arrival_rate: float, service_rate: float) -> float:
    """Mean number in system: ``rho / (1 - rho)`` (Little's law check)."""
    rho = _check_rates(arrival_rate, service_rate)
    return rho / (1.0 - rho)


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang C: probability an arrival must wait in an M/M/c queue.

    ``offered_load`` is ``a = lambda / mu`` (in Erlangs); requires
    ``a < servers``.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_load <= 0:
        raise ValueError(f"offered_load must be positive, got {offered_load}")
    if offered_load >= servers:
        raise ValueError(
            f"unstable: offered load {offered_load} >= servers {servers}"
        )
    # Stable evaluation via the iterative Erlang B recursion.
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


def mmc_mean_wait(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean waiting time of an M/M/c queue (central queue, FCFS)."""
    _check_rates(arrival_rate, service_rate, servers)
    a = arrival_rate / service_rate
    pw = erlang_c(servers, a)
    return pw / (servers * service_rate - arrival_rate)


def mmc_mean_sojourn(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean time in system of an M/M/c queue."""
    return mmc_mean_wait(arrival_rate, service_rate, servers) + 1.0 / service_rate


def little_l(arrival_rate: float, mean_sojourn: float) -> float:
    """Little's law: ``L = lambda * W``."""
    if arrival_rate <= 0 or mean_sojourn < 0:
        raise ValueError("arrival_rate must be positive and mean_sojourn non-negative")
    return arrival_rate * mean_sojourn


__all__ = [
    "utilization",
    "mm1_mean_sojourn",
    "mm1_mean_wait",
    "mm1_mean_number_in_system",
    "erlang_c",
    "mmc_mean_wait",
    "mmc_mean_sojourn",
    "little_l",
]
