"""Markdown report generation.

Turns :class:`~repro.experiments.figures.FigureData` into the
paper-vs-measured Markdown blocks used in ``EXPERIMENTS.md``, so the
results document can be regenerated instead of hand-edited:

>>> from repro.experiments.figures import FigureData
>>> data = FigureData("fig6d", "Processing cost", "VMs", "cost",
...                   x=[50], series={"honeybee": [48e3], "basetest": [63e3]},
...                   ci={"honeybee": [0.0], "basetest": [0.0]})
>>> print(markdown_figure(data).splitlines()[0])
### fig6d — Processing cost
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.analysis.compare import check_figure
from repro.experiments.figures import FigureData


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.3e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def markdown_table(data: FigureData, max_rows: int | None = None) -> str:
    """GitHub-flavoured table of a figure's series (one row per x)."""
    names = list(data.series)
    header = f"| {data.x_key} | " + " | ".join(names) + " |"
    sep = "|" + "---|" * (len(names) + 1)
    lines = [header, sep]
    rows = list(enumerate(data.x))
    if max_rows is not None and len(rows) > max_rows:
        # Keep endpoints plus evenly spaced interior rows.
        step = max(1, len(rows) // max_rows)
        keep = sorted({0, len(rows) - 1, *range(0, len(rows), step)})
        rows = [rows[i] for i in keep]
    for i, xv in rows:
        cells = " | ".join(_format_value(data.series[name][i]) for name in names)
        lines.append(f"| {xv} | {cells} |")
    return "\n".join(lines)


def markdown_checks(data: FigureData) -> str:
    """Bullet list of the figure's shape-check outcomes (empty if none)."""
    checks = check_figure(data)
    if not checks:
        return ""
    return "\n".join(
        f"- **{'PASS' if c.passed else 'FAIL'}** `{c.name}` — {c.detail}" for c in checks
    )


def markdown_figure(data: FigureData, max_rows: int | None = 8) -> str:
    """One complete Markdown section for a figure."""
    parts = [f"### {data.experiment_id} — {data.title}", ""]
    parts.append(markdown_table(data, max_rows=max_rows))
    checks = markdown_checks(data)
    if checks:
        parts.extend(["", checks])
    return "\n".join(parts)


def markdown_report(
    figures: Iterable[FigureData],
    title: str = "Measured results",
    preamble: str = "",
) -> str:
    """A full Markdown document covering several figures."""
    parts = [f"# {title}", ""]
    if preamble:
        parts.extend([preamble, ""])
    for data in figures:
        parts.extend([markdown_figure(data), ""])
    return "\n".join(parts).rstrip() + "\n"


def write_markdown_report(
    figures: Iterable[FigureData], path: str | Path, **kwargs
) -> Path:
    """Write :func:`markdown_report` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(markdown_report(figures, **kwargs))
    return path


__all__ = [
    "markdown_table",
    "markdown_checks",
    "markdown_figure",
    "markdown_report",
    "write_markdown_report",
]
