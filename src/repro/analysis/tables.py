"""Tabular output: aligned text tables and CSV export."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.6g}",
) -> str:
    """Render dict rows as an aligned text table.

    Parameters
    ----------
    rows:
        Sequence of mappings; missing keys render blank.
    columns:
        Column order; defaults to the keys of the first row.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        if value is None:
            return ""
        return str(value)

    rendered = [[fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = ["  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered]
    return "\n".join([header, sep, *body])


def write_csv(
    rows: Sequence[Mapping[str, object]],
    path: str | Path,
    columns: Sequence[str] | None = None,
) -> Path:
    """Write dict rows to ``path`` as CSV; returns the path."""
    if not rows:
        raise ValueError("cannot write an empty CSV")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        columns = list(rows[0].keys())
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


__all__ = ["format_table", "write_csv"]
