"""Manifest-keyed result cache for incremental, resumable sweeps.

:class:`ResultCache` persists :class:`~repro.cloud.simulation.SimulationResult`
objects on disk, addressed by the SHA-256 fingerprint of their
:class:`~repro.obs.manifest.RunManifest` (scenario spec + scheduler
params + seed + engine + package version — host and timestamps never
contribute).  The experiment stack threads it through
:func:`repro.experiments.runner.run_point` /
:func:`~repro.experiments.runner.run_sweep` (``cache=``) and the CLI
(``--cache-dir`` / ``--no-cache`` / the ``cache`` subcommand), so
regenerating a figure recomputes only the (scheduler × scale × seed)
cells that changed.  ``docs/performance.md`` documents the entry
layout, key derivation and invalidation rules.

Example — a miss computes, a hit replays the identical result::

    >>> import tempfile
    >>> from repro.cache import ResultCache
    >>> from repro.experiments.runner import run_point
    >>> from repro.schedulers import RoundRobinScheduler
    >>> from repro.workloads.heterogeneous import heterogeneous_scenario
    >>> scenario = heterogeneous_scenario(4, 12, seed=0)
    >>> with tempfile.TemporaryDirectory() as root:
    ...     cache = ResultCache(root)
    ...     key = cache.key_for(scenario, RoundRobinScheduler(), seed=0, engine="fast")
    ...     before = cache.get(key)                      # cold: a miss
    ...     result = run_point(scenario, RoundRobinScheduler(), seed=0, engine="fast")
    ...     _ = cache.put(key, result)
    ...     again = cache.get(key)                       # warm: a hit
    >>> before is None
    True
    >>> (again.makespan, again.scheduling_time) == (result.makespan, result.scheduling_time)
    True
    >>> cache.hits, cache.misses
    (1, 1)

The key is stable across processes and hosts — it never includes
wall-clock state — so caches can be shared, rsynced, and reused between
serial and ``--workers N`` sweeps interchangeably.
"""

from repro.cache.store import (
    ENTRY_FORMAT_VERSION,
    CacheStats,
    PruneReport,
    ResultCache,
    cache_key_manifest,
    scenario_digest,
)

__all__ = [
    "ENTRY_FORMAT_VERSION",
    "CacheStats",
    "PruneReport",
    "ResultCache",
    "cache_key_manifest",
    "scenario_digest",
]
