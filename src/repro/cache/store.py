"""Content-addressed on-disk result store for paper-scale sweeps.

A :class:`ResultCache` maps a stable SHA-256 fingerprint — derived from
the :class:`~repro.obs.manifest.RunManifest` of a (scenario, scheduler,
seed, engine) cell via :meth:`RunManifest.fingerprint` — to a persisted
:class:`~repro.cloud.simulation.SimulationResult`.  Regenerating a
figure, extending a sweep with new VM counts / seeds, or adding a
scheduler to an existing grid then only computes the missing cells; the
rest replay from disk bit-identically (wall-clock ``scheduling_time``
replays as the *cold* run's measured value, so a warm sweep's records
are byte-equal to the cold sweep's).

Entry layout (one directory per key, fanned out by the first two hex
characters to keep directories small)::

    <root>/objects/<k0k1>/<key>/
        meta.json     scalars, filtered info, the key manifest
        arrays.npz    per-cloudlet arrays (compressed)
    <root>/tmp/       staging area for in-flight writes

Durability contract:

* **Atomic publication** — entries are staged under ``tmp/`` and
  ``os.rename``\\ d into place, so a reader can never observe a
  half-written entry and concurrent writers of the same key cannot
  interleave (the loser of the rename race discards its staging dir;
  both wrote identical content by construction).
* **Corruption tolerance** — any unreadable, truncated or
  wrong-version entry is treated as a miss; callers recompute and the
  subsequent :meth:`ResultCache.put` replaces the bad entry.  Reads
  never raise for a bad entry.
* **Versioned format** — every entry records ``entry_format`` and the
  ``package_version`` that wrote it.  The package version is part of
  the fingerprint, so bumping :data:`repro._version.__version__`
  orphans old entries (they can never be hit again); reads
  double-check both fields and :meth:`ResultCache.prune` collects the
  orphans.

Telemetry: ``get``/``put`` maintain per-instance totals and emit the
global counters ``cache.hits`` / ``cache.misses`` / ``cache.bytes_read``
/ ``cache.bytes_written`` (rendered by ``python -m repro.experiments
report``; see ``docs/observability.md``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import shutil
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro._version import __version__
from repro.obs.manifest import RunManifest, capture_manifest
from repro.obs.telemetry import TELEMETRY as _TEL

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.fast import StreamingResult
    from repro.cloud.simulation import SimulationResult
    from repro.workloads.spec import ScenarioSpec

__all__ = [
    "ENTRY_FORMAT_VERSION",
    "CacheStats",
    "PruneReport",
    "ResultCache",
    "scenario_digest",
    "cache_key_manifest",
]

#: Bumped whenever the on-disk entry layout changes; mismatched entries
#: read as misses and are collected by :meth:`ResultCache.prune`.
ENTRY_FORMAT_VERSION = 1

_META_NAME = "meta.json"
_ARRAYS_NAME = "arrays.npz"
#: SimulationResult array fields persisted in ``arrays.npz``.
_ARRAY_FIELDS = (
    "assignment",
    "submission_times",
    "start_times",
    "finish_times",
    "exec_times",
    "costs",
)
#: StreamingResult array fields (per-VM aggregates, O(num_vms)) persisted
#: for entries with ``result_kind == "stream"``.
_STREAM_ARRAY_FIELDS = (
    "vm_finish_times",
    "vm_costs",
)
#: process-local uniquifier for staging directory names.
_STAGE_COUNTER = itertools.count()


def scenario_digest(scenario: "ScenarioSpec") -> str:
    """SHA-256 hex digest of a scenario's full numeric content.

    The manifest's scenario summary records only name, sizes and seed;
    hashing the :class:`~repro.workloads.spec.ScenarioArrays` columns as
    well makes the cache key sensitive to the *actual* workload, so a
    hand-built scenario that happens to share a name with a generated
    one can never collide.

    Memoised per spec instance (specs are immutable), so probing every
    scheduler of a sweep cell hashes the columns once, not once per
    scheduler.
    """
    cached = getattr(scenario, "_digest_cache", None)
    if cached is not None:
        return cached
    if hasattr(scenario, "digest"):
        # Chunked scenarios (ScenarioChunks) hash their own columns one
        # chunk at a time — never materialising the workload.  Their
        # digest scheme differs from the block below by construction
        # (per-column sub-hashers), so a spec and a stream of the same
        # workload key differently; the engine string already separates
        # their cache entries anyway.
        digest = scenario.digest()
    else:
        arrays = scenario.arrays()
        h = hashlib.sha256()
        for name in sorted(f for f in vars(arrays) if not f.startswith("_")):
            column = np.ascontiguousarray(getattr(arrays, name))
            h.update(name.encode())
            h.update(str(column.dtype).encode())
            h.update(column.tobytes())
        digest = h.hexdigest()
    try:
        object.__setattr__(scenario, "_digest_cache", digest)
    except AttributeError:  # slotted/exotic spec: recompute next time
        pass
    return digest


def cache_key_manifest(
    scenario: "ScenarioSpec",
    scheduler: Any,
    seed: int | None,
    engine: str,
    **extra: Any,
) -> RunManifest:
    """The manifest whose fingerprint addresses one cache entry.

    Must be built from a *fresh* scheduler (before it runs) so the
    recorded constructor parameters are the pre-run configuration.

    Chunked scenarios fold their chunking geometry (``chunk_size``,
    ``num_chunks``) into the fingerprint: streaming metrics are
    chunk-size-invariant by contract, but the stored entry records the
    geometry it was produced under, and re-keying on it keeps the
    invariance property *testable* rather than silently assumed.
    """
    if hasattr(scenario, "chunk_size") and hasattr(scenario, "num_chunks"):
        extra.setdefault("chunk_size", int(scenario.chunk_size))
        extra.setdefault("num_chunks", int(scenario.num_chunks))
    return capture_manifest(
        scenario=scenario,
        scheduler=scheduler,
        seed=seed,
        engine=engine,
        scenario_digest=scenario_digest(scenario),
        **extra,
    )


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time inventory of a cache directory."""

    entries: int
    total_bytes: int
    #: package_version -> entry count (foreign versions are prunable).
    by_version: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "by_version": dict(sorted(self.by_version.items())),
        }


@dataclass(frozen=True)
class PruneReport:
    """Outcome of one :meth:`ResultCache.prune` pass."""

    removed: int
    freed_bytes: int


class ResultCache:
    """Manifest-keyed persistent store of :class:`SimulationResult`\\ s.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first write.  Safe to share
        between concurrent processes (see the module docstring's
        durability contract).

    Instance counters (``hits``, ``misses``, ``bytes_read``,
    ``bytes_written``) accumulate over the instance's lifetime and are
    mirrored into the global telemetry registry when it is enabled.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0

    @classmethod
    def coerce(cls, cache: "ResultCache | str | os.PathLike | None") -> "ResultCache | None":
        """Accept a cache instance, a directory path, or ``None``."""
        if cache is None or isinstance(cache, cls):
            return cache
        return cls(cache)

    # -- keys ---------------------------------------------------------------

    def key_for(
        self,
        scenario: "ScenarioSpec",
        scheduler: Any,
        seed: int | None,
        engine: str,
        **extra: Any,
    ) -> str:
        """Fingerprint addressing the (scenario, scheduler, seed, engine) cell."""
        return cache_key_manifest(scenario, scheduler, seed, engine, **extra).fingerprint()

    # -- paths --------------------------------------------------------------

    @property
    def _objects_dir(self) -> Path:
        return self.root / "objects"

    def entry_dir(self, key: str) -> Path:
        """On-disk directory an entry for ``key`` lives in (may not exist)."""
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self._objects_dir / key[:2] / key

    def _entry_bytes(self, entry: Path) -> int:
        return sum(f.stat().st_size for f in entry.iterdir() if f.is_file())

    def iter_keys(self) -> Iterator[str]:
        """All entry keys currently on disk (sorted for determinism)."""
        if not self._objects_dir.is_dir():
            return
        for shard in sorted(self._objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.is_dir():
                    yield entry.name

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    # -- read ---------------------------------------------------------------

    def get(self, key: str) -> "SimulationResult | StreamingResult | None":
        """Load the entry for ``key``; ``None`` on miss *or any damage*.

        A truncated ``arrays.npz``, unparsable ``meta.json``, missing
        member or format/package-version mismatch all count as misses —
        the caller recomputes and :meth:`put` replaces the bad entry.

        Entries written from a :class:`~repro.cloud.fast.StreamingResult`
        (``result_kind == "stream"``) load back as one; everything else
        loads as a :class:`~repro.cloud.simulation.SimulationResult`.
        """
        from repro.cloud.fast import StreamingResult
        from repro.cloud.simulation import SimulationResult

        entry = self.entry_dir(key)
        meta_path = entry / _META_NAME
        arrays_path = entry / _ARRAYS_NAME
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("entry_format") != ENTRY_FORMAT_VERSION:
                raise ValueError("entry format mismatch")
            if meta.get("package_version") != __version__:
                raise ValueError("package version mismatch")
            kind = meta.get("result_kind", "memory")
            fields = _STREAM_ARRAY_FIELDS if kind == "stream" else _ARRAY_FIELDS
            with np.load(arrays_path) as npz:
                arrays = {name: npz[name] for name in fields}
            n = arrays[fields[0]].shape[0]
            if any(arrays[name].shape != (n,) for name in fields):
                raise ValueError("misaligned arrays")
            nbytes = self._entry_bytes(entry)
        except (OSError, ValueError, KeyError, json.JSONDecodeError, zipfile.BadZipFile):
            self.misses += 1
            _TEL.count("cache.misses")
            return None
        self.hits += 1
        self.bytes_read += nbytes
        _TEL.count("cache.hits")
        _TEL.count("cache.bytes_read", nbytes)
        common = dict(
            scenario_name=meta["scenario_name"],
            scheduler_name=meta["scheduler_name"],
            scheduling_time=meta["scheduling_time"],
            makespan=meta["makespan"],
            time_imbalance=meta["time_imbalance"],
            total_cost=meta["total_cost"],
            events_processed=meta["events_processed"],
            info=dict(meta["info"]),
        )
        if kind == "stream":
            return StreamingResult(
                num_cloudlets=meta["num_cloudlets"],
                chunk_size=meta["chunk_size"],
                num_chunks=meta["num_chunks"],
                peak_rss_bytes=meta.get("peak_rss_bytes", 0),
                **common,
                **arrays,
            )
        return SimulationResult(**common, **arrays)

    # -- write --------------------------------------------------------------

    def put(
        self,
        key: str,
        result: "SimulationResult | StreamingResult",
        manifest: RunManifest | None = None,
    ) -> bool:
        """Persist ``result`` under ``key``; returns False if a racing
        writer published the (identical) entry first.

        ``manifest`` should be the :func:`cache_key_manifest` the key was
        derived from; it is stored so ``cache verify`` can re-derive and
        check the fingerprint.  Only JSON-serialisable ``info`` values
        survive the round trip (same rule as ``SimulationResult.save``).

        :class:`~repro.cloud.fast.StreamingResult` inputs are detected by
        their per-VM aggregate arrays and stored as ``result_kind ==
        "stream"`` entries (a few KB — no per-cloudlet arrays exist to
        persist).
        """
        is_stream = hasattr(result, "vm_finish_times")
        fields = _STREAM_ARRAY_FIELDS if is_stream else _ARRAY_FIELDS
        entry = self.entry_dir(key)
        stage = self.root / "tmp" / f"{key}.{os.getpid()}.{next(_STAGE_COUNTER)}"
        stage.mkdir(parents=True, exist_ok=True)
        try:
            info: dict[str, Any] = {}
            for name, value in result.info.items():
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    continue
                info[name] = value
            meta = {
                "entry_format": ENTRY_FORMAT_VERSION,
                "key": key,
                "package_version": __version__,
                "result_kind": "stream" if is_stream else "memory",
                "scenario_name": result.scenario_name,
                "scheduler_name": result.scheduler_name,
                "scheduling_time": float(result.scheduling_time),
                "makespan": float(result.makespan),
                "time_imbalance": float(result.time_imbalance),
                "total_cost": float(result.total_cost),
                "events_processed": int(result.events_processed),
                "info": info,
                "manifest": manifest.to_dict() if manifest is not None else None,
            }
            if is_stream:
                meta["num_cloudlets"] = int(result.num_cloudlets)
                meta["chunk_size"] = int(result.chunk_size)
                meta["num_chunks"] = int(result.num_chunks)
                meta["peak_rss_bytes"] = int(result.peak_rss_bytes)
            (stage / _META_NAME).write_text(json.dumps(meta, sort_keys=True))
            np.savez_compressed(
                stage / _ARRAYS_NAME,
                **{name: getattr(result, name) for name in fields},
            )
            nbytes = self._entry_bytes(stage)
            entry.parent.mkdir(parents=True, exist_ok=True)
            displaced: Path | None = None
            if entry.exists():
                # Replacing a (possibly corrupt) entry: move it aside so the
                # key is only ever bound to a complete directory.
                displaced = stage.with_name(stage.name + ".old")
                try:
                    os.rename(entry, displaced)
                except OSError:
                    displaced = None
            try:
                os.rename(stage, entry)
            except OSError:
                # Lost the publication race; the winner wrote identical
                # content (the key is content-addressed), so drop ours.
                return False
            finally:
                if displaced is not None:
                    shutil.rmtree(displaced, ignore_errors=True)
            self.bytes_written += nbytes
            _TEL.count("cache.bytes_written", nbytes)
            return True
        finally:
            shutil.rmtree(stage, ignore_errors=True)

    # -- maintenance --------------------------------------------------------

    def stats(self) -> CacheStats:
        """Inventory the cache: entry count, bytes, per-version breakdown."""
        entries = 0
        total = 0
        by_version: dict[str, int] = {}
        for key in self.iter_keys():
            entry = self.entry_dir(key)
            entries += 1
            total += self._entry_bytes(entry)
            version = "(unreadable)"
            try:
                version = json.loads((entry / _META_NAME).read_text()).get(
                    "package_version", "(unknown)"
                )
            except (OSError, ValueError, json.JSONDecodeError):
                pass
            by_version[version] = by_version.get(version, 0) + 1
        return CacheStats(entries=entries, total_bytes=total, by_version=by_version)

    def verify(self) -> list[str]:
        """Integrity problems, one message per damaged entry (empty = clean).

        Checks each entry parses, its arrays load, its recorded key
        matches its directory name, and — when the entry stored its key
        manifest — that the manifest still fingerprints to the key.
        """
        problems: list[str] = []
        for key in self.iter_keys():
            entry = self.entry_dir(key)
            try:
                meta = json.loads((entry / _META_NAME).read_text())
            except (OSError, ValueError, json.JSONDecodeError):
                problems.append(f"{key}: unreadable {_META_NAME}")
                continue
            if meta.get("entry_format") != ENTRY_FORMAT_VERSION:
                problems.append(
                    f"{key}: entry_format {meta.get('entry_format')!r} "
                    f"!= {ENTRY_FORMAT_VERSION}"
                )
                continue
            if meta.get("key") != key:
                problems.append(f"{key}: recorded key {meta.get('key')!r} mismatches")
                continue
            fields = (
                _STREAM_ARRAY_FIELDS
                if meta.get("result_kind") == "stream"
                else _ARRAY_FIELDS
            )
            try:
                with np.load(entry / _ARRAYS_NAME) as npz:
                    missing = [n for n in fields if n not in npz.files]
                if missing:
                    problems.append(f"{key}: arrays missing {missing}")
                    continue
            except (OSError, ValueError, zipfile.BadZipFile):
                problems.append(f"{key}: unreadable {_ARRAYS_NAME}")
                continue
            manifest_dict = meta.get("manifest")
            if manifest_dict is not None:
                derived = RunManifest.from_dict(manifest_dict).fingerprint()
                if derived != key:
                    problems.append(
                        f"{key}: manifest fingerprints to {derived[:12]}… "
                        "(entry was tampered with or mis-filed)"
                    )
        return problems

    def prune(self, max_bytes: int | None = None) -> PruneReport:
        """Collect garbage: damaged entries, foreign-version entries, and —
        when ``max_bytes`` is given — the least-recently-modified entries
        until the cache fits the budget.

        Foreign-version entries are unreachable by construction (the
        package version is part of the fingerprint), so removing them is
        always safe.
        """
        removed = 0
        freed = 0

        def drop(key: str) -> None:
            nonlocal removed, freed
            entry = self.entry_dir(key)
            try:
                freed += self._entry_bytes(entry)
            except OSError:
                pass
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1

        survivors: list[tuple[float, int, str]] = []  # (mtime, bytes, key)
        for key in list(self.iter_keys()):
            entry = self.entry_dir(key)
            try:
                meta = json.loads((entry / _META_NAME).read_text())
                if meta.get("entry_format") != ENTRY_FORMAT_VERSION:
                    raise ValueError
                if meta.get("package_version") != __version__:
                    raise ValueError
                fields = (
                    _STREAM_ARRAY_FIELDS
                    if meta.get("result_kind") == "stream"
                    else _ARRAY_FIELDS
                )
                with np.load(entry / _ARRAYS_NAME) as npz:
                    if any(n not in npz.files for n in fields):
                        raise ValueError
            except (OSError, ValueError, json.JSONDecodeError, zipfile.BadZipFile):
                drop(key)
                continue
            survivors.append((entry.stat().st_mtime, self._entry_bytes(entry), key))

        if max_bytes is not None:
            total = sum(nbytes for _, nbytes, _ in survivors)
            for _, nbytes, key in sorted(survivors):
                if total <= max_bytes:
                    break
                drop(key)
                total -= nbytes

        # Sweep any stale staging dirs left behind by killed writers.
        tmp = self.root / "tmp"
        if tmp.is_dir():
            for leftover in tmp.iterdir():
                shutil.rmtree(leftover, ignore_errors=True)
        return PruneReport(removed=removed, freed_bytes=freed)
