"""CloudSim-equivalent cloud model.

Entities and value objects modelling an IaaS cloud: datacenters that own
hosts, hosts that run virtual machines, virtual machines that execute
cloudlets (tasks), and a broker that drives VM creation and cloudlet
submission.  The execution semantics follow CloudSim 3.x:

* a cloudlet of length ``L`` MI on a PE of capacity ``mips`` takes
  ``L / mips`` seconds of simulated time;
* a **space-shared** cloudlet scheduler runs at most ``pes`` cloudlets at
  once and queues the rest FIFO;
* a **time-shared** cloudlet scheduler divides the VM's total capacity
  equally among all resident cloudlets (capped at one PE per cloudlet for
  single-PE cloudlets).
"""

from repro.cloud.broker import DatacenterBroker
from repro.cloud.characteristics import DatacenterCharacteristics
from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.cloudlet_scheduler import (
    CloudletSchedulerSpaceShared,
    CloudletSchedulerTimeShared,
)
from repro.cloud.consolidation import (
    PlacementEnergyReport,
    compare_placement_policies,
    placement_energy,
)
from repro.cloud.chaos import (
    ChaosCell,
    ChaosConfig,
    ChaosReport,
    StormCell,
    StormReport,
    demo_storm_timeline,
    generate_fault_plan,
    load_report_rows,
    run_chaos_suite,
    run_storm_suite,
)
from repro.cloud.control import ControlConfig, ControlledOnlineBroker, ControlLoop
from repro.cloud.datacenter import Datacenter, FaultNotice
from repro.cloud.fast import FastSimulation
from repro.cloud.faults import (
    FaultInjector,
    HostFailure,
    ResilientBroker,
    VmFailure,
    VmSlowdown,
    run_with_failures,
    validate_fault_plan,
)
from repro.cloud.host import Host
from repro.cloud.migration import ConsolidationController
from repro.cloud.online import OnlineBroker, OnlineCloudSimulation
from repro.cloud.power import (
    PowerModel,
    PowerModelLinear,
    PowerModelSqrt,
    batch_energy,
    energy_of_result,
)
from repro.cloud.resilience import (
    ExponentialBackoffRetry,
    FixedDelayRetry,
    ImmediateRetry,
    ReschedulingBroker,
    RetryPolicy,
    run_resilient,
)
from repro.cloud.simulation import (
    CloudSimulation,
    SimulationEnvironment,
    SimulationResult,
    build_simulation,
    quick_run,
)
from repro.cloud.topology import (
    DelayMatrixTopology,
    GraphTopology,
    NetworkTopology,
    ZeroLatencyTopology,
)
from repro.cloud.vm import Vm
from repro.cloud.vm_allocation import (
    VmAllocationConsolidating,
    VmAllocationFirstFit,
    VmAllocationLeastUsed,
    VmAllocationPolicy,
    VmAllocationRoundRobin,
)

__all__ = [
    "Cloudlet",
    "CloudletStatus",
    "Vm",
    "Host",
    "Datacenter",
    "DatacenterBroker",
    "DatacenterCharacteristics",
    "CloudletSchedulerSpaceShared",
    "CloudletSchedulerTimeShared",
    "VmAllocationPolicy",
    "VmAllocationFirstFit",
    "VmAllocationLeastUsed",
    "VmAllocationRoundRobin",
    "VmAllocationConsolidating",
    "NetworkTopology",
    "ZeroLatencyTopology",
    "DelayMatrixTopology",
    "GraphTopology",
    "CloudSimulation",
    "SimulationResult",
    "FastSimulation",
    "quick_run",
    "OnlineBroker",
    "OnlineCloudSimulation",
    "PowerModel",
    "PowerModelLinear",
    "PowerModelSqrt",
    "batch_energy",
    "energy_of_result",
    "VmFailure",
    "HostFailure",
    "VmSlowdown",
    "FaultNotice",
    "FaultInjector",
    "ResilientBroker",
    "run_with_failures",
    "validate_fault_plan",
    "RetryPolicy",
    "ImmediateRetry",
    "FixedDelayRetry",
    "ExponentialBackoffRetry",
    "ReschedulingBroker",
    "run_resilient",
    "ChaosConfig",
    "ChaosCell",
    "ChaosReport",
    "StormCell",
    "StormReport",
    "demo_storm_timeline",
    "generate_fault_plan",
    "run_chaos_suite",
    "run_storm_suite",
    "load_report_rows",
    "ControlConfig",
    "ControlledOnlineBroker",
    "ControlLoop",
    "SimulationEnvironment",
    "build_simulation",
    "PlacementEnergyReport",
    "placement_energy",
    "compare_placement_policies",
    "ConsolidationController",
]
