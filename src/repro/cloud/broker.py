"""The datacenter broker.

Drives the user side of the protocol: request VM creation across the
datacenters, then — once every VM is acknowledged — submit all cloudlets
according to a *precomputed* cloudlet→VM assignment, and collect completions.

The assignment is produced ahead of the simulation by one of the
``repro.schedulers`` policies, exactly as the paper does: the scheduler is a
batch decision procedure, and the simulation measures the consequences of
its decision.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.topology import NetworkTopology, ZeroLatencyTopology
from repro.cloud.vm import Vm
from repro.core.entity import Entity
from repro.core.eventqueue import Event
from repro.core.tags import EventTag


class DatacenterBroker(Entity):
    """Submits VMs and cloudlets; collects finished cloudlets.

    Parameters
    ----------
    name:
        Entity name.
    vms:
        All VMs to create.
    cloudlets:
        All cloudlets to run.
    assignment:
        ``cloudlet index -> vm index`` mapping (into the ``cloudlets`` /
        ``vms`` sequences as given).
    vm_placement:
        ``vm index -> datacenter entity id``; decides where each VM is
        created.
    topology:
        Network topology used to delay submissions (default: zero latency,
        the paper's setting).
    """

    def __init__(
        self,
        name: str,
        vms: Sequence[Vm],
        cloudlets: Sequence[Cloudlet],
        assignment: Sequence[int],
        vm_placement: Mapping[int, int],
        topology: NetworkTopology | None = None,
    ) -> None:
        super().__init__(name)
        if len(assignment) != len(cloudlets):
            raise ValueError(
                f"assignment length {len(assignment)} != number of cloudlets {len(cloudlets)}"
            )
        n_vms = len(vms)
        for i, v in enumerate(assignment):
            if not 0 <= v < n_vms:
                raise ValueError(f"assignment[{i}] = {v} is not a valid vm index")
        missing = [i for i in range(n_vms) if i not in vm_placement]
        if missing:
            raise ValueError(f"vm_placement missing vm indices {missing[:5]}...")
        self.vms = list(vms)
        self.cloudlets = list(cloudlets)
        self.assignment = list(assignment)
        self.vm_placement = dict(vm_placement)
        self.topology = topology or ZeroLatencyTopology()

        self._acks_outstanding = 0
        self._failed_vms: list[Vm] = []
        self.finished: list[Cloudlet] = []
        self._submitted = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Fire all VM creation requests at t=0."""
        self._acks_outstanding = len(self.vms)
        for idx, vm in enumerate(self.vms):
            dc_id = self.vm_placement[idx]
            delay = self.topology.latency(self.id, dc_id)
            self.send(dc_id, delay, EventTag.VM_CREATE, data=vm)
        if not self.vms:
            self._submit_cloudlets()

    def process_event(self, event: Event) -> None:
        if event.tag is EventTag.VM_CREATE_ACK:
            self._process_ack(event)
        elif event.tag is EventTag.CLOUDLET_RETURN:
            self._process_return(event)
        elif event.tag in (EventTag.NONE, EventTag.END_OF_SIMULATION):
            pass
        else:
            raise ValueError(f"{self.name}: unexpected event tag {event.tag!r}")

    def _process_ack(self, event: Event) -> None:
        vm, success = event.data
        if not success:
            self._failed_vms.append(vm)
        self._acks_outstanding -= 1
        if self._acks_outstanding == 0:
            if self._failed_vms:
                failed_ids = [vm.vm_id for vm in self._failed_vms]
                raise RuntimeError(
                    f"{self.name}: datacenters rejected VMs {failed_ids[:10]} "
                    f"({len(failed_ids)} total); scenario hosts are undersized"
                )
            self._submit_cloudlets()

    def _submit_cloudlets(self) -> None:
        """Send every cloudlet to the datacenter hosting its assigned VM."""
        if self._submitted:
            return
        self._submitted = True
        for c_idx, cloudlet in enumerate(self.cloudlets):
            vm = self.vms[self.assignment[c_idx]]
            dc_id = self.vm_placement[self.assignment[c_idx]]
            cloudlet.vm_id = vm.vm_id
            delay = self.topology.latency(self.id, dc_id)
            self.send(dc_id, delay, EventTag.CLOUDLET_SUBMIT, data=cloudlet)

    def _process_return(self, event: Event) -> None:
        cloudlet: Cloudlet = event.data
        if cloudlet.status is CloudletStatus.FAILED:
            raise RuntimeError(
                f"{self.name}: cloudlet {cloudlet.cloudlet_id} failed "
                f"(vm {cloudlet.vm_id} missing in target datacenter)"
            )
        self.finished.append(cloudlet)

    # -- results -----------------------------------------------------------------

    @property
    def all_finished(self) -> bool:
        return len(self.finished) == len(self.cloudlets)


__all__ = ["DatacenterBroker"]
