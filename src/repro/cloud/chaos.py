"""Seeded chaos harness: randomized fault plans + recovery comparison.

The bio-inspired schedulers are pitched as *self-organising*; this module
measures that claim.  :func:`generate_fault_plan` draws a reproducible
fault plan — VM crashes (some recovering), correlated host crashes and
straggler windows — scaled to a run's fault-free makespan, and
:func:`run_chaos_suite` executes every (scheduler, seed) cell three ways:

1. fault-free baseline (:class:`~repro.cloud.simulation.CloudSimulation`),
2. the same plan under blind round-robin recovery
   (:func:`~repro.cloud.faults.run_with_failures`),
3. the same plan under scheduler-driven rescheduling with retry backoff
   (:func:`~repro.cloud.resilience.run_resilient`),

reducing each faulted run to :class:`~repro.metrics.resilience.RecoveryMetrics`
so degradation ratios are directly comparable across schedulers and
recovery strategies.

Everything is derived from the root seed via tagged
:func:`~repro.core.rng.spawn_rng` streams, so a chaos cell is exactly
reproducible from ``(scenario, scheduler, seed, config)``.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # online/control import chaos-adjacent modules; stay lazy
    from repro.cloud.control import ControlConfig
    from repro.schedulers.online import OnlineScheduler
    from repro.workloads.timeline import Timeline

from repro.cloud.faults import (
    FaultEvent,
    HostFailure,
    VmFailure,
    VmSlowdown,
    run_with_failures,
    validate_fault_plan,
)
from repro.cloud.resilience import RetryPolicy, run_resilient
from repro.cloud.simulation import CloudSimulation, SimulationResult
from repro.core.rng import spawn_rng
from repro.metrics.resilience import RecoveryMetrics, recovery_metrics, storm_metrics
from repro.schedulers.base import Scheduler
from repro.workloads.spec import ScenarioSpec


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of a randomized fault plan.

    Counts are drawn over *disjoint* VM sets (a crashed VM is never also a
    straggler anchor), which keeps generated plans valid by construction.
    All times are fractions of the baseline (fault-free) makespan, so the
    same config stresses small and large scenarios proportionally.
    """

    num_vm_failures: int = 1
    num_host_failures: int = 0
    num_stragglers: int = 1
    #: fraction of VM failures that later recover (rounded down).
    recover_fraction: float = 0.5
    #: fault instants are drawn uniformly in this makespan fraction window.
    fault_window: tuple[float, float] = (0.1, 0.6)
    #: recovery downtime, as a makespan fraction window.
    downtime_window: tuple[float, float] = (0.1, 0.3)
    #: straggler MIPS factor window (values in (0, 1)).
    factor_window: tuple[float, float] = (0.2, 0.6)
    #: straggler duration, as a makespan fraction window.
    duration_window: tuple[float, float] = (0.1, 0.4)

    def __post_init__(self) -> None:
        if min(self.num_vm_failures, self.num_host_failures, self.num_stragglers) < 0:
            raise ValueError("fault counts must be non-negative")
        if not 0 <= self.recover_fraction <= 1:
            raise ValueError(
                f"recover_fraction must be in [0, 1], got {self.recover_fraction}"
            )
        for name, (lo, hi) in (
            ("fault_window", self.fault_window),
            ("downtime_window", self.downtime_window),
            ("duration_window", self.duration_window),
        ):
            if not (math.isfinite(lo) and math.isfinite(hi)):
                raise ValueError(f"{name} bounds must be finite, got ({lo}, {hi})")
            if not 0 < lo <= hi:
                raise ValueError(f"{name} must satisfy 0 < lo <= hi, got ({lo}, {hi})")
        lo, hi = self.factor_window
        if not (math.isfinite(lo) and math.isfinite(hi)):
            raise ValueError(f"factor_window bounds must be finite, got ({lo}, {hi})")
        if not 0 < lo <= hi < 1:
            raise ValueError(
                f"factor_window must satisfy 0 < lo <= hi < 1, got ({lo}, {hi})"
            )

    @property
    def num_anchors(self) -> int:
        """Distinct VMs the plan needs."""
        return self.num_vm_failures + self.num_host_failures + self.num_stragglers


def generate_fault_plan(
    scenario: ScenarioSpec,
    baseline_makespan: float,
    config: ChaosConfig,
    rng: np.random.Generator,
) -> list[FaultEvent]:
    """Draw a valid fault plan for ``scenario`` from ``rng``.

    Anchor VMs for crashes, host crashes and stragglers are sampled without
    replacement, so no VM carries two plan entries and the plan always
    passes :func:`~repro.cloud.faults.validate_fault_plan`.  At least one
    VM is left untouched (a plan that crashes the whole fleet measures
    nothing but dead-letters).
    """
    if not math.isfinite(baseline_makespan) or baseline_makespan <= 0:
        raise ValueError(
            f"baseline makespan must be positive and finite, got {baseline_makespan}"
        )
    needed = config.num_anchors
    if needed == 0:
        return []
    crashing = config.num_vm_failures + config.num_host_failures
    if crashing >= scenario.num_vms:
        raise ValueError(
            f"plan crashes {crashing} of {scenario.num_vms} VMs; at least one "
            f"VM must survive"
        )
    if needed > scenario.num_vms:
        raise ValueError(
            f"plan needs {needed} distinct anchor VMs, scenario has "
            f"{scenario.num_vms}"
        )
    anchors = rng.choice(scenario.num_vms, size=needed, replace=False)
    span = baseline_makespan

    def window(bounds: tuple[float, float]) -> float:
        return float(rng.uniform(bounds[0], bounds[1]) * span)

    plan: list[FaultEvent] = []
    cursor = 0
    recovering = int(config.num_vm_failures * config.recover_fraction)
    for k in range(config.num_vm_failures):
        downtime = window(config.downtime_window) if k < recovering else None
        plan.append(
            VmFailure(int(anchors[cursor]), window(config.fault_window), downtime)
        )
        cursor += 1
    for _ in range(config.num_host_failures):
        plan.append(HostFailure(int(anchors[cursor]), window(config.fault_window)))
        cursor += 1
    for _ in range(config.num_stragglers):
        plan.append(
            VmSlowdown(
                int(anchors[cursor]),
                window(config.fault_window),
                duration=window(config.duration_window),
                factor=float(rng.uniform(*config.factor_window)),
            )
        )
        cursor += 1
    return validate_fault_plan(plan, scenario.num_vms)


@dataclass(frozen=True)
class ChaosCell:
    """One (scheduler, seed) cell of a chaos suite."""

    scheduler_name: str
    seed: int
    plan_size: int
    baseline: SimulationResult
    round_robin: SimulationResult
    rescheduling: SimulationResult
    round_robin_recovery: RecoveryMetrics
    rescheduling_recovery: RecoveryMetrics

    def summary(self) -> dict[str, float]:
        """Headline numbers for reports: degradation under both recoveries."""
        return {
            "baseline_makespan": self.baseline.makespan,
            "rr_degradation": self.round_robin_recovery.makespan_degradation,
            "resched_degradation": self.rescheduling_recovery.makespan_degradation,
            "resched_retries": float(self.rescheduling_recovery.retries),
            "resched_dead_lettered": float(self.rescheduling_recovery.dead_lettered),
            "resched_mttr": self.rescheduling_recovery.mttr,
        }


@dataclass
class ChaosReport:
    """All cells of one suite plus aggregate views."""

    scenario_name: str
    config: ChaosConfig
    cells: list[ChaosCell] = field(default_factory=list)

    def mean_degradation(self, recovery: str = "rescheduling") -> dict[str, float]:
        """Mean makespan-degradation ratio per scheduler name."""
        if recovery not in ("rescheduling", "round_robin"):
            raise ValueError(f"unknown recovery strategy {recovery!r}")
        ratios: dict[str, list[float]] = {}
        for cell in self.cells:
            m = (
                cell.rescheduling_recovery
                if recovery == "rescheduling"
                else cell.round_robin_recovery
            )
            ratios.setdefault(cell.scheduler_name, []).append(m.makespan_degradation)
        return {name: float(np.mean(vals)) for name, vals in ratios.items()}

    def to_rows(self) -> list[dict[str, float | str | int]]:
        """Flat rows (one per cell) for CSV/tabular reporting."""
        return [
            {"scheduler": c.scheduler_name, "seed": c.seed, "faults": c.plan_size,
             **c.summary()}
            for c in self.cells
        ]

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form the ``report`` CLI renders; see :func:`load_report_rows`."""
        return {
            "kind": "chaos-report",
            "scenario": self.scenario_name,
            "config": dataclasses.asdict(self.config),
            "rows": self.to_rows(),
        }

    def save(self, path: "Path | str") -> Path:
        """Write :meth:`to_dict` as JSON; returns the path written."""
        return _save_report(self.to_dict(), path)


def run_chaos_suite(
    scenario: ScenarioSpec,
    schedulers: Mapping[str, Scheduler],
    seeds: Sequence[int] = (0,),
    config: ChaosConfig | None = None,
    *,
    retry_policy: RetryPolicy | None = None,
    execution_model: str = "space-shared",
) -> ChaosReport:
    """Run the full chaos grid: schedulers × seeds × {baseline, RR, resched}.

    Each cell generates its own plan from
    ``spawn_rng(seed, "chaos/<scenario>")`` — all schedulers at one seed
    face the *same* faults, so differences in degradation are attributable
    to the recovery placement, not the draw.
    """
    config = config or ChaosConfig()
    report = ChaosReport(scenario_name=scenario.name, config=config)
    for seed in seeds:
        plan_rng = spawn_rng(seed, f"chaos/{scenario.name}")
        plan: list[FaultEvent] | None = None
        for name, scheduler in schedulers.items():
            baseline = CloudSimulation(
                scenario, scheduler, seed=seed, execution_model=execution_model
            ).run()
            if plan is None:
                plan = generate_fault_plan(
                    scenario, baseline.makespan, config, plan_rng
                )
            rr = run_with_failures(
                scenario, scheduler, plan, seed=seed,
                execution_model=execution_model,
            )
            resched = run_resilient(
                scenario, scheduler, plan, seed=seed,
                retry_policy=retry_policy, execution_model=execution_model,
            )
            report.cells.append(
                ChaosCell(
                    scheduler_name=name,
                    seed=seed,
                    plan_size=len(plan),
                    baseline=baseline,
                    round_robin=rr,
                    rescheduling=resched,
                    round_robin_recovery=recovery_metrics(baseline, rr),
                    rescheduling_recovery=recovery_metrics(baseline, resched),
                )
            )
    return report


# -- timeline-driven storms ------------------------------------------------------


@dataclass(frozen=True)
class StormCell:
    """One (policy, seed) cell of a storm suite: three runs of one timeline.

    ``calm`` ran the timeline with faults stripped
    (:meth:`~repro.workloads.timeline.Timeline.without_faults`),
    ``uncontrolled`` the full storm with self-healing retry only, and
    ``controlled`` the same storm with a MAPE-K
    :class:`~repro.cloud.control.ControlLoop` attached.  All three share
    the scenario, seed, arrival dynamics and standby reserve, so the
    degradation difference is attributable to the loop alone.
    """

    policy_name: str
    seed: int
    faults: int
    calm: SimulationResult
    uncontrolled: SimulationResult
    controlled: SimulationResult
    uncontrolled_recovery: RecoveryMetrics
    controlled_recovery: RecoveryMetrics

    def summary(self) -> dict[str, float]:
        """Headline numbers: both arms' degradation, SLA misses, recovery."""
        return {
            "calm_makespan": self.calm.makespan,
            "uncontrolled_degradation": self.uncontrolled_recovery.makespan_degradation,
            "controlled_degradation": self.controlled_recovery.makespan_degradation,
            "uncontrolled_sla_violations": float(
                self.uncontrolled_recovery.sla_violations
            ),
            "controlled_sla_violations": float(self.controlled_recovery.sla_violations),
            "controlled_time_to_restabilize": (
                self.controlled_recovery.time_to_restabilize
            ),
            "controlled_retries": float(self.controlled_recovery.retries),
        }


@dataclass
class StormReport:
    """All cells of one timeline-storm suite plus aggregate views."""

    scenario_name: str
    timeline_name: str
    control: dict[str, Any]
    sla_seconds: float | None = None
    cells: list[StormCell] = field(default_factory=list)

    _ARMS = ("uncontrolled", "controlled")

    def _metrics(self, cell: StormCell, arm: str) -> RecoveryMetrics:
        if arm not in self._ARMS:
            raise ValueError(f"unknown storm arm {arm!r}; expected one of {self._ARMS}")
        return (
            cell.controlled_recovery
            if arm == "controlled"
            else cell.uncontrolled_recovery
        )

    def mean_degradation(self, arm: str = "controlled") -> float:
        """Mean makespan-degradation ratio over all cells of one arm."""
        values = [self._metrics(c, arm).makespan_degradation for c in self.cells]
        return float(np.mean(values)) if values else math.nan

    def sla_violation_count(self, arm: str = "controlled") -> int:
        """Total SLO-violating cloudlets over all cells of one arm."""
        return int(sum(self._metrics(c, arm).sla_violations for c in self.cells))

    def to_rows(self) -> list[dict[str, float | str | int]]:
        """Flat rows (one per cell) for CSV/tabular reporting."""
        return [
            {"policy": c.policy_name, "seed": c.seed, "faults": c.faults,
             **c.summary()}
            for c in self.cells
        ]

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form the ``report`` CLI renders; see :func:`load_report_rows`."""
        return {
            "kind": "storm-report",
            "scenario": self.scenario_name,
            "timeline": self.timeline_name,
            "control": self.control,
            "sla_seconds": self.sla_seconds,
            "mean_degradation": {
                arm: self.mean_degradation(arm) for arm in self._ARMS
            },
            "sla_violations": {
                arm: self.sla_violation_count(arm) for arm in self._ARMS
            },
            "rows": self.to_rows(),
        }

    def save(self, path: "Path | str") -> Path:
        """Write :meth:`to_dict` as JSON; returns the path written."""
        return _save_report(self.to_dict(), path)


def _save_report(payload: dict[str, Any], path: "Path | str") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


REPORT_KINDS = ("chaos-report", "storm-report")


def load_report_rows(path: "Path | str") -> dict[str, Any]:
    """Load a saved chaos/storm report JSON back into its dict form.

    Raises ``ValueError`` when the file is not a recognisable report (so
    the CLI can fall through to other artifact kinds).
    """
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") not in REPORT_KINDS:
        raise ValueError(
            f"{path} is not a chaos/storm report (expected a 'kind' of "
            f"{REPORT_KINDS})"
        )
    if not isinstance(payload.get("rows"), list):
        raise ValueError(f"{path} is missing its 'rows' table")
    return payload


def demo_storm_timeline(num_vms: int) -> "Timeline":
    """A representative storm for benches, smokes and the ``storm`` CLI.

    Arrival pressure (a ramp into a burst) overlapping capacity loss (two
    recovering crashes and a straggler window) — enough dynamics that a
    control loop has something to win on, small enough to run in seconds.
    Fault anchors are drawn from the low VM indices so any fleet of at
    least four VMs can host it.
    """
    from repro.workloads.timeline import Burst, Drift, RateRamp, Timeline, VmFault

    if num_vms < 4:
        raise ValueError(f"demo storm needs at least 4 VMs, got {num_vms}")
    return Timeline(
        base_rate=8.0,
        entries=(
            RateRamp("+5s", "10s", {"distribution": "uniform", "min": 12, "max": 16}),
            Burst("+8s", 30),
            VmFault("+4s", 1, downtime="6s"),
            VmFault("+9s", 3, downtime="8s"),
            Drift("+3s", 2, duration=20.0, factor=0.25),
        ),
        name="demo-storm",
    )


def run_storm_suite(
    scenario: ScenarioSpec,
    policies: Mapping[str, Callable[[], "OnlineScheduler"]],
    timeline: "Timeline",
    control: "ControlConfig",
    seeds: Sequence[int] = (0,),
    *,
    sla_seconds: float | None = None,
    execution_model: str = "space-shared",
) -> StormReport:
    """Run the storm grid: policies × seeds × {calm, uncontrolled, controlled}.

    Per cell the same compiled timeline is run three ways on the online
    engine: faults stripped (calm twin), full storm with self-healing
    retry only (uncontrolled — the standby reserve exists but nothing
    recruits it), and full storm with the MAPE-K loop attached
    (controlled).  ``sla_seconds`` defaults to ``control.sla_seconds``.
    Deterministic: a cell is a pure function of
    ``(scenario, policy, timeline, control, seed)``.
    """
    from repro.cloud.online import OnlineCloudSimulation

    if not timeline.fault_entries:
        raise ValueError(
            f"timeline {timeline.name!r} has no fault entries; a storm suite "
            "needs faults to measure recovery against"
        )
    if sla_seconds is None:
        sla_seconds = control.sla_seconds
    report = StormReport(
        scenario_name=scenario.name,
        timeline_name=timeline.name,
        control=control.to_dict(),
        sla_seconds=sla_seconds,
    )
    calm_timeline = timeline.without_faults()
    for seed in seeds:
        faults = len(timeline.compile(scenario.num_vms, seed=seed).fault_plan)
        for name, make_policy in policies.items():
            calm = OnlineCloudSimulation(
                scenario, make_policy(), seed=seed,
                execution_model=execution_model,
                timeline=calm_timeline, standby_vms=control.standby_vms,
            ).run()
            uncontrolled = OnlineCloudSimulation(
                scenario, make_policy(), seed=seed,
                execution_model=execution_model,
                timeline=timeline, standby_vms=control.standby_vms,
            ).run()
            controlled = OnlineCloudSimulation(
                scenario, make_policy(), seed=seed,
                execution_model=execution_model,
                timeline=timeline, control=control,
            ).run()
            report.cells.append(
                StormCell(
                    policy_name=name,
                    seed=seed,
                    faults=faults,
                    calm=calm,
                    uncontrolled=uncontrolled,
                    controlled=controlled,
                    uncontrolled_recovery=storm_metrics(
                        calm, uncontrolled, sla_seconds
                    ),
                    controlled_recovery=storm_metrics(calm, controlled, sla_seconds),
                )
            )
    return report


__all__ = [
    "ChaosConfig",
    "ChaosCell",
    "ChaosReport",
    "StormCell",
    "StormReport",
    "generate_fault_plan",
    "run_chaos_suite",
    "run_storm_suite",
    "demo_storm_timeline",
    "load_report_rows",
    "REPORT_KINDS",
]
