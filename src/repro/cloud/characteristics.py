"""Datacenter characteristics and the CloudSim cost model.

Encodes Table VII of the paper: each datacenter carries unit prices for
memory, storage, bandwidth and processing.  :meth:`DatacenterCharacteristics
.cloudlet_cost` prices one cloudlet execution the way the paper's
"Processing Cost" metric (Section VI-C4, Fig. 6d) describes: the cost of the
MIPS consumed plus the RAM, storage and bandwidth the assigned VM uses on
that datacenter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.cloudlet import Cloudlet
from repro.cloud.vm import Vm


@dataclass(frozen=True, slots=True)
class DatacenterCharacteristics:
    """Immutable pricing/description record for a datacenter.

    Attributes
    ----------
    cost_per_mem:
        $/MB of VM RAM per executed cloudlet (Table VII ``CostPerMemeory``,
        0.01-0.05 in the heterogeneous setup).
    cost_per_storage:
        $/MB of VM image storage (``CostPerStorage``, 0.001-0.004).
    cost_per_bw:
        $/MB transferred (``CostPerBandwidth``, 0.01-0.05).
    cost_per_cpu:
        $/second of PE time (``CostPerPrcessing``, fixed at 3).
    arch, os, vmm:
        Descriptive fields kept for CloudSim parity.
    timezone:
        Offset used by latency-aware topologies.
    """

    cost_per_mem: float = 0.05
    cost_per_storage: float = 0.001
    cost_per_bw: float = 0.0
    cost_per_cpu: float = 3.0
    arch: str = "x86"
    os: str = "Linux"
    vmm: str = "Xen"
    timezone: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("cost_per_mem", "cost_per_storage", "cost_per_bw", "cost_per_cpu"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative, got {value}")

    def cloudlet_cost(self, cloudlet: Cloudlet, vm: Vm) -> float:
        """Price one finished cloudlet run on ``vm`` in this datacenter.

        ``cpu_cost * (length / mips) + mem_cost * vm_ram
        + storage_cost * vm_size + bw_cost * (file_size + output_size)``
        """
        cpu_seconds = cloudlet.length / vm.mips
        return (
            self.cost_per_cpu * cpu_seconds
            + self.cost_per_mem * vm.ram
            + self.cost_per_storage * vm.size
            + self.cost_per_bw * (cloudlet.file_size + cloudlet.output_size)
        )

    def cost_components(self, cloudlet: Cloudlet, vm: Vm) -> dict[str, float]:
        """Itemised version of :meth:`cloudlet_cost` for reporting."""
        return {
            "cpu": self.cost_per_cpu * (cloudlet.length / vm.mips),
            "mem": self.cost_per_mem * vm.ram,
            "storage": self.cost_per_storage * vm.size,
            "bw": self.cost_per_bw * (cloudlet.file_size + cloudlet.output_size),
        }


__all__ = ["DatacenterCharacteristics"]
