"""Cloudlets — the unit of work submitted to the cloud.

A cloudlet mirrors CloudSim's ``Cloudlet``: a task with a computational
length in million instructions (MI), input/output file sizes and a PE
requirement.  The paper's workloads (Tables IV and VI) are single-PE
cloudlets with lengths 250 MI (homogeneous) or 1 000-20 000 MI
(heterogeneous).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CloudletStatus(enum.Enum):
    """Lifecycle of a cloudlet."""

    CREATED = "created"
    QUEUED = "queued"       #: accepted by a VM, waiting for a free PE
    RUNNING = "running"     #: executing on a PE
    SUCCESS = "success"     #: finished
    FAILED = "failed"       #: rejected (e.g. VM never materialised)


@dataclass
class Cloudlet:
    """A schedulable task.

    Attributes
    ----------
    cloudlet_id:
        Unique id within a simulation.
    length:
        Computational size in MI (the paper's ``cLength``).
    pes:
        Number of processing elements required (``cPesNumber``).
    file_size:
        Input size in MB (``cFileSize``); feeds the ACO heuristic (Eq. 6)
        and the bandwidth cost term.
    output_size:
        Output size in MB (``cOutputSize``).
    """

    cloudlet_id: int
    length: float
    pes: int = 1
    file_size: float = 0.0
    output_size: float = 0.0

    # -- runtime state (filled in by the simulator) -------------------------
    status: CloudletStatus = field(default=CloudletStatus.CREATED, compare=False)
    vm_id: int = field(default=-1, compare=False)
    datacenter_id: int = field(default=-1, compare=False)
    submission_time: float = field(default=-1.0, compare=False)
    exec_start_time: float = field(default=-1.0, compare=False)
    finish_time: float = field(default=-1.0, compare=False)
    #: MI still to execute; maintained by the cloudlet scheduler.
    remaining_length: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"cloudlet length must be positive, got {self.length}")
        if self.pes < 1:
            raise ValueError(f"cloudlet pes must be >= 1, got {self.pes}")
        if self.file_size < 0 or self.output_size < 0:
            raise ValueError("file sizes must be non-negative")
        self.remaining_length = float(self.length)

    # -- derived quantities ---------------------------------------------------

    @property
    def is_finished(self) -> bool:
        return self.status is CloudletStatus.SUCCESS

    @property
    def wall_execution_time(self) -> float:
        """Time spent from execution start to finish (the paper's per-task
        execution time used by the imbalance metric).

        Returns ``nan`` until the cloudlet finishes.
        """
        if self.finish_time < 0 or self.exec_start_time < 0:
            return float("nan")
        return self.finish_time - self.exec_start_time

    @property
    def waiting_time(self) -> float:
        """Queueing delay between submission and execution start."""
        if self.exec_start_time < 0 or self.submission_time < 0:
            return float("nan")
        return self.exec_start_time - self.submission_time

    def mark_submitted(self, time: float, vm_id: int, datacenter_id: int) -> None:
        """Record acceptance by a datacenter.

        The submission timestamp is only set once, so a retry after a VM
        failure keeps the original submission (waiting-time metrics then
        include the recovery delay).
        """
        if self.submission_time < 0:
            self.submission_time = time
        self.vm_id = vm_id
        self.datacenter_id = datacenter_id
        self.status = CloudletStatus.QUEUED

    def mark_running(self, time: float) -> None:
        """Record the moment a PE starts executing the cloudlet."""
        if self.exec_start_time < 0:
            self.exec_start_time = time
        self.status = CloudletStatus.RUNNING

    def mark_finished(self, time: float) -> None:
        """Record completion."""
        self.finish_time = time
        self.remaining_length = 0.0
        self.status = CloudletStatus.SUCCESS

    def reset_for_retry(self) -> None:
        """Discard all progress so the cloudlet can be resubmitted.

        Used after a VM failure: partial work is lost, but the original
        submission time is preserved so waiting-time metrics reflect the
        recovery delay.
        """
        self.remaining_length = float(self.length)
        self.exec_start_time = -1.0
        self.finish_time = -1.0
        self.status = CloudletStatus.CREATED
        self.vm_id = -1
        self.datacenter_id = -1


__all__ = ["Cloudlet", "CloudletStatus"]
