"""Per-VM cloudlet execution models.

Two policies, matching CloudSim semantics:

* :class:`CloudletSchedulerSpaceShared` — at most ``pes`` cloudlets run at a
  time, each pinned to one PE at full per-PE MIPS; the rest wait FIFO.
* :class:`CloudletSchedulerTimeShared` — every resident cloudlet runs
  immediately; the VM's total capacity is divided equally, with each
  single-PE cloudlet capped at one PE's MIPS.

The datacenter drives a scheduler through two calls:

* :meth:`CloudletScheduler.advance_to` — integrate progress up to ``now``
  and return cloudlets that finished (with exact finish timestamps);
* :meth:`CloudletScheduler.next_completion_time` — the next instant at
  which a completion will occur, used to schedule the datacenter's wake-up
  event.
"""

from __future__ import annotations

import abc
import heapq
import math
from collections import deque
from typing import Iterable

from repro.cloud.cloudlet import Cloudlet

_INF = math.inf


class CloudletScheduler(abc.ABC):
    """Abstract per-VM execution model."""

    def __init__(self) -> None:
        self._mips = 0.0
        self._pes = 0
        self._bound = False
        #: straggler factor: effective per-PE MIPS is ``mips * _mips_scale``.
        self._mips_scale = 1.0

    def bind(self, mips: float, pes: int) -> None:
        """Attach the scheduler to a VM's capacity.  Called by ``Vm``."""
        if self._bound:
            raise RuntimeError("cloudlet scheduler is already bound to a VM")
        if mips <= 0 or pes < 1:
            raise ValueError("scheduler requires positive mips and pes >= 1")
        self._mips = float(mips)
        self._pes = int(pes)
        self._bound = True

    @property
    def mips(self) -> float:
        return self._mips

    @property
    def pes(self) -> int:
        return self._pes

    @property
    def mips_scale(self) -> float:
        """Current straggler factor (1.0 = full speed)."""
        return self._mips_scale

    @property
    def effective_mips(self) -> float:
        """Per-PE MIPS after straggler scaling."""
        return self._mips * self._mips_scale

    def set_mips_scale(self, scale: float, now: float) -> None:
        """Change the VM's effective speed at time ``now``.

        Callers must :meth:`advance_to` ``now`` first so no completion that
        predates the rate change is still pending; in-flight work is then
        re-timed under the new rate.
        """
        self._require_bound()
        if scale <= 0:
            raise ValueError(f"mips scale must be positive, got {scale}")
        if scale == self._mips_scale:
            return
        self._retime(now, scale)
        self._mips_scale = float(scale)

    def _require_bound(self) -> None:
        if not self._bound:
            raise RuntimeError("cloudlet scheduler is not bound to a VM")

    # -- interface -----------------------------------------------------------

    @abc.abstractmethod
    def submit(self, cloudlet: Cloudlet, now: float) -> None:
        """Accept a cloudlet at time ``now``."""

    @abc.abstractmethod
    def advance_to(self, now: float) -> list[Cloudlet]:
        """Progress execution up to ``now``; return cloudlets finished by then.

        Finished cloudlets carry exact ``finish_time`` stamps, which may be
        strictly earlier than ``now``.
        """

    @abc.abstractmethod
    def next_completion_time(self) -> float:
        """Absolute time of the next completion, or ``inf`` if idle."""

    @abc.abstractmethod
    def resident_cloudlets(self) -> Iterable[Cloudlet]:
        """Cloudlets currently queued or running."""

    @abc.abstractmethod
    def drain_resident(self, now: float) -> list[Cloudlet]:
        """Evict every resident cloudlet, leaving the scheduler empty.

        Each returned cloudlet's ``remaining_length`` reflects its true
        progress at ``now`` (so callers can account lost work before
        resetting it for retry).  Used by the VM-failure path.
        """

    @abc.abstractmethod
    def remove(self, cloudlet: Cloudlet, now: float) -> bool:
        """Evict one resident cloudlet (speculative-execution cancel).

        Returns ``False`` when the cloudlet is not resident (already
        finished or never submitted here).  On success the cloudlet's
        ``remaining_length`` reflects its progress at ``now``.
        """

    @abc.abstractmethod
    def _retime(self, now: float, new_scale: float) -> None:
        """Re-time in-flight work for a rate change at ``now``."""

    @property
    @abc.abstractmethod
    def busy(self) -> bool:
        """True while any cloudlet is queued or running."""


class CloudletSchedulerSpaceShared(CloudletScheduler):
    """FIFO space-shared execution: one cloudlet per PE, full MIPS each.

    Because running cloudlets execute at a constant rate, completion times
    are exact; the scheduler keeps a heap of ``(finish_time, cloudlet)``
    plus a FIFO queue of waiting cloudlets.
    """

    def __init__(self) -> None:
        super().__init__()
        self._running: list[tuple[float, int, Cloudlet]] = []  # heap
        self._queue: deque[Cloudlet] = deque()
        self._tick = 0  # heap tie-breaker

    def submit(self, cloudlet: Cloudlet, now: float) -> None:
        self._require_bound()
        if cloudlet.pes > self._pes:
            raise ValueError(
                f"cloudlet {cloudlet.cloudlet_id} needs {cloudlet.pes} PEs, "
                f"VM has {self._pes}"
            )
        if len(self._running) + cloudlet.pes <= self._pes:
            self._start(cloudlet, now)
        else:
            self._queue.append(cloudlet)

    def _start(self, cloudlet: Cloudlet, time: float) -> None:
        cloudlet.mark_running(time)
        run_time = cloudlet.remaining_length / self.effective_mips
        self._tick += 1
        heapq.heappush(self._running, (time + run_time, self._tick, cloudlet))

    def advance_to(self, now: float) -> list[Cloudlet]:
        self._require_bound()
        finished: list[Cloudlet] = []
        # Completions free PEs which admit queued cloudlets whose own
        # completions may also fall before `now`; process chronologically.
        while self._running and self._running[0][0] <= now + 1e-12:
            finish_time, _, cloudlet = heapq.heappop(self._running)
            cloudlet.mark_finished(finish_time)
            finished.append(cloudlet)
            if self._queue:
                self._start(self._queue.popleft(), finish_time)
        return finished

    def next_completion_time(self) -> float:
        return self._running[0][0] if self._running else _INF

    def resident_cloudlets(self) -> Iterable[Cloudlet]:
        for _, _, cloudlet in self._running:
            yield cloudlet
        yield from self._queue

    def _record_progress(self, cloudlet: Cloudlet, finish_time: float, now: float) -> None:
        """Burn the running cloudlet's remaining length down to its value at ``now``."""
        remaining = max(0.0, (finish_time - now) * self.effective_mips)
        cloudlet.remaining_length = min(cloudlet.remaining_length, remaining)

    def drain_resident(self, now: float) -> list[Cloudlet]:
        evicted: list[Cloudlet] = []
        for finish_time, _, cloudlet in self._running:
            self._record_progress(cloudlet, finish_time, now)
            evicted.append(cloudlet)
        evicted.extend(self._queue)
        self._running.clear()
        self._queue.clear()
        return evicted

    def remove(self, cloudlet: Cloudlet, now: float) -> bool:
        for i, queued in enumerate(self._queue):
            if queued is cloudlet:
                del self._queue[i]
                return True
        for i, (finish_time, _, running) in enumerate(self._running):
            if running is cloudlet:
                self._record_progress(cloudlet, finish_time, now)
                self._running[i] = self._running[-1]
                self._running.pop()
                heapq.heapify(self._running)
                # The freed PE admits the next queued cloudlet immediately.
                if self._queue:
                    self._start(self._queue.popleft(), now)
                return True
        return False

    def _retime(self, now: float, new_scale: float) -> None:
        new_mips = self._mips * new_scale
        retimed: list[tuple[float, int, Cloudlet]] = []
        for finish_time, tick, cloudlet in self._running:
            self._record_progress(cloudlet, finish_time, now)
            retimed.append((now + cloudlet.remaining_length / new_mips, tick, cloudlet))
        self._running = retimed
        heapq.heapify(self._running)

    @property
    def busy(self) -> bool:
        return bool(self._running or self._queue)


class CloudletSchedulerTimeShared(CloudletScheduler):
    """Processor-sharing execution.

    All resident cloudlets progress simultaneously.  With ``k`` resident
    single-PE cloudlets on a VM of total capacity ``mips * pes``, each
    receives ``min(mips, mips * pes / k)`` MIPS.  Rates change only when the
    population changes, so progress is integrated piecewise-linearly.
    """

    def __init__(self) -> None:
        super().__init__()
        self._resident: list[Cloudlet] = []
        self._last_update = 0.0

    def _share(self) -> float:
        """Per-cloudlet MIPS at the current population."""
        k = len(self._resident)
        if k == 0:
            return 0.0
        mips = self.effective_mips
        return min(mips, mips * self._pes / k)

    def submit(self, cloudlet: Cloudlet, now: float) -> None:
        self._require_bound()
        if cloudlet.pes > self._pes:
            raise ValueError(
                f"cloudlet {cloudlet.cloudlet_id} needs {cloudlet.pes} PEs, "
                f"VM has {self._pes}"
            )
        self._integrate_to(now)
        cloudlet.mark_running(now)
        self._resident.append(cloudlet)

    def _integrate_to(self, now: float) -> None:
        """Burn down remaining lengths between the last update and ``now``."""
        dt = now - self._last_update
        if dt > 0 and self._resident:
            rate = self._share()
            for cloudlet in self._resident:
                cloudlet.remaining_length = max(0.0, cloudlet.remaining_length - rate * dt)
        self._last_update = max(self._last_update, now)

    def advance_to(self, now: float) -> list[Cloudlet]:
        self._require_bound()
        finished: list[Cloudlet] = []
        # Population changes at each completion change the share; walk
        # completion-by-completion until `now`.
        while self._resident:
            rate = self._share()
            min_remaining = min(c.remaining_length for c in self._resident)
            t_next = self._last_update + min_remaining / rate
            if t_next > now + 1e-12:
                break
            self._integrate_to(t_next)
            still: list[Cloudlet] = []
            for cloudlet in self._resident:
                if cloudlet.remaining_length <= 1e-9:
                    cloudlet.mark_finished(t_next)
                    finished.append(cloudlet)
                else:
                    still.append(cloudlet)
            self._resident = still
        self._integrate_to(now)
        return finished

    def next_completion_time(self) -> float:
        if not self._resident:
            return _INF
        rate = self._share()
        min_remaining = min(c.remaining_length for c in self._resident)
        return self._last_update + min_remaining / rate

    def resident_cloudlets(self) -> Iterable[Cloudlet]:
        return iter(self._resident)

    def drain_resident(self, now: float) -> list[Cloudlet]:
        self._integrate_to(now)
        evicted = self._resident
        self._resident = []
        return evicted

    def remove(self, cloudlet: Cloudlet, now: float) -> bool:
        self._integrate_to(now)
        for i, resident in enumerate(self._resident):
            if resident is cloudlet:
                del self._resident[i]
                return True
        return False

    def _retime(self, now: float, new_scale: float) -> None:
        # Progress integrates from remaining lengths, so it suffices to burn
        # down under the old rate; the next integration uses the new one.
        self._integrate_to(now)

    @property
    def busy(self) -> bool:
        return bool(self._resident)


__all__ = [
    "CloudletScheduler",
    "CloudletSchedulerSpaceShared",
    "CloudletSchedulerTimeShared",
]
