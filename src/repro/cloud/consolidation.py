"""Host-level placement and consolidation energy analysis.

The VM-level energy model (:mod:`repro.cloud.power`) treats each VM as its
own power domain; real fleets pay per *host*, which makes VM placement an
energy decision: packing VMs onto fewer hosts (``VmAllocationConsolidating``)
strands less idle power than spreading them (CloudSim-simple /
``VmAllocationLeastUsed``).

This module quantifies that: given a finished batch and a placement policy,
it synthesizes the host layout, replays the placement, and integrates each
host's power over the batch horizon::

    E_host = idle_watts * makespan
           + (peak_watts - idle_watts) * sum_vm busy_seconds(vm) / host_pes

i.e. a host draws idle power for the whole horizon and the dynamic part in
proportion to how many of its PEs are actually computing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.host import Host
from repro.cloud.power import PowerModel, PowerModelLinear, vm_busy_times
from repro.cloud.simulation import SimulationResult, build_hosts_for_datacenter
from repro.cloud.vm_allocation import VmAllocationPolicy
from repro.workloads.spec import ScenarioSpec


@dataclass(frozen=True)
class PlacementEnergyReport:
    """Host-level energy outcome of one placement."""

    policy_name: str
    total_hosts: int
    active_hosts: int
    #: joules over the batch horizon, summed across active hosts.
    energy_joules: float
    #: vm index -> (datacenter index, host id); -1 ids never occur.
    vm_host: tuple[tuple[int, int], ...]

    @property
    def idle_host_count(self) -> int:
        return self.total_hosts - self.active_hosts


def place_vms(
    scenario: ScenarioSpec, policy: VmAllocationPolicy
) -> tuple[list[list[Host]], list[tuple[int, int]]]:
    """Synthesize hosts per datacenter and place every VM with ``policy``.

    Returns ``(hosts per datacenter, vm -> (dc, host id) map)``.

    Raises
    ------
    RuntimeError
        If the policy cannot place a VM (host sizing in the scenario specs
        always admits a feasible placement, so this indicates a broken
        policy).
    """
    hosts_per_dc: list[list[Host]] = [
        build_hosts_for_datacenter(scenario, dc) for dc in range(scenario.num_datacenters)
    ]
    vm_host: list[tuple[int, int]] = []
    for vm_idx, spec in enumerate(scenario.vms):
        dc = scenario.vm_datacenter[vm_idx]
        vm = spec.build(vm_id=vm_idx)
        if not policy.allocate(hosts_per_dc[dc], vm):
            raise RuntimeError(
                f"policy {type(policy).__name__} failed to place vm {vm_idx} "
                f"in datacenter {dc}"
            )
        assert vm.host is not None
        vm_host.append((dc, vm.host.host_id))
    return hosts_per_dc, vm_host


def placement_energy(
    scenario: ScenarioSpec,
    result: SimulationResult,
    policy: VmAllocationPolicy,
    power_model: PowerModel | None = None,
) -> PlacementEnergyReport:
    """Host-level energy of executing ``result``'s batch under ``policy``."""
    model = power_model or PowerModelLinear()
    hosts_per_dc, vm_host = place_vms(scenario, policy)
    busy = vm_busy_times(scenario, result.assignment, result.exec_times)
    horizon = result.makespan
    if horizon <= 0:
        raise ValueError("result has a non-positive makespan")

    # Aggregate busy PE-seconds per (dc, host).
    host_busy: dict[tuple[int, int], float] = {}
    for vm_idx, key in enumerate(vm_host):
        host_busy[key] = host_busy.get(key, 0.0) + float(busy[vm_idx])

    idle = model.power(0.0)
    peak = model.power(1.0)
    total_hosts = sum(len(hosts) for hosts in hosts_per_dc)
    energy = 0.0
    active = 0
    for dc, hosts in enumerate(hosts_per_dc):
        for host in hosts:
            if host.vm_count == 0:
                continue  # powered off
            active += 1
            pe_seconds = host_busy.get((dc, host.host_id), 0.0)
            mean_util = min(1.0, pe_seconds / (host.pes * horizon))
            energy += horizon * (idle + (peak - idle) * mean_util)
    return PlacementEnergyReport(
        policy_name=type(policy).__name__,
        total_hosts=total_hosts,
        active_hosts=active,
        energy_joules=float(energy),
        vm_host=tuple(vm_host),
    )


def compare_placement_policies(
    scenario: ScenarioSpec,
    result: SimulationResult,
    policies: dict[str, VmAllocationPolicy],
    power_model: PowerModel | None = None,
) -> dict[str, PlacementEnergyReport]:
    """Energy report per named policy for the same finished batch."""
    return {
        name: placement_energy(scenario, result, policy, power_model)
        for name, policy in policies.items()
    }


__all__ = [
    "PlacementEnergyReport",
    "place_vms",
    "placement_energy",
    "compare_placement_policies",
]
