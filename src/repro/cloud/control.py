"""Closed-loop MAPE-K control over the online simulation.

qoscloud's scenario executor (and the autonomic-computing literature it
follows) closes a monitor → analyze → plan → execute loop over a running
system; this module does the same over the online DES:

* :class:`ControlledOnlineBroker` extends the online broker with the
  *mechanisms* a controller needs: an alive/active VM mask maintained from
  ``FAULT_NOTICE`` events, policy-driven retry of bounced (failed or
  cancelled) cloudlets over the eligible fleet, rebalance cancels that
  move queued work off a congested VM, and a standby pool the autoscaler
  can recruit or drain.
* :class:`ControlLoop` is the *policy*: a kernel entity ticking at a fixed
  cadence.  Monitor samples broker state (and mirrors it into telemetry
  gauges), Analyze detects imbalance / dead capacity / backlog pressure,
  Plan selects bounded actions under per-action cooldowns, Execute applies
  them through the broker.  Knowledge is the bounded history + last-action
  ledger the cooldowns read.

Actuation is bounded by design — at most ``max_moves_per_cycle`` rebalance
cancels per tick and one scaling step per tick, each behind a cooldown —
so a mis-tuned loop degrades into inaction rather than thrash.

Determinism: every decision is a pure function of simulation state; the
loop never reads a wall clock or an unseeded RNG, so a controlled run is
exactly reproducible from ``(scenario, policy, timeline, config, seed)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.datacenter import FaultNotice
from repro.cloud.online import OnlineBroker
from repro.core.entity import Entity
from repro.core.eventqueue import Event
from repro.core.tags import EventTag
from repro.obs.telemetry import TELEMETRY as _TEL
from repro.workloads.timeline import Trigger


@dataclass(frozen=True)
class ControlConfig:
    """Tuning of one MAPE-K loop instance.

    All thresholds read the broker's *backlog* estimate (outstanding
    execution seconds per VM), the same state the online policies key on.
    """

    #: seconds between loop ticks (Monitor cadence).
    cadence: float = 1.0
    #: minimum seconds between two executions of the same action.
    cooldown: float = 5.0
    #: rebalance cancels issued per tick, at most.
    max_moves_per_cycle: int = 2
    #: max/mean eligible-VM backlog ratio that triggers a rebalance.
    imbalance_threshold: float = 3.0
    #: mean eligible-VM backlog (seconds) that triggers a scale-up;
    #: ``None`` disables pressure-driven scale-up.
    scale_up_backlog: float | None = None
    #: mean eligible-VM backlog below which one active VM is drained;
    #: ``None`` disables scale-down.
    scale_down_backlog: float | None = None
    #: VMs (highest indices) initially parked as recruitable reserve.
    standby_vms: int = 0
    #: flow-time SLO (seconds) recorded with storm metrics; ``None`` = no SLO.
    sla_seconds: float | None = None
    #: Monitor samples retained in the knowledge base.
    history: int = 64

    def __post_init__(self) -> None:
        if not math.isfinite(self.cadence) or self.cadence <= 0:
            raise ValueError(f"cadence must be positive and finite, got {self.cadence}")
        if not math.isfinite(self.cooldown) or self.cooldown < 0:
            raise ValueError(f"cooldown must be non-negative, got {self.cooldown}")
        if self.max_moves_per_cycle < 1:
            raise ValueError(
                f"max_moves_per_cycle must be >= 1, got {self.max_moves_per_cycle}"
            )
        if not math.isfinite(self.imbalance_threshold) or self.imbalance_threshold <= 1:
            raise ValueError(
                f"imbalance_threshold must be > 1, got {self.imbalance_threshold}"
            )
        for name in ("scale_up_backlog", "scale_down_backlog", "sla_seconds"):
            value = getattr(self, name)
            if value is not None and (not math.isfinite(value) or value <= 0):
                raise ValueError(f"{name} must be positive and finite, got {value}")
        if self.standby_vms < 0:
            raise ValueError(f"standby_vms must be non-negative, got {self.standby_vms}")
        if self.history < 1:
            raise ValueError(f"history must be >= 1, got {self.history}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form for manifests and cache keys."""
        return {name: getattr(self, name) for name in vars(self)}


class ControlledOnlineBroker(OnlineBroker):
    """An online broker a controller can actuate.

    Extends :class:`~repro.cloud.online.OnlineBroker` with:

    * an ``alive`` mask maintained from datacenter ``FAULT_NOTICE`` events
      and an ``active`` mask owned by the autoscaler (``standby_vms``
      highest-indexed VMs start parked);
    * self-healing: a ``FAILED`` return (crash bounce or rebalance cancel)
      is re-placed through the policy over the eligible fleet instead of
      raising — the policy sees backlog with ineligible VMs masked to
      ``+inf``, and a pick that lands on an ineligible VM is remapped to
      the least-loaded eligible one (deterministically);
    * actuators for the control loop: :meth:`cancel_for_rebalance`,
      :meth:`activate_standby`, :meth:`drain_active`.

    Without a :class:`ControlLoop` attached this is the *uncontrolled*
    storm arm: it survives faults (blind policy-driven retry) but nothing
    rebalances or recruits the reserve.
    """

    def __init__(self, *args, standby_vms: int = 0, max_attempts: int = 32, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        num_vms = len(self.vms)
        if not 0 <= standby_vms < num_vms:
            raise ValueError(
                f"standby_vms must leave at least one active VM, got "
                f"{standby_vms} of {num_vms}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.alive = np.ones(num_vms, dtype=bool)
        self.active = np.ones(num_vms, dtype=bool)
        if standby_vms:
            self.active[num_vms - standby_vms :] = False
        self.max_attempts = max_attempts
        self.attempts = np.zeros(len(self.cloudlets), dtype=np.int64)
        self.retries = 0
        self.rebalance_cancels = 0
        self.scale_ups = 0
        self.scale_downs = 0
        #: per-VM set of cloudlet indices submitted and not yet returned.
        self._inflight: list[set[int]] = [set() for _ in range(num_vms)]
        #: cloudlets we cancelled ourselves; their bounce is a planned move,
        #: not a failure, so it never counts toward ``max_attempts``.
        self._planned_bounces: set[int] = set()
        #: how often each cloudlet was moved by a rebalance cancel.
        self.moves = np.zeros(len(self.cloudlets), dtype=np.int64)

    # -- placement ---------------------------------------------------------------

    @property
    def eligible(self) -> np.ndarray:
        """VMs that may receive work: alive and not parked."""
        return self.alive & self.active

    def _choose_vm(self, idx: int) -> int:
        eligible = self.eligible
        if not eligible.any():
            raise RuntimeError(
                f"{self.name}: no eligible VM left to place cloudlet {idx}"
            )
        masked = np.where(eligible, self.backlog, np.inf)
        vm_idx = self.policy.assign(idx, self.now, masked, self.context)
        if not 0 <= vm_idx < len(self.vms) or not eligible[vm_idx]:
            vm_idx = int(np.argmin(masked))
        return int(vm_idx)

    def _place_cloudlet(self, idx: int) -> None:
        super()._place_cloudlet(idx)
        self._inflight[int(self.assignment[idx])].add(idx)

    # -- event handling ----------------------------------------------------------

    def process_event(self, event: Event) -> None:
        if event.tag is EventTag.FAULT_NOTICE:
            notice: FaultNotice = event.data
            state = notice.kind == "vm-recovered"
            for vm_id in notice.vm_ids:
                self.alive[vm_id] = state
            return
        super().process_event(event)

    def _process_return(self, event: Event) -> None:
        cloudlet: Cloudlet = event.data
        idx = cloudlet.cloudlet_id
        vm_idx = int(self.assignment[idx])
        self._inflight[vm_idx].discard(idx)
        if cloudlet.status is CloudletStatus.FAILED:
            arr = self.context.arrays
            self.backlog[vm_idx] -= float(
                arr.cloudlet_length[idx] / (arr.vm_mips[vm_idx] * arr.vm_pes[vm_idx])
            )
            if idx in self._planned_bounces:
                self._planned_bounces.discard(idx)
                self.moves[idx] += 1
            else:
                self.attempts[idx] += 1
                if self.attempts[idx] >= self.max_attempts:
                    raise RuntimeError(
                        f"{self.name}: cloudlet {idx} exhausted "
                        f"{self.max_attempts} placement attempts"
                    )
                self.retries += 1
            cloudlet.reset_for_retry()
            self._place_cloudlet(idx)
            return
        # A cancel can race the finish and lose; clear the stale marker.
        self._planned_bounces.discard(idx)
        super()._process_return(event)

    # -- actuators (Execute phase) -------------------------------------------------

    def cancel_for_rebalance(self, vm_idx: int, max_cancel: int) -> int:
        """Cancel up to ``max_cancel`` in-flight cloudlets on ``vm_idx``.

        The datacenter bounces each still-unfinished one back ``FAILED``
        and the retry path re-places it over the eligible fleet (a planned
        move, not counted as a failure retry).  Least-moved, most recently
        assigned cloudlets go first — on a space-shared VM the newest are
        the deepest in the queue, so cancels mostly move *queued* work and
        forfeit little progress, and preferring the least-moved keeps one
        unlucky cloudlet from ping-ponging between hot VMs.

        Two bounds make rebalancing safe on the tail: the VM always keeps
        at least one cloudlet (cancelling the sole running one forfeits
        its progress without relieving anything), and a cloudlet already
        moved ``max_attempts`` times is pinned where it is.  Together they
        cap total cancels, so a mis-tuned loop cannot livelock the run.
        """
        pending = {
            i
            for i in self._inflight[vm_idx] - self._planned_bounces
            if self.moves[i] < self.max_attempts
        }
        candidates = sorted(pending, key=lambda i: (self.moves[i], -i))
        keep_one = len(self._inflight[vm_idx]) - 1
        candidates = candidates[: max(0, min(max_cancel, keep_one))]
        for c_idx in candidates:
            self.rebalance_cancels += 1
            self._planned_bounces.add(c_idx)
            self.send_now(
                self.vm_placement[vm_idx],
                EventTag.CLOUDLET_CANCEL,
                data=self.cloudlets[c_idx],
            )
        return len(candidates)

    def activate_standby(self, count: int = 1) -> int:
        """Recruit up to ``count`` parked VMs (lowest index first)."""
        recruited = 0
        for vm_idx in np.flatnonzero(~self.active & self.alive)[: max(0, count)]:
            self.active[vm_idx] = True
            self.scale_ups += 1
            recruited += 1
        return recruited

    def drain_active(self, count: int = 1) -> int:
        """Park up to ``count`` idle active VMs (highest index first).

        Only VMs with no in-flight work are drained, and at least one
        eligible VM always remains.
        """
        drained = 0
        for vm_idx in reversed(np.flatnonzero(self.eligible)):
            if drained >= count or self.eligible.sum() <= 1:
                break
            if self._inflight[vm_idx] or self.backlog[vm_idx] > 0:
                continue
            self.active[vm_idx] = False
            self.scale_downs += 1
            drained += 1
        return drained


class ControlLoop(Entity):
    """The MAPE-K controller: a kernel entity ticking every ``cadence``.

    Parameters
    ----------
    name:
        Entity name.
    broker:
        The :class:`ControlledOnlineBroker` under control.
    config:
        Loop tuning (cadence, thresholds, actuation bounds).
    triggers:
        Conditional events from a compiled timeline, evaluated each tick
        against the monitored metrics.
    """

    def __init__(
        self,
        name: str,
        broker: ControlledOnlineBroker,
        config: ControlConfig | None = None,
        triggers: Sequence[Trigger] = (),
    ) -> None:
        super().__init__(name)
        self.broker = broker
        self.config = config or ControlConfig()
        self.triggers = tuple(triggers)
        #: Knowledge: bounded metric history + last-execution time per action.
        self.history: list[tuple[float, dict[str, float]]] = []
        self.last_action: dict[str, float] = {}
        self.cycles = 0
        self.action_counts: dict[str, int] = {}
        self._fired: set[int] = set()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self.schedule_self(self.config.cadence, EventTag.TIMER)

    def process_event(self, event: Event) -> None:
        if event.tag is not EventTag.TIMER:
            raise ValueError(f"{self.name}: unexpected event tag {event.tag!r}")
        if self.broker.all_finished:
            return  # work is done; let the simulation drain
        self.cycles += 1
        metrics = self.monitor()
        planned = self.plan(self.analyze(metrics))
        self.execute(planned, metrics)
        self.schedule_self(self.config.cadence, EventTag.TIMER)

    # -- Monitor -----------------------------------------------------------------

    def monitor(self) -> dict[str, float]:
        """Sample broker state into the metric vector triggers/analysis read."""
        broker = self.broker
        eligible = broker.eligible
        backlog = broker.backlog[eligible]
        mean_backlog = float(backlog.mean()) if backlog.size else 0.0
        max_backlog = float(backlog.max()) if backlog.size else 0.0
        imbalance = max_backlog / mean_backlog if mean_backlog > 0 else 1.0
        metrics = {
            "mean_backlog": mean_backlog,
            "max_backlog": max_backlog,
            "imbalance": imbalance,
            "dead_vms": float((~broker.alive).sum()),
            "pending": float(len(broker.cloudlets) - len(broker.finished)),
            "active_vms": float(eligible.sum()),
        }
        if _TEL.enabled:
            _TEL.count("control.cycles")
            for key, value in metrics.items():
                _TEL.gauge(f"control.{key}", value)
        self.history.append((self.now, metrics))
        if len(self.history) > self.config.history:
            del self.history[0]
        return metrics

    # -- Analyze -----------------------------------------------------------------

    def analyze(self, metrics: dict[str, float]) -> list[str]:
        """Map symptoms (and fired timeline triggers) to desired actions."""
        config = self.config
        desired: list[str] = []
        for i, trigger in enumerate(self.triggers):
            if trigger.once and i in self._fired:
                continue
            if trigger.holds(metrics[trigger.metric]):
                self._fired.add(i)
                desired.append(trigger.action)
        if metrics["dead_vms"] > 0:
            desired.append("scale_up")  # replace failed capacity from the reserve
        if (
            config.scale_up_backlog is not None
            and metrics["mean_backlog"] > config.scale_up_backlog
        ):
            desired.append("scale_up")
        if metrics["imbalance"] > config.imbalance_threshold:
            desired.append("rebalance")
        if (
            config.scale_down_backlog is not None
            and metrics["mean_backlog"] < config.scale_down_backlog
            and metrics["dead_vms"] == 0
        ):
            desired.append("scale_down")
        return desired

    # -- Plan --------------------------------------------------------------------

    def plan(self, desired: list[str]) -> list[str]:
        """Dedupe desired actions and apply per-action cooldowns."""
        planned: list[str] = []
        for action in dict.fromkeys(desired):
            last = self.last_action.get(action)
            if last is not None and self.now - last < self.config.cooldown:
                continue
            planned.append(action)
        return planned

    # -- Execute -----------------------------------------------------------------

    def execute(self, planned: list[str], metrics: dict[str, float]) -> None:
        broker = self.broker
        for action in planned:
            if action == "rebalance":
                eligible = broker.eligible
                masked = np.where(eligible, broker.backlog, -np.inf)
                target = int(np.argmax(masked))
                done = broker.cancel_for_rebalance(
                    target, self.config.max_moves_per_cycle
                )
            elif action == "scale_up":
                done = broker.activate_standby(1)
            elif action == "scale_down":
                done = broker.drain_active(1)
            else:  # pragma: no cover - analyze() only emits the three above
                raise ValueError(f"{self.name}: unknown action {action!r}")
            if done:
                self.last_action[action] = self.now
                self.action_counts[action] = self.action_counts.get(action, 0) + done
                if _TEL.enabled:
                    _TEL.count(f"control.action.{action}", done)

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Loop activity for a run's ``info`` dict."""
        return {
            "cycles": self.cycles,
            "actions": dict(sorted(self.action_counts.items())),
            "retries": self.broker.retries,
            "rebalance_cancels": self.broker.rebalance_cancels,
            "scale_ups": self.broker.scale_ups,
            "scale_downs": self.broker.scale_downs,
        }


__all__ = ["ControlConfig", "ControlledOnlineBroker", "ControlLoop"]
