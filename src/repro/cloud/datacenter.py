"""The datacenter entity.

Handles the CloudSim datacenter protocol:

* ``VM_CREATE`` — place the VM via the allocation policy, reply with
  ``VM_CREATE_ACK``;
* ``CLOUDLET_SUBMIT`` — hand the cloudlet to the target VM's cloudlet
  scheduler and (re)arm the progress-update timer;
* ``VM_DATACENTER_EVENT`` — integrate the affected VM schedulers up to
  *now*, return finished cloudlets to their broker (``CLOUDLET_RETURN``)
  and arm the next wake-up at the earliest predicted completion.

Fault protocol (driven by :mod:`repro.cloud.faults`):

* ``VM_FAILURE`` / ``HOST_FAILURE`` — crash one VM / every VM co-located
  on a host.  Work whose exact completion precedes the crash is credited;
  resident work loses its progress (accounted in :attr:`Datacenter.lost_mi`)
  and bounces to the owning broker as ``FAILED``.  The owner receives a
  ``FAULT_NOTICE`` *before* the bounced cloudlets of the same fault.
* ``VM_RECOVER`` — a fresh VM with the failed VM's id is re-placed on a
  healthy host; the owner is notified on success.
* ``VM_SLOWDOWN`` / ``VM_SLOWDOWN_END`` — straggler window: the VM's
  effective MIPS is scaled; in-flight work is re-timed.
* ``CLOUDLET_CANCEL`` — speculative-execution abort: an unfinished
  resident cloudlet bounces back ``FAILED``; late cancels (the cloudlet
  already finished) are no-ops.

Scalability: the datacenter keeps a lazy heap of ``(next completion time,
vm_id)`` entries so each submission and each completion costs O(log #VMs)
rather than a scan of the fleet; stale heap entries (a VM whose horizon
moved because of later submissions) are skipped on pop.  Exactly one
kernel wake-up event is outstanding at any time.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Literal, Sequence

from repro.cloud.characteristics import DatacenterCharacteristics
from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.host import Host
from repro.cloud.vm import Vm
from repro.cloud.vm_allocation import VmAllocationLeastUsed, VmAllocationPolicy
from repro.core.entity import Entity
from repro.core.eventqueue import Event
from repro.core.tags import EventTag

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class FaultNotice:
    """Payload of a ``FAULT_NOTICE`` event: the fleet changed under a broker.

    ``vm-failed`` notices are delivered before the bounced cloudlets of the
    same fault (same instant, earlier serial), so resilient brokers always
    learn about a death before they see its casualties.
    """

    kind: Literal["vm-failed", "vm-recovered"]
    vm_ids: tuple[int, ...]


class Datacenter(Entity):
    """A datacenter: hosts + allocation policy + pricing.

    Parameters
    ----------
    name:
        Entity name (unique per simulation).
    hosts:
        Physical machines owned by this datacenter.
    characteristics:
        Pricing and descriptive metadata.
    vm_allocation_policy:
        VM→host placement policy (default: CloudSim-simple / least-used).
    """

    def __init__(
        self,
        name: str,
        hosts: Sequence[Host],
        characteristics: DatacenterCharacteristics | None = None,
        vm_allocation_policy: VmAllocationPolicy | None = None,
    ) -> None:
        super().__init__(name)
        if not hosts:
            raise ValueError("datacenter requires at least one host")
        self.hosts = list(hosts)
        self.characteristics = characteristics or DatacenterCharacteristics()
        self.vm_allocation_policy = vm_allocation_policy or VmAllocationLeastUsed()
        self._vms: dict[int, Vm] = {}
        #: broker entity id per vm_id — completions are returned here.
        self._vm_owner: dict[int, int] = {}
        #: (next completion time, vm_id); lazily cleaned.
        self._completion_heap: list[tuple[float, int]] = []
        self._pending_update: Event | None = None
        #: running total of the Fig. 6d processing-cost metric.
        self.accumulated_cost = 0.0
        #: cloudlets finished in this datacenter.
        self.finished_count = 0
        #: MB/s available to live-migration copy phases.
        self.migration_bandwidth = 1000.0
        self._migrating: set[int] = set()
        self.migrations_completed = 0
        self.migrations_rejected = 0
        #: hosts taken down by ``HOST_FAILURE``; excluded from recovery placement.
        self._failed_hosts: set[int] = set()
        #: MI of partial progress destroyed by failures and cancels.
        self.lost_mi = 0.0
        self.vm_failures = 0
        self.host_failures = 0
        self.recoveries = 0
        self.recoveries_rejected = 0
        #: fault deliveries targeting VMs that were already gone (e.g. a
        #: planned VM failure whose target died earlier in a host crash).
        self.faults_ignored = 0
        self.cancellations = 0

    # -- event dispatch --------------------------------------------------------

    def process_event(self, event: Event) -> None:
        if event.tag is EventTag.VM_CREATE:
            self._process_vm_create(event)
        elif event.tag is EventTag.VM_DESTROY:
            self._process_vm_destroy(event)
        elif event.tag is EventTag.VM_FAILURE:
            self._process_vm_failure(event)
        elif event.tag is EventTag.HOST_FAILURE:
            self._process_host_failure(event)
        elif event.tag is EventTag.VM_RECOVER:
            self._process_vm_recover(event)
        elif event.tag is EventTag.VM_SLOWDOWN:
            vm_id, factor = event.data
            self._process_vm_slowdown(vm_id, factor)
        elif event.tag is EventTag.VM_SLOWDOWN_END:
            self._process_vm_slowdown(event.data, 1.0)
        elif event.tag is EventTag.VM_MIGRATE:
            self._process_vm_migrate(event)
        elif event.tag is EventTag.VM_MIGRATION_COMPLETE:
            self._process_migration_complete(event)
        elif event.tag is EventTag.CLOUDLET_SUBMIT:
            self._process_cloudlet_submit(event)
        elif event.tag is EventTag.CLOUDLET_CANCEL:
            self._process_cloudlet_cancel(event)
        elif event.tag is EventTag.VM_DATACENTER_EVENT:
            self._pending_update = None
            self._process_completions()
        elif event.tag in (EventTag.NONE, EventTag.END_OF_SIMULATION):
            pass
        else:
            raise ValueError(f"{self.name}: unexpected event tag {event.tag!r}")

    # -- VM lifecycle ------------------------------------------------------------

    def _process_vm_create(self, event: Event) -> None:
        vm: Vm = event.data
        success = self.vm_allocation_policy.allocate(self.hosts, vm)
        if success:
            vm.datacenter_id = self.id
            self._vms[vm.vm_id] = vm
            self._vm_owner[vm.vm_id] = event.src
        self.send_now(event.src, EventTag.VM_CREATE_ACK, data=(vm, success))

    def _process_vm_destroy(self, event: Event) -> None:
        vm: Vm = event.data
        stored = self._vms.pop(vm.vm_id, None)
        if stored is None:
            raise ValueError(f"{self.name}: vm {vm.vm_id} is not hosted here")
        self._vm_owner.pop(vm.vm_id, None)
        if stored.host is not None:
            stored.host.destroy_vm(stored)

    # -- live migration ---------------------------------------------------------

    def _process_vm_migrate(self, event: Event) -> None:
        """Start a live migration: copy phase runs while the VM executes.

        The copy takes ``vm.ram / migration_bandwidth`` simulated seconds;
        resource accounting moves to the target host on completion (the
        post-copy model: execution is never paused, which also means
        cloudlet timings are unaffected).
        """
        vm_id, host_id = event.data
        vm = self._vms.get(vm_id)
        if vm is None:
            raise ValueError(f"{self.name}: cannot migrate unknown vm {vm_id}")
        if not 0 <= host_id < len(self.hosts):
            raise ValueError(f"{self.name}: unknown target host {host_id}")
        if vm_id in self._migrating:
            self.migrations_rejected += 1
            return
        target = self.hosts[host_id]
        if vm.host is target or not target.is_suitable_for(vm):
            self.migrations_rejected += 1
            return
        self._migrating.add(vm_id)
        delay = vm.ram / self.migration_bandwidth
        self.schedule_self(
            delay, EventTag.VM_MIGRATION_COMPLETE, data=(vm_id, host_id)
        )

    def _process_migration_complete(self, event: Event) -> None:
        vm_id, host_id = event.data
        self._migrating.discard(vm_id)
        vm = self._vms.get(vm_id)
        if vm is None:
            return  # VM failed mid-migration; nothing to move
        target = self.hosts[host_id]
        # The target may have filled during the copy phase; abort then.
        if not target.is_suitable_for(vm):
            self.migrations_rejected += 1
            return
        if vm.host is not None:
            vm.host.destroy_vm(vm)
        if not target.create_vm(vm):  # pragma: no cover - suitability checked
            raise RuntimeError(f"{self.name}: migration landing failed for vm {vm_id}")
        self.migrations_completed += 1

    def _process_vm_failure(self, event: Event) -> None:
        """Crash a VM: completed work is credited, in-flight work bounces.

        Cloudlets whose exact completion instants precede the failure are
        returned as successes; everything still resident is reset (partial
        progress lost, accounted in :attr:`lost_mi`) and bounced to the
        owning broker with ``FAILED`` status so a resilient broker can
        resubmit it.  Failures of VMs already gone (killed earlier by a
        co-located host crash) are counted and ignored.
        """
        vm_id: int = event.data
        if vm_id not in self._vms:
            self.faults_ignored += 1
            return
        self.vm_failures += 1
        self._fail_vm(vm_id)
        self._arm_next()

    def _process_host_failure(self, event: Event) -> None:
        """Crash the host of an anchor VM, killing every co-located VM."""
        anchor_id: int = event.data
        vm = self._vms.get(anchor_id)
        if vm is None or vm.host is None:
            self.faults_ignored += 1
            return
        host = vm.host
        self._failed_hosts.add(host.host_id)
        self.host_failures += 1
        for victim in list(host.vms):
            self._fail_vm(victim.vm_id)
        self._arm_next()

    def _fail_vm(self, vm_id: int) -> None:
        """Shared VM-death path: credit, notify the owner, bounce, destroy."""
        vm = self._vms.pop(vm_id)
        owner = self._vm_owner.pop(vm_id)
        scheduler = vm.cloudlet_scheduler
        finished = scheduler.advance_to(self.now)
        bounced = scheduler.drain_resident(self.now)
        # The death notice precedes the casualties (same instant, earlier
        # serial) so the owner never retries onto the VM that just died.
        self.send_now(
            owner, EventTag.FAULT_NOTICE, data=FaultNotice("vm-failed", (vm_id,))
        )
        for cloudlet in finished:
            self._account_finished(cloudlet, vm)
            self.send_now(owner, EventTag.CLOUDLET_RETURN, data=cloudlet)
        for cloudlet in bounced:
            self.lost_mi += cloudlet.length - cloudlet.remaining_length
            cloudlet.reset_for_retry()
            cloudlet.status = CloudletStatus.FAILED
            self.send_now(owner, EventTag.CLOUDLET_RETURN, data=cloudlet)
        if vm.host is not None:
            vm.host.destroy_vm(vm)

    def _process_vm_recover(self, event: Event) -> None:
        """Return a failed VM to service on a healthy host.

        The payload carries a *fresh* VM (same id, empty scheduler) plus the
        owning broker's entity id.  Placement is retried over the hosts that
        have not themselves failed; if none can take the VM the recovery is
        dropped (the broker keeps avoiding the VM).
        """
        vm, owner = event.data
        if vm.vm_id in self._vms:
            self.recoveries_rejected += 1
            return
        healthy = [h for h in self.hosts if h.host_id not in self._failed_hosts]
        if not healthy or not self.vm_allocation_policy.allocate(healthy, vm):
            self.recoveries_rejected += 1
            return
        vm.datacenter_id = self.id
        self._vms[vm.vm_id] = vm
        self._vm_owner[vm.vm_id] = owner
        self.recoveries += 1
        self.send_now(
            owner, EventTag.FAULT_NOTICE, data=FaultNotice("vm-recovered", (vm.vm_id,))
        )

    def _process_vm_slowdown(self, vm_id: int, factor: float) -> None:
        """Scale a VM's effective MIPS (straggler start/end).

        Completions that predate the rate change are credited first, then
        in-flight work is re-timed.  Slowdowns targeting dead VMs are
        harmless no-ops (the VM may have crashed mid-window).
        """
        vm = self._vms.get(vm_id)
        if vm is None:
            self.faults_ignored += 1
            return
        scheduler = vm.cloudlet_scheduler
        owner = self._vm_owner[vm_id]
        for cloudlet in scheduler.advance_to(self.now):
            self._account_finished(cloudlet, vm)
            self.send_now(owner, EventTag.CLOUDLET_RETURN, data=cloudlet)
        scheduler.set_mips_scale(factor, self.now)
        self._push_horizon(vm)
        self._arm_next()

    # -- cloudlet execution ---------------------------------------------------------

    def _process_cloudlet_submit(self, event: Event) -> None:
        cloudlet: Cloudlet = event.data
        vm = self._vms.get(cloudlet.vm_id)
        if vm is None:
            cloudlet.status = CloudletStatus.FAILED
            self.send_now(event.src, EventTag.CLOUDLET_RETURN, data=cloudlet)
            return
        cloudlet.mark_submitted(self.now, vm.vm_id, self.id)
        vm.cloudlet_scheduler.submit(cloudlet, self.now)
        self._push_horizon(vm)
        self._arm_next()

    def _process_cloudlet_cancel(self, event: Event) -> None:
        """Abort a resident cloudlet (speculative re-execution).

        Completions that predate the cancel win: the VM is advanced first,
        so a cancel racing the cloudlet's own finish is a no-op.  A
        successful cancel bounces the cloudlet back ``FAILED`` with its
        partial progress accounted as lost.
        """
        cloudlet: Cloudlet = event.data
        vm = self._vms.get(cloudlet.vm_id)
        if vm is None:
            return  # the VM died; the failure path already bounced it
        owner = self._vm_owner[cloudlet.vm_id]
        for finished in vm.cloudlet_scheduler.advance_to(self.now):
            self._account_finished(finished, vm)
            self.send_now(owner, EventTag.CLOUDLET_RETURN, data=finished)
        if vm.cloudlet_scheduler.remove(cloudlet, self.now):
            self.cancellations += 1
            self.lost_mi += cloudlet.length - cloudlet.remaining_length
            cloudlet.reset_for_retry()
            cloudlet.status = CloudletStatus.FAILED
            self.send_now(event.src, EventTag.CLOUDLET_RETURN, data=cloudlet)
        self._push_horizon(vm)
        self._arm_next()

    def _process_completions(self) -> None:
        """Advance VMs whose completion horizon has been reached."""
        now = self.now
        heap = self._completion_heap
        while heap and heap[0][0] <= now + _EPS:
            _, vm_id = heapq.heappop(heap)
            vm = self._vms.get(vm_id)
            if vm is None:
                continue  # VM destroyed since the entry was pushed
            scheduler = vm.cloudlet_scheduler
            for cloudlet in scheduler.advance_to(now):
                self._account_finished(cloudlet, vm)
                self.send_now(self._vm_owner[vm_id], EventTag.CLOUDLET_RETURN, data=cloudlet)
            self._push_horizon(vm)
        self._arm_next()

    def _push_horizon(self, vm: Vm) -> None:
        """Record the VM's current next-completion time on the heap."""
        t = vm.cloudlet_scheduler.next_completion_time()
        if math.isfinite(t):
            heapq.heappush(self._completion_heap, (t, vm.vm_id))

    def _account_finished(self, cloudlet: Cloudlet, vm: Vm) -> None:
        self.accumulated_cost += self.characteristics.cloudlet_cost(cloudlet, vm)
        self.finished_count += 1

    def _arm_next(self) -> None:
        """Keep exactly one wake-up event, at the earliest live horizon."""
        heap = self._completion_heap
        # Drop entries that no longer reflect their VM's true horizon.
        while heap:
            t, vm_id = heap[0]
            vm = self._vms.get(vm_id)
            if vm is None:
                heapq.heappop(heap)
                continue
            truth = vm.cloudlet_scheduler.next_completion_time()
            if not math.isfinite(truth) or truth > t + _EPS:
                heapq.heappop(heap)
                continue
            break
        next_time = heap[0][0] if heap else math.inf
        if self._pending_update is not None:
            if math.isfinite(next_time) and abs(self._pending_update.time - next_time) < _EPS:
                return
            self.sim.cancel(self._pending_update)
            self._pending_update = None
        if math.isfinite(next_time):
            delay = max(0.0, next_time - self.now)
            self._pending_update = self.schedule_self(
                delay, EventTag.VM_DATACENTER_EVENT, priority=1
            )

    # -- introspection ----------------------------------------------------------------

    @property
    def vms(self) -> tuple[Vm, ...]:
        return tuple(self._vms.values())

    def vm(self, vm_id: int) -> Vm:
        return self._vms[vm_id]


__all__ = ["Datacenter", "FaultNotice"]
