"""Analytic fast path for batch space-shared execution.

The paper's workloads submit every cloudlet at t=0 over a zero-latency
topology, and the default execution model is space-shared FIFO.  Under
those conditions the DES outcome is a closed form: on a single-PE VM the
``k``-th assigned cloudlet starts when the ``k-1``-th finishes, so start
and finish times are per-VM prefix sums of execution times.

:class:`FastSimulation` evaluates that closed form with vectorised
grouped cumulative sums — O(n log n) for the sort, no events — which makes
the paper's 1 000 000-cloudlet homogeneous sweeps feasible in Python.
Multi-PE VMs fall back to a small per-VM heap simulation.

The agreement between this path and the DES engine is enforced by
property-based tests (``tests/cloud/test_fast_vs_des.py``).
"""

from __future__ import annotations

import heapq
import resource
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.rng import spawn_rng
from repro.metrics.definitions import makespan as makespan_metric
from repro.metrics.definitions import processing_cost, time_imbalance
from repro.obs.manifest import capture_manifest
from repro.obs.telemetry import TELEMETRY as _TEL
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioArrays, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.simulation import SimulationResult
    from repro.schedulers.streaming import StreamingScheduler
    from repro.workloads.streaming import ScenarioChunks


def grouped_fifo_times(
    assignment: np.ndarray, exec_times: np.ndarray, num_vms: int
) -> tuple[np.ndarray, np.ndarray]:
    """Start/finish times of FIFO single-PE execution, all arrivals at t=0.

    Cloudlets are served per VM in submission (index) order; on each VM the
    finish times are the prefix sums of execution times.

    Returns ``(start_times, finish_times)`` aligned with the input order.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    exec_times = np.asarray(exec_times, dtype=float)
    if assignment.shape != exec_times.shape:
        raise ValueError("assignment and exec_times must be index-aligned")
    order = np.argsort(assignment, kind="stable")
    sorted_vm = assignment[order]
    sorted_exec = exec_times[order]
    csum = np.cumsum(sorted_exec)
    # Subtract each group's offset (cumsum value just before the group).
    group_start = np.flatnonzero(np.diff(sorted_vm, prepend=-1))
    offsets = np.zeros_like(csum)
    offsets[group_start[1:]] = csum[group_start[1:] - 1]
    offsets = np.maximum.accumulate(offsets)
    finish_sorted = csum - offsets
    start_sorted = finish_sorted - sorted_exec
    start = np.empty_like(start_sorted)
    finish = np.empty_like(finish_sorted)
    start[order] = start_sorted
    finish[order] = finish_sorted
    return start, finish


def multi_pe_fifo_times(
    cloudlet_ids: np.ndarray, exec_times: np.ndarray, pes: int
) -> tuple[np.ndarray, np.ndarray]:
    """FIFO start/finish times on one VM with ``pes`` PEs (heap simulation)."""
    if pes < 1:
        raise ValueError(f"pes must be >= 1, got {pes}")
    k = exec_times.shape[0]
    start = np.empty(k)
    finish = np.empty(k)
    busy: list[float] = []
    for i in range(k):
        if len(busy) < pes:
            t0 = 0.0
        else:
            t0 = heapq.heappop(busy)
        start[i] = t0
        finish[i] = t0 + exec_times[i]
        heapq.heappush(busy, finish[i])
    return start, finish


class FastSimulation:
    """Drop-in replacement for :class:`~repro.cloud.simulation.CloudSimulation`
    restricted to the paper's conditions (space-shared, zero latency, batch
    arrival at t=0).

    Parameters
    ----------
    scenario, scheduler, seed:
        As for :class:`~repro.cloud.simulation.CloudSimulation`.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        scheduler: Scheduler,
        seed: int | None = 0,
    ) -> None:
        self.scenario = scenario
        self.scheduler = scheduler
        self.seed = seed

    def run(self) -> "SimulationResult":
        from repro.cloud.simulation import SimulationResult, compute_batch_costs

        scenario = self.scenario
        context = SchedulingContext.from_scenario(scenario, self.seed)
        # Reuse the context's ScenarioArrays instead of materialising a
        # second copy — at the paper's 10^6-cloudlet scale the columns are
        # the dominant allocation.
        arr = context.arrays

        telemetry_before = _TEL.snapshot() if _TEL.enabled else None

        with _TEL.span("sim.schedule"):
            t0 = time.perf_counter()
            decision = self.scheduler.schedule_checked(context)
            scheduling_time = time.perf_counter() - t0

        assignment = decision.assignment
        with _TEL.span("sim.execute"):
            exec_times = arr.cloudlet_length / arr.vm_mips[assignment]

            if (arr.vm_pes == 1).all():
                start, finish = grouped_fifo_times(assignment, exec_times, arr.num_vms)
            else:
                start = np.empty_like(exec_times)
                finish = np.empty_like(exec_times)
                # One stable argsort groups members per VM in submission
                # order — O(n log n) total, instead of rescanning the full
                # assignment for every VM (O(V·n)).
                order = np.argsort(assignment, kind="stable")
                boundaries = np.flatnonzero(np.diff(assignment[order])) + 1
                for members in np.split(order, boundaries):
                    if members.size == 0:
                        continue
                    vm_idx = int(assignment[members[0]])
                    s, f = multi_pe_fifo_times(
                        members, exec_times[members], int(arr.vm_pes[vm_idx])
                    )
                    start[members] = s
                    finish[members] = f

        costs = compute_batch_costs(scenario, assignment)
        per_task = finish - start
        info = {
            "engine": "fast",
            "execution_model": "space-shared",
            "manifest": capture_manifest(
                scenario=scenario,
                scheduler=self.scheduler,
                seed=self.seed,
                engine="fast",
                execution_model="space-shared",
            ).to_dict(),
            **decision.info,
        }
        if telemetry_before is not None:
            info["telemetry"] = _TEL.snapshot().diff(telemetry_before).to_dict()
        return SimulationResult(
            scenario_name=scenario.name,
            scheduler_name=decision.scheduler_name,
            scheduling_time=scheduling_time,
            makespan=makespan_metric(start, finish),
            time_imbalance=time_imbalance(per_task),
            total_cost=float(costs.sum()),
            assignment=assignment,
            submission_times=np.zeros_like(start),
            start_times=start,
            finish_times=finish,
            exec_times=per_task,
            costs=costs,
            events_processed=0,
            info=info,
        )


def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes.

    Uses the stdlib ``resource`` module (``ru_maxrss`` is kilobytes on
    Linux, bytes on macOS) so the streaming path needs no extra
    dependencies to enforce its memory budget.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def _chunk_costs(chunk: ScenarioArrays, assignment: np.ndarray) -> np.ndarray:
    """Per-cloudlet processing cost of one chunk (mirrors
    :func:`repro.cloud.simulation.compute_batch_costs` element-for-element,
    but over chunk arrays instead of a full spec)."""
    dc = chunk.vm_datacenter[assignment]
    return processing_cost(
        lengths=chunk.cloudlet_length,
        vm_mips=chunk.vm_mips[assignment],
        vm_ram=chunk.vm_ram[assignment],
        vm_size=chunk.vm_size[assignment],
        file_sizes=chunk.cloudlet_file_size,
        output_sizes=chunk.cloudlet_output_size,
        cost_per_cpu=chunk.dc_cost_per_cpu[dc],
        cost_per_mem=chunk.dc_cost_per_mem[dc],
        cost_per_storage=chunk.dc_cost_per_storage[dc],
        cost_per_bw=chunk.dc_cost_per_bw[dc],
    )


@dataclass
class StreamingResult:
    """Outcome of one memory-bounded streaming execution.

    Carries the same scalar metric fields as
    :class:`~repro.cloud.simulation.SimulationResult` (so sweep records
    build from either), but per-VM aggregates instead of per-cloudlet
    arrays: the whole point of the streaming path is never holding O(n)
    result records.
    """

    scenario_name: str
    scheduler_name: str
    scheduling_time: float
    makespan: float
    time_imbalance: float
    total_cost: float
    num_cloudlets: int
    chunk_size: int
    num_chunks: int
    #: per-VM completion time (sum of its cloudlets' execution times).
    vm_finish_times: np.ndarray
    #: per-VM summed processing cost.
    vm_costs: np.ndarray
    #: process high-water RSS observed right after the run, in bytes.
    peak_rss_bytes: int = 0
    events_processed: int = 0
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def num_vms(self) -> int:
        return int(self.vm_finish_times.shape[0])

    def summary(self) -> dict[str, float]:
        """The paper's four metrics as a flat dict (for reports/CSV)."""
        return {
            "scheduling_time_s": self.scheduling_time,
            "makespan": self.makespan,
            "time_imbalance": self.time_imbalance,
            "total_cost": self.total_cost,
        }


class StreamingSimulation:
    """Memory-bounded analytic execution over a chunked scenario.

    Folds each cloudlet chunk into running per-VM accumulators instead of
    per-cloudlet record arrays, so a paper-scale point (10^6 cloudlets)
    peaks at O(num_vms + chunk_size) memory.  Restricted to single-PE
    fleets (the paper's setting) — the closed form per VM is then a plain
    running sum.

    Determinism contract: the execution fold accumulates with
    ``np.add.at`` (unbuffered, strictly index-ordered), so every bounded
    metric is bit-for-bit identical for *any* chunk size.  Collect mode
    is byte-equal to :class:`FastSimulation` whenever the per-cloudlet
    execution times are exactly representable (the homogeneous tables,
    dyadic fleets).  Bounded-mode scalars additionally match the
    in-memory values exactly on *fully dyadic* workloads (power-of-two
    MIPS, integer lengths, dyadic cost constants); elsewhere
    ``total_cost`` can differ from the in-memory pairwise sum by
    float reassociation ulps (see docs/performance.md, "When streaming
    is bit-safe").

    Parameters
    ----------
    stream:
        A :class:`~repro.workloads.streaming.ScenarioChunks`.
    scheduler:
        A :class:`~repro.schedulers.streaming.StreamingScheduler`, or any
        in-memory :class:`~repro.schedulers.base.Scheduler` (adapted via
        :func:`~repro.schedulers.streaming.as_streaming`; metaheuristics
        then fall back to materialising the workload).
    seed:
        Scheduler RNG seed; the stream is derived with the same
        ``scheduler/{name}`` label the in-memory façades use, so
        streaming and monolithic runs see identical random streams.
    collect:
        ``False`` (default) returns a :class:`StreamingResult` of bounded
        accumulators.  ``True`` additionally concatenates per-chunk
        start/finish/cost arrays and returns a full
        :class:`~repro.cloud.simulation.SimulationResult` — O(n) memory,
        used by the differential tests.
    """

    def __init__(
        self,
        stream: "ScenarioChunks",
        scheduler: "Scheduler | StreamingScheduler",
        seed: int | None = 0,
        collect: bool = False,
    ) -> None:
        from repro.schedulers.streaming import as_streaming

        self.stream = stream
        self.scheduler = as_streaming(scheduler)
        self.seed = seed
        self.collect = collect

    def run(self) -> "SimulationResult | StreamingResult":
        stream = self.stream
        m = stream.num_vms
        n = stream.num_cloudlets
        if not (stream.vm_pes == 1).all():
            raise ValueError(
                "StreamingSimulation supports single-PE fleets only "
                "(the paper's setting); use FastSimulation for multi-PE VMs"
            )

        telemetry_before = _TEL.snapshot() if _TEL.enabled else None
        rng = spawn_rng(self.seed, f"scheduler/{stream.name}")

        t0 = time.perf_counter()
        with _TEL.span("sim.schedule"):
            assigner = self.scheduler.open(stream, rng)
        scheduling_time = time.perf_counter() - t0

        backlog = np.zeros(m)
        vm_costs = np.zeros(m)
        exec_min, exec_max = np.inf, -np.inf
        num_chunks = 0
        collected: dict[str, list[np.ndarray]] = (
            {k: [] for k in ("assignment", "start", "finish", "exec", "costs")}
            if self.collect
            else {}
        )

        for offset, chunk in stream:
            num_chunks += 1
            t0 = time.perf_counter()
            with _TEL.span("sim.schedule"):
                assignment = assigner.assign(chunk, offset)
            scheduling_time += time.perf_counter() - t0
            self._validate_chunk(assignment, chunk.num_cloudlets, m, offset)

            with _TEL.span("sim.execute"):
                exec_chunk = chunk.cloudlet_length / chunk.vm_mips[assignment]
                if self.collect:
                    # Chunk-local FIFO prefix sums, shifted by each VM's
                    # accumulated backlog from previous chunks.
                    start, finish = grouped_fifo_times(assignment, exec_chunk, m)
                    carried = backlog[assignment]
                    collected["assignment"].append(np.asarray(assignment, dtype=np.int64))
                    collected["start"].append(start + carried)
                    collected["finish"].append(finish + carried)
                    collected["exec"].append(exec_chunk)
                # np.add.at is unbuffered and strictly index-ordered, so the
                # per-VM sums are identical no matter how the batch is
                # chunked — this is what makes every bounded metric
                # chunk-size-invariant bit-for-bit.
                np.add.at(backlog, assignment, exec_chunk)
                cost_chunk = _chunk_costs(chunk, assignment)
                if self.collect:
                    collected["costs"].append(cost_chunk)
                np.add.at(vm_costs, assignment, cost_chunk)
                exec_min = min(exec_min, float(exec_chunk.min()))
                exec_max = max(exec_max, float(exec_chunk.max()))

        peak_rss = peak_rss_bytes()
        if _TEL.enabled:
            _TEL.gauge("stream.chunks", num_chunks)
            _TEL.gauge("stream.peak_rss", peak_rss)

        info: dict[str, Any] = {
            "engine": "stream",
            "execution_model": "space-shared",
            "chunk_size": stream.chunk_size,
            "num_chunks": num_chunks,
            "streaming_native": self.scheduler.streaming_native,
            "peak_rss_bytes": peak_rss,
            "manifest": capture_manifest(
                scenario=stream,
                scheduler=self.scheduler,
                seed=self.seed,
                engine="stream",
                execution_model="space-shared",
                chunk_size=stream.chunk_size,
                num_chunks=num_chunks,
            ).to_dict(),
            **assigner.info(),
        }
        if telemetry_before is not None:
            info["telemetry"] = _TEL.snapshot().diff(telemetry_before).to_dict()

        if self.collect:
            from repro.cloud.simulation import SimulationResult

            assignment_all = np.concatenate(collected["assignment"])
            start_all = np.concatenate(collected["start"])
            finish_all = np.concatenate(collected["finish"])
            costs_all = np.concatenate(collected["costs"])
            per_task = finish_all - start_all
            return SimulationResult(
                scenario_name=stream.name,
                scheduler_name=self.scheduler.name,
                scheduling_time=scheduling_time,
                makespan=makespan_metric(start_all, finish_all),
                time_imbalance=time_imbalance(per_task),
                total_cost=float(costs_all.sum()),
                assignment=assignment_all,
                submission_times=np.zeros_like(start_all),
                start_times=start_all,
                finish_times=finish_all,
                exec_times=per_task,
                costs=costs_all,
                events_processed=0,
                info=info,
            )

        # Bounded aggregates.  Every VM's first cloudlet starts at t=0, so
        # the makespan (max finish - min start) is just the largest backlog;
        # the imbalance mean is total execution time over n.
        mean_exec = float(backlog.sum()) / n
        return StreamingResult(
            scenario_name=stream.name,
            scheduler_name=self.scheduler.name,
            scheduling_time=scheduling_time,
            makespan=float(backlog.max()),
            time_imbalance=float((exec_max - exec_min) / mean_exec),
            total_cost=float(vm_costs.sum()),
            num_cloudlets=n,
            chunk_size=stream.chunk_size,
            num_chunks=num_chunks,
            vm_finish_times=backlog,
            vm_costs=vm_costs,
            peak_rss_bytes=peak_rss,
            events_processed=0,
            info=info,
        )

    @staticmethod
    def _validate_chunk(assignment: np.ndarray, k: int, m: int, offset: int) -> None:
        arr = np.asarray(assignment)
        if arr.shape != (k,):
            raise ValueError(
                f"chunk at offset {offset}: assignment shape {arr.shape} != ({k},)"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise ValueError(
                f"chunk at offset {offset}: assignment must be integral, "
                f"got dtype {arr.dtype}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= m):
            raise ValueError(
                f"chunk at offset {offset}: assignment values must be in [0, {m})"
            )


__all__ = [
    "FastSimulation",
    "StreamingSimulation",
    "StreamingResult",
    "grouped_fifo_times",
    "multi_pe_fifo_times",
    "peak_rss_bytes",
]
