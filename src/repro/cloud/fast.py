"""Analytic fast path for batch space-shared execution.

The paper's workloads submit every cloudlet at t=0 over a zero-latency
topology, and the default execution model is space-shared FIFO.  Under
those conditions the DES outcome is a closed form: on a single-PE VM the
``k``-th assigned cloudlet starts when the ``k-1``-th finishes, so start
and finish times are per-VM prefix sums of execution times.

:class:`FastSimulation` evaluates that closed form with vectorised
grouped cumulative sums — O(n log n) for the sort, no events — which makes
the paper's 1 000 000-cloudlet homogeneous sweeps feasible in Python.
Multi-PE VMs fall back to a small per-VM heap simulation.

The agreement between this path and the DES engine is enforced by
property-based tests (``tests/cloud/test_fast_vs_des.py``).
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.metrics.definitions import makespan as makespan_metric
from repro.metrics.definitions import time_imbalance
from repro.obs.manifest import capture_manifest
from repro.obs.telemetry import TELEMETRY as _TEL
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.simulation import SimulationResult


def grouped_fifo_times(
    assignment: np.ndarray, exec_times: np.ndarray, num_vms: int
) -> tuple[np.ndarray, np.ndarray]:
    """Start/finish times of FIFO single-PE execution, all arrivals at t=0.

    Cloudlets are served per VM in submission (index) order; on each VM the
    finish times are the prefix sums of execution times.

    Returns ``(start_times, finish_times)`` aligned with the input order.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    exec_times = np.asarray(exec_times, dtype=float)
    if assignment.shape != exec_times.shape:
        raise ValueError("assignment and exec_times must be index-aligned")
    order = np.argsort(assignment, kind="stable")
    sorted_vm = assignment[order]
    sorted_exec = exec_times[order]
    csum = np.cumsum(sorted_exec)
    # Subtract each group's offset (cumsum value just before the group).
    group_start = np.flatnonzero(np.diff(sorted_vm, prepend=-1))
    offsets = np.zeros_like(csum)
    offsets[group_start[1:]] = csum[group_start[1:] - 1]
    offsets = np.maximum.accumulate(offsets)
    finish_sorted = csum - offsets
    start_sorted = finish_sorted - sorted_exec
    start = np.empty_like(start_sorted)
    finish = np.empty_like(finish_sorted)
    start[order] = start_sorted
    finish[order] = finish_sorted
    return start, finish


def multi_pe_fifo_times(
    cloudlet_ids: np.ndarray, exec_times: np.ndarray, pes: int
) -> tuple[np.ndarray, np.ndarray]:
    """FIFO start/finish times on one VM with ``pes`` PEs (heap simulation)."""
    if pes < 1:
        raise ValueError(f"pes must be >= 1, got {pes}")
    k = exec_times.shape[0]
    start = np.empty(k)
    finish = np.empty(k)
    busy: list[float] = []
    for i in range(k):
        if len(busy) < pes:
            t0 = 0.0
        else:
            t0 = heapq.heappop(busy)
        start[i] = t0
        finish[i] = t0 + exec_times[i]
        heapq.heappush(busy, finish[i])
    return start, finish


class FastSimulation:
    """Drop-in replacement for :class:`~repro.cloud.simulation.CloudSimulation`
    restricted to the paper's conditions (space-shared, zero latency, batch
    arrival at t=0).

    Parameters
    ----------
    scenario, scheduler, seed:
        As for :class:`~repro.cloud.simulation.CloudSimulation`.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        scheduler: Scheduler,
        seed: int | None = 0,
    ) -> None:
        self.scenario = scenario
        self.scheduler = scheduler
        self.seed = seed

    def run(self) -> "SimulationResult":
        from repro.cloud.simulation import SimulationResult, compute_batch_costs

        scenario = self.scenario
        context = SchedulingContext.from_scenario(scenario, self.seed)
        # Reuse the context's ScenarioArrays instead of materialising a
        # second copy — at the paper's 10^6-cloudlet scale the columns are
        # the dominant allocation.
        arr = context.arrays

        telemetry_before = _TEL.snapshot() if _TEL.enabled else None

        with _TEL.span("sim.schedule"):
            t0 = time.perf_counter()
            decision = self.scheduler.schedule_checked(context)
            scheduling_time = time.perf_counter() - t0

        assignment = decision.assignment
        with _TEL.span("sim.execute"):
            exec_times = arr.cloudlet_length / arr.vm_mips[assignment]

            if (arr.vm_pes == 1).all():
                start, finish = grouped_fifo_times(assignment, exec_times, arr.num_vms)
            else:
                start = np.empty_like(exec_times)
                finish = np.empty_like(exec_times)
                # One stable argsort groups members per VM in submission
                # order — O(n log n) total, instead of rescanning the full
                # assignment for every VM (O(V·n)).
                order = np.argsort(assignment, kind="stable")
                boundaries = np.flatnonzero(np.diff(assignment[order])) + 1
                for members in np.split(order, boundaries):
                    if members.size == 0:
                        continue
                    vm_idx = int(assignment[members[0]])
                    s, f = multi_pe_fifo_times(
                        members, exec_times[members], int(arr.vm_pes[vm_idx])
                    )
                    start[members] = s
                    finish[members] = f

        costs = compute_batch_costs(scenario, assignment)
        per_task = finish - start
        info = {
            "engine": "fast",
            "execution_model": "space-shared",
            "manifest": capture_manifest(
                scenario=scenario,
                scheduler=self.scheduler,
                seed=self.seed,
                engine="fast",
                execution_model="space-shared",
            ).to_dict(),
            **decision.info,
        }
        if telemetry_before is not None:
            info["telemetry"] = _TEL.snapshot().diff(telemetry_before).to_dict()
        return SimulationResult(
            scenario_name=scenario.name,
            scheduler_name=decision.scheduler_name,
            scheduling_time=scheduling_time,
            makespan=makespan_metric(start, finish),
            time_imbalance=time_imbalance(per_task),
            total_cost=float(costs.sum()),
            assignment=assignment,
            submission_times=np.zeros_like(start),
            start_times=start,
            finish_times=finish,
            exec_times=per_task,
            costs=costs,
            events_processed=0,
            info=info,
        )


__all__ = ["FastSimulation", "grouped_fifo_times", "multi_pe_fifo_times"]
