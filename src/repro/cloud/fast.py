"""Analytic fast path for batch space-shared execution.

The paper's workloads submit every cloudlet at t=0 over a zero-latency
topology, and the default execution model is space-shared FIFO.  Under
those conditions the DES outcome is a closed form: on a single-PE VM the
``k``-th assigned cloudlet starts when the ``k-1``-th finishes, so start
and finish times are per-VM prefix sums of execution times.

:class:`FastSimulation` evaluates that closed form with vectorised
grouped cumulative sums — O(n log n) for the sort, no events — which makes
the paper's 1 000 000-cloudlet homogeneous sweeps feasible in Python.
Multi-PE VMs fall back to a small per-VM heap simulation.

The agreement between this path and the DES engine is enforced by
property-based tests (``tests/cloud/test_fast_vs_des.py``).
"""

from __future__ import annotations

import heapq
import multiprocessing
import resource
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.rng import spawn_rng
from repro.metrics.definitions import makespan as makespan_metric
from repro.metrics.definitions import processing_cost, time_imbalance
from repro.obs.manifest import capture_manifest
from repro.obs.telemetry import TELEMETRY as _TEL
from repro.obs.telemetry import TelemetrySnapshot
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioArrays, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.simulation import SimulationResult
    from repro.schedulers.streaming import StreamingScheduler
    from repro.workloads.streaming import ScenarioChunks, ShardPlan


def grouped_fifo_times(
    assignment: np.ndarray, exec_times: np.ndarray, num_vms: int
) -> tuple[np.ndarray, np.ndarray]:
    """Start/finish times of FIFO single-PE execution, all arrivals at t=0.

    Cloudlets are served per VM in submission (index) order; on each VM the
    finish times are the prefix sums of execution times.

    Returns ``(start_times, finish_times)`` aligned with the input order.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    exec_times = np.asarray(exec_times, dtype=float)
    if assignment.shape != exec_times.shape:
        raise ValueError("assignment and exec_times must be index-aligned")
    order = np.argsort(assignment, kind="stable")
    sorted_vm = assignment[order]
    sorted_exec = exec_times[order]
    csum = np.cumsum(sorted_exec)
    # Subtract each group's offset (cumsum value just before the group).
    group_start = np.flatnonzero(np.diff(sorted_vm, prepend=-1))
    offsets = np.zeros_like(csum)
    offsets[group_start[1:]] = csum[group_start[1:] - 1]
    offsets = np.maximum.accumulate(offsets)
    finish_sorted = csum - offsets
    start_sorted = finish_sorted - sorted_exec
    start = np.empty_like(start_sorted)
    finish = np.empty_like(finish_sorted)
    start[order] = start_sorted
    finish[order] = finish_sorted
    return start, finish


def multi_pe_fifo_times(
    cloudlet_ids: np.ndarray, exec_times: np.ndarray, pes: int
) -> tuple[np.ndarray, np.ndarray]:
    """FIFO start/finish times on one VM with ``pes`` PEs (heap simulation)."""
    if pes < 1:
        raise ValueError(f"pes must be >= 1, got {pes}")
    k = exec_times.shape[0]
    start = np.empty(k)
    finish = np.empty(k)
    busy: list[float] = []
    for i in range(k):
        if len(busy) < pes:
            t0 = 0.0
        else:
            t0 = heapq.heappop(busy)
        start[i] = t0
        finish[i] = t0 + exec_times[i]
        heapq.heappush(busy, finish[i])
    return start, finish


class FastSimulation:
    """Drop-in replacement for :class:`~repro.cloud.simulation.CloudSimulation`
    restricted to the paper's conditions (space-shared, zero latency, batch
    arrival at t=0).

    Parameters
    ----------
    scenario, scheduler, seed:
        As for :class:`~repro.cloud.simulation.CloudSimulation`.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        scheduler: Scheduler,
        seed: int | None = 0,
    ) -> None:
        self.scenario = scenario
        self.scheduler = scheduler
        self.seed = seed

    def run(self) -> "SimulationResult":
        from repro.cloud.simulation import SimulationResult, compute_batch_costs

        scenario = self.scenario
        context = SchedulingContext.from_scenario(scenario, self.seed)
        # Reuse the context's ScenarioArrays instead of materialising a
        # second copy — at the paper's 10^6-cloudlet scale the columns are
        # the dominant allocation.
        arr = context.arrays

        telemetry_before = _TEL.snapshot() if _TEL.enabled else None

        with _TEL.span("sim.schedule"):
            t0 = time.perf_counter()
            decision = self.scheduler.schedule_checked(context)
            scheduling_time = time.perf_counter() - t0

        assignment = decision.assignment
        with _TEL.span("sim.execute"):
            exec_times = arr.cloudlet_length / arr.vm_mips[assignment]

            if (arr.vm_pes == 1).all():
                start, finish = grouped_fifo_times(assignment, exec_times, arr.num_vms)
            else:
                start = np.empty_like(exec_times)
                finish = np.empty_like(exec_times)
                # One stable argsort groups members per VM in submission
                # order — O(n log n) total, instead of rescanning the full
                # assignment for every VM (O(V·n)).
                order = np.argsort(assignment, kind="stable")
                boundaries = np.flatnonzero(np.diff(assignment[order])) + 1
                for members in np.split(order, boundaries):
                    if members.size == 0:
                        continue
                    vm_idx = int(assignment[members[0]])
                    s, f = multi_pe_fifo_times(
                        members, exec_times[members], int(arr.vm_pes[vm_idx])
                    )
                    start[members] = s
                    finish[members] = f

        costs = compute_batch_costs(scenario, assignment)
        per_task = finish - start
        info = {
            "engine": "fast",
            "execution_model": "space-shared",
            "manifest": capture_manifest(
                scenario=scenario,
                scheduler=self.scheduler,
                seed=self.seed,
                engine="fast",
                execution_model="space-shared",
            ).to_dict(),
            **decision.info,
        }
        if telemetry_before is not None:
            info["telemetry"] = _TEL.snapshot().diff(telemetry_before).to_dict()
        return SimulationResult(
            scenario_name=scenario.name,
            scheduler_name=decision.scheduler_name,
            scheduling_time=scheduling_time,
            makespan=makespan_metric(start, finish),
            time_imbalance=time_imbalance(per_task),
            total_cost=float(costs.sum()),
            assignment=assignment,
            submission_times=np.zeros_like(start),
            start_times=start,
            finish_times=finish,
            exec_times=per_task,
            costs=costs,
            events_processed=0,
            info=info,
        )


def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes.

    Uses the stdlib ``resource`` module (``ru_maxrss`` is kilobytes on
    Linux, bytes on macOS) so the streaming path needs no extra
    dependencies to enforce its memory budget.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def _chunk_costs(chunk: ScenarioArrays, assignment: np.ndarray) -> np.ndarray:
    """Per-cloudlet processing cost of one chunk (mirrors
    :func:`repro.cloud.simulation.compute_batch_costs` element-for-element,
    but over chunk arrays instead of a full spec)."""
    dc = chunk.vm_datacenter[assignment]
    return processing_cost(
        lengths=chunk.cloudlet_length,
        vm_mips=chunk.vm_mips[assignment],
        vm_ram=chunk.vm_ram[assignment],
        vm_size=chunk.vm_size[assignment],
        file_sizes=chunk.cloudlet_file_size,
        output_sizes=chunk.cloudlet_output_size,
        cost_per_cpu=chunk.dc_cost_per_cpu[dc],
        cost_per_mem=chunk.dc_cost_per_mem[dc],
        cost_per_storage=chunk.dc_cost_per_storage[dc],
        cost_per_bw=chunk.dc_cost_per_bw[dc],
    )


@dataclass
class StreamingResult:
    """Outcome of one memory-bounded streaming execution.

    Carries the same scalar metric fields as
    :class:`~repro.cloud.simulation.SimulationResult` (so sweep records
    build from either), but per-VM aggregates instead of per-cloudlet
    arrays: the whole point of the streaming path is never holding O(n)
    result records.
    """

    scenario_name: str
    scheduler_name: str
    scheduling_time: float
    makespan: float
    time_imbalance: float
    total_cost: float
    num_cloudlets: int
    chunk_size: int
    num_chunks: int
    #: per-VM completion time (sum of its cloudlets' execution times).
    vm_finish_times: np.ndarray
    #: per-VM summed processing cost.
    vm_costs: np.ndarray
    #: process high-water RSS observed right after the run, in bytes.
    peak_rss_bytes: int = 0
    events_processed: int = 0
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def num_vms(self) -> int:
        return int(self.vm_finish_times.shape[0])

    def summary(self) -> dict[str, float]:
        """The paper's four metrics as a flat dict (for reports/CSV)."""
        return {
            "scheduling_time_s": self.scheduling_time,
            "makespan": self.makespan,
            "time_imbalance": self.time_imbalance,
            "total_cost": self.total_cost,
        }


def _repeated_add_fold(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Left fold of ``counts[i]`` float additions of ``values[i]``, per position.

    ``out[i] = fl((...((0 + v) + v)...) + v)`` with ``counts[i]`` addends —
    exactly the value the serial ``np.add.at`` fold leaves on a VM that
    receives the same constant every time (``0 + v == v`` exactly, and
    ``np.add.accumulate`` is a strict left fold).  Grouped by unique value,
    so the cost is O(unique_values · max_count) — trivial for a fleet of a
    few VM types.
    """
    out = np.zeros(values.shape[0])
    counts = np.asarray(counts, dtype=np.int64)
    active = counts > 0
    if not active.any():
        return out
    kmax = int(counts.max())
    for v in np.unique(values[active]):
        sel = active & (values == v)
        acc = np.add.accumulate(np.full(kmax, v))
        out[sel] = acc[counts[sel] - 1]
    return out


def _validate_chunk(assignment: np.ndarray, k: int, m: int, offset: int) -> None:
    arr = np.asarray(assignment)
    if arr.shape != (k,):
        raise ValueError(
            f"chunk at offset {offset}: assignment shape {arr.shape} != ({k},)"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(
            f"chunk at offset {offset}: assignment must be integral, "
            f"got dtype {arr.dtype}"
        )
    if arr.size and (arr.min() < 0 or arr.max() >= m):
        raise ValueError(
            f"chunk at offset {offset}: assignment values must be in [0, {m})"
        )


@dataclass
class ShardOutcome:
    """Per-shard accumulators produced by :func:`execute_shard`.

    Everything a parent needs to merge shards exactly: the per-VM partial
    sums, the min/max execution-time envelope, and the worker-side
    telemetry values (``peak_rss_bytes``, chunk count) that must be
    aggregated max-wise / sum-wise rather than last-wins.
    """

    shard_index: int
    num_chunks: int
    scheduling_time: float
    #: per-VM partial float folds; ``None`` in lean mode (constant
    #: workloads), where the merge rebuilds them from ``counts`` instead
    #: of paying to compute, pickle and ship redundant float arrays.
    backlog: "np.ndarray | None"
    vm_costs: "np.ndarray | None"
    #: per-VM assignment counts (int64) — exactly mergeable, lets the merge
    #: rebuild the serial float fold bit-for-bit on constant workloads.
    counts: np.ndarray
    exec_min: float
    exec_max: float
    peak_rss_bytes: int
    assigner_info: dict[str, Any]
    #: collect mode only: concatenated per-chunk arrays, shard-local times.
    collected: "dict[str, np.ndarray] | None" = None


def execute_shard(
    stream: "ScenarioChunks",
    scheduler: "StreamingScheduler",
    seed: int | None,
    plan: "ShardPlan",
    carry: "dict[str, Any] | None" = None,
    collect: bool = False,
    lean: bool = False,
) -> ShardOutcome:
    """Run one shard's chunks through the execution fold.

    This is the execute layer of the plan → execute → merge split: the
    chunk loop :class:`StreamingSimulation` always ran, parameterised by a
    chunk range and a carried-in assigner state.  The serial path is the
    degenerate call (whole-stream plan, no carry), so ``shards=1`` is the
    historical behaviour by construction.  Collect-mode start/finish
    times are shard-local; the merger shifts them by the per-VM backlog
    prefix of earlier shards.

    ``lean`` (constant workloads, bounded mode, multi-shard only) skips
    the per-chunk float folds entirely and ships ``backlog``/``vm_costs``
    as ``None`` — the merge rebuilds them bit-exactly from the integer
    ``counts``, so the floats would be dead pickle weight.
    """
    m = stream.num_vms
    rng = spawn_rng(seed, f"scheduler/{stream.name}")

    t0 = time.perf_counter()
    with _TEL.span("sim.schedule"):
        if carry is None:
            assigner = scheduler.open(stream, rng)
        else:
            assigner = scheduler.open(stream, rng, carry)
    scheduling_time = time.perf_counter() - t0

    backlog = np.zeros(m)
    vm_costs = np.zeros(m)
    counts = np.zeros(m, dtype=np.int64)
    exec_min, exec_max = np.inf, -np.inf
    num_chunks = 0
    parts: dict[str, list[np.ndarray]] = (
        {k: [] for k in ("assignment", "start", "finish", "costs")}
        if collect
        else {}
    )

    for offset, chunk in stream.iter_range(plan.chunk_start, plan.chunk_stop):
        num_chunks += 1
        t0 = time.perf_counter()
        with _TEL.span("sim.schedule"):
            assignment = assigner.assign(chunk, offset)
        scheduling_time += time.perf_counter() - t0
        _validate_chunk(assignment, chunk.num_cloudlets, m, offset)

        if lean:
            with _TEL.span("sim.execute"):
                counts += np.bincount(assignment, minlength=m)
            continue

        with _TEL.span("sim.execute"):
            exec_chunk = chunk.cloudlet_length / chunk.vm_mips[assignment]
            if collect:
                # Chunk-local FIFO prefix sums, shifted by each VM's
                # accumulated backlog from previous chunks of this shard.
                start, finish = grouped_fifo_times(assignment, exec_chunk, m)
                carried = backlog[assignment]
                parts["assignment"].append(np.asarray(assignment, dtype=np.int64))
                parts["start"].append(start + carried)
                parts["finish"].append(finish + carried)
                parts["costs"].append(_chunk_costs(chunk, assignment))
            # np.add.at is unbuffered and strictly index-ordered, so the
            # per-VM sums are identical no matter how the batch is
            # chunked — this is what makes every bounded metric
            # chunk-size-invariant bit-for-bit.
            np.add.at(backlog, assignment, exec_chunk)
            cost_chunk = parts["costs"][-1] if collect else _chunk_costs(chunk, assignment)
            np.add.at(vm_costs, assignment, cost_chunk)
            counts += np.bincount(assignment, minlength=m)
            exec_min = min(exec_min, float(exec_chunk.min()))
            exec_max = max(exec_max, float(exec_chunk.max()))

    return ShardOutcome(
        shard_index=plan.index,
        num_chunks=num_chunks,
        scheduling_time=scheduling_time,
        backlog=None if lean else backlog,
        vm_costs=None if lean else vm_costs,
        counts=counts,
        exec_min=exec_min,
        exec_max=exec_max,
        peak_rss_bytes=peak_rss_bytes(),
        assigner_info=assigner.info(),
        collected=(
            {name: np.concatenate(chunks) for name, chunks in parts.items()}
            if collect
            else None
        ),
    )


def _execute_shard_task(payload: tuple) -> "tuple[ShardOutcome, dict | None]":
    """Pool-worker wrapper: run one shard, ship its telemetry snapshot.

    Workers never set ``stream.*`` gauges — gauge merging is last-wins,
    so a worker-side gauge would clobber the parent's aggregate view.
    Instead the chunk count and peak RSS travel in the
    :class:`ShardOutcome` and the parent publishes them once.
    """
    stream, scheduler, seed, plan, carry, collect, lean, with_telemetry = payload
    _TEL.reset()
    if with_telemetry:
        _TEL.enable()
    else:
        _TEL.disable()
    outcome = execute_shard(stream, scheduler, seed, plan, carry, collect, lean)
    snap = _TEL.snapshot().to_dict() if with_telemetry else None
    return outcome, snap


_SHARD_POOL: "ProcessPoolExecutor | None" = None
_SHARD_POOL_SIZE = 0


def _shard_pool(workers: int) -> ProcessPoolExecutor:
    """Persistent spawn pool shared by all sharded runs in this process.

    Spawn-based workers cost ~100 ms each to boot; reusing one pool across
    the points of a sweep amortises that to once per process.  The pool
    grows (is recreated) when a run asks for more workers than it has.
    """
    global _SHARD_POOL, _SHARD_POOL_SIZE
    if _SHARD_POOL is None or _SHARD_POOL_SIZE < workers:
        if _SHARD_POOL is not None:
            _SHARD_POOL.shutdown()
        _SHARD_POOL = ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("spawn")
        )
        _SHARD_POOL_SIZE = workers
    return _SHARD_POOL


def shutdown_shard_pool() -> None:
    """Tear down the persistent shard pool (tests and long-lived hosts)."""
    global _SHARD_POOL, _SHARD_POOL_SIZE
    if _SHARD_POOL is not None:
        _SHARD_POOL.shutdown()
        _SHARD_POOL = None
        _SHARD_POOL_SIZE = 0


class StreamingSimulation:
    """Memory-bounded analytic execution over a chunked scenario.

    Folds each cloudlet chunk into running per-VM accumulators instead of
    per-cloudlet record arrays, so a paper-scale point (10^6 cloudlets)
    peaks at O(num_vms + chunk_size) memory.  Restricted to single-PE
    fleets (the paper's setting) — the closed form per VM is then a plain
    running sum.

    The run is structured plan → execute → merge: a shard planner splits
    the chunk range (:func:`~repro.workloads.streaming.plan_shards`), the
    scheduler provides carried-in state per shard boundary
    (:meth:`~repro.schedulers.streaming.StreamingScheduler.plan_carries`),
    each shard folds its chunks independently (:func:`execute_shard` —
    in spawn-pool workers, or inline with ``shard_parallel=False``), and
    the parent merges the per-VM partial sums.  ``shards=None`` or ``1``
    runs the single degenerate shard in-process: the historical serial
    path.

    Determinism contract: the execution fold accumulates with
    ``np.add.at`` (unbuffered, strictly index-ordered), so every bounded
    metric is bit-for-bit identical for *any* chunk size.  Collect mode
    is byte-equal to :class:`FastSimulation` whenever the per-cloudlet
    execution times are exactly representable (the homogeneous tables,
    dyadic fleets).  Bounded-mode scalars additionally match the
    in-memory values exactly on *fully dyadic* workloads (power-of-two
    MIPS, integer lengths, dyadic cost constants); elsewhere
    ``total_cost`` can differ from the in-memory pairwise sum by
    float reassociation ulps (see docs/performance.md, "When streaming
    is bit-safe").  Sharding keeps assignments bit-identical for every
    shard count unconditionally; the merged accumulator metrics are
    bit-identical on the same exactly-representable domains where
    chunking is (shard merging reassociates the same sums).

    Parameters
    ----------
    stream:
        A :class:`~repro.workloads.streaming.ScenarioChunks`.
    scheduler:
        A :class:`~repro.schedulers.streaming.StreamingScheduler`, or any
        in-memory :class:`~repro.schedulers.base.Scheduler` (adapted via
        :func:`~repro.schedulers.streaming.as_streaming`; metaheuristics
        then fall back to materialising the workload).
    seed:
        Scheduler RNG seed; the stream is derived with the same
        ``scheduler/{name}`` label the in-memory façades use, so
        streaming and monolithic runs see identical random streams.
    collect:
        ``False`` (default) returns a :class:`StreamingResult` of bounded
        accumulators.  ``True`` additionally concatenates per-chunk
        start/finish/cost arrays and returns a full
        :class:`~repro.cloud.simulation.SimulationResult` — O(n) memory,
        used by the differential tests.
    shards:
        ``None`` or ``1``: serial.  ``N >= 2``: split into at most ``N``
        chunk-aligned shards executed data-parallel and merged exactly.
    shard_parallel:
        ``True`` (default) executes shards in the persistent spawn pool;
        ``False`` runs the same shard math sequentially in-process —
        identical results, no processes (tests, profiling).
    """

    def __init__(
        self,
        stream: "ScenarioChunks",
        scheduler: "Scheduler | StreamingScheduler",
        seed: int | None = 0,
        collect: bool = False,
        shards: int | None = None,
        shard_parallel: bool = True,
    ) -> None:
        from repro.schedulers.streaming import as_streaming

        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.stream = stream
        self.scheduler = as_streaming(scheduler)
        self.seed = seed
        self.collect = collect
        self.shards = shards
        self.shard_parallel = shard_parallel

    def run(self) -> "SimulationResult | StreamingResult":
        from repro.workloads.streaming import ShardPlan, plan_shards

        stream = self.stream
        n = stream.num_cloudlets
        if not (stream.vm_pes == 1).all():
            raise ValueError(
                "StreamingSimulation supports single-PE fleets only "
                "(the paper's setting); use FastSimulation for multi-PE VMs"
            )

        telemetry_before = _TEL.snapshot() if _TEL.enabled else None

        # -- plan ------------------------------------------------------------
        shards = self.shards if self.shards is not None else 1
        plan_time = 0.0
        if shards <= 1:
            plans: "tuple[ShardPlan, ...]" = (
                ShardPlan(
                    index=0, num_shards=1, chunk_start=0,
                    chunk_stop=stream.num_chunks, start=0, stop=n,
                ),
            )
            carries: "list[dict[str, Any] | None]" = [None]
        else:
            rng = spawn_rng(self.seed, f"scheduler/{stream.name}")
            t0 = time.perf_counter()
            with _TEL.span("sim.schedule"):
                plans = plan_shards(stream, shards)
                carries = self.scheduler.plan_carries(stream, rng, plans)
            plan_time = time.perf_counter() - t0
            if len(carries) != len(plans):
                raise RuntimeError(
                    f"{type(self.scheduler).__name__}.plan_carries returned "
                    f"{len(carries)} carries for {len(plans)} plans"
                )

        # -- execute ---------------------------------------------------------
        from repro.workloads.streaming import ConstantCloudlets

        # Lean shards skip the per-chunk float folds when the merge will
        # rebuild them from counts anyway (constant workloads, bounded
        # mode, multiple shards) — less per-shard work and less pickle.
        lean = (
            len(plans) > 1
            and not self.collect
            and isinstance(stream.cloudlets, ConstantCloudlets)
        )
        outcomes: list[ShardOutcome] = []
        if len(plans) > 1 and self.shard_parallel:
            with_telemetry = _TEL.enabled
            pool = _shard_pool(len(plans))
            futures = [
                pool.submit(
                    _execute_shard_task,
                    (stream, self.scheduler, self.seed, plan, carry,
                     self.collect, lean, with_telemetry),
                )
                for plan, carry in zip(plans, carries)
            ]
            for future in futures:
                outcome, snap = future.result()
                if snap is not None:
                    _TEL.merge_snapshot(TelemetrySnapshot.from_dict(snap))
                outcomes.append(outcome)
        else:
            for plan, carry in zip(plans, carries):
                outcomes.append(
                    execute_shard(
                        stream, self.scheduler, self.seed, plan, carry,
                        self.collect, lean,
                    )
                )

        # -- merge -----------------------------------------------------------
        return self._merge(stream, plans, outcomes, plan_time, telemetry_before)

    def _merge(
        self,
        stream: "ScenarioChunks",
        plans,
        outcomes: list[ShardOutcome],
        plan_time: float,
        telemetry_before,
    ) -> "SimulationResult | StreamingResult":
        m = stream.num_vms
        n = stream.num_cloudlets

        backlog = np.zeros(m)
        vm_costs = np.zeros(m)
        counts = np.zeros(m, dtype=np.int64)
        exec_min, exec_max = np.inf, -np.inf
        num_chunks = 0
        scheduling_time = plan_time
        collected: dict[str, list[np.ndarray]] = (
            {k: [] for k in ("assignment", "start", "finish", "costs")}
            if self.collect
            else {}
        )

        for outcome in outcomes:
            if self.collect:
                parts = outcome.collected
                assignment = parts["assignment"]
                if outcome.shard_index == 0:
                    # No earlier shards: the local times are absolute, and
                    # skipping the += keeps the serial path byte-identical.
                    start, finish = parts["start"], parts["finish"]
                else:
                    shift = backlog[assignment]
                    start = parts["start"] + shift
                    finish = parts["finish"] + shift
                collected["assignment"].append(assignment)
                collected["start"].append(start)
                collected["finish"].append(finish)
                collected["costs"].append(parts["costs"])
            if outcome.backlog is not None:
                backlog += outcome.backlog
                vm_costs += outcome.vm_costs
            counts += outcome.counts
            exec_min = min(exec_min, outcome.exec_min)
            exec_max = max(exec_max, outcome.exec_max)
            num_chunks += outcome.num_chunks
            scheduling_time += outcome.scheduling_time

        if len(outcomes) > 1 and not self.collect:
            from repro.workloads.streaming import ConstantCloudlets

            if isinstance(stream.cloudlets, ConstantCloudlets):
                # Constant workloads: each VM's serial fold is a repeated
                # addition of one per-VM constant, so rebuilding it from the
                # exactly-merged integer counts makes the sharded accumulators
                # bit-identical to serial even off the dyadic domain (the
                # partial-sum merge above reassociates by shard boundary).
                src = stream.cloudlets
                dc = stream.vm_datacenter
                exec_const = np.full(m, src.length, dtype=float) / stream.vm_mips
                cost_const = processing_cost(
                    lengths=np.full(m, src.length, dtype=float),
                    vm_mips=stream.vm_mips,
                    vm_ram=stream.vm_ram,
                    vm_size=stream.vm_size,
                    file_sizes=np.full(m, src.file_size, dtype=float),
                    output_sizes=np.full(m, src.output_size, dtype=float),
                    cost_per_cpu=stream.dc_cost_per_cpu[dc],
                    cost_per_mem=stream.dc_cost_per_mem[dc],
                    cost_per_storage=stream.dc_cost_per_storage[dc],
                    cost_per_bw=stream.dc_cost_per_bw[dc],
                )
                backlog = _repeated_add_fold(exec_const, counts)
                vm_costs = _repeated_add_fold(cost_const, counts)
                # Lean shards also skip the exec-time envelope; every
                # assigned execution time is exactly length / vm_mips[v],
                # so the serial min/max are the envelope of the constants
                # on occupied VMs — the identical IEEE divisions.
                occupied = exec_const[counts > 0]
                if occupied.size:
                    exec_min = float(occupied.min())
                    exec_max = float(occupied.max())

        # Telemetry values that must aggregate max-wise across workers:
        # a parent-side ru_maxrss read alone would silently under-report
        # the budget when the fold ran in pool processes.
        peak_rss = max(
            peak_rss_bytes(), *(outcome.peak_rss_bytes for outcome in outcomes)
        )
        if _TEL.enabled:
            _TEL.gauge("stream.chunks", num_chunks)
            _TEL.gauge("stream.peak_rss", peak_rss)

        info: dict[str, Any] = {
            "engine": "stream",
            "execution_model": "space-shared",
            "chunk_size": stream.chunk_size,
            "num_chunks": num_chunks,
            "shards": len(plans),
            "streaming_native": self.scheduler.streaming_native,
            "peak_rss_bytes": peak_rss,
            "manifest": capture_manifest(
                scenario=stream,
                scheduler=self.scheduler,
                seed=self.seed,
                engine="stream",
                execution_model="space-shared",
                chunk_size=stream.chunk_size,
                num_chunks=num_chunks,
            ).to_dict(),
            # The last shard's assigner ends in the serial run's final
            # state, so its diagnostics are the serial diagnostics.
            **outcomes[-1].assigner_info,
        }
        if telemetry_before is not None:
            info["telemetry"] = _TEL.snapshot().diff(telemetry_before).to_dict()

        if self.collect:
            from repro.cloud.simulation import SimulationResult

            assignment_all = np.concatenate(collected["assignment"])
            start_all = np.concatenate(collected["start"])
            finish_all = np.concatenate(collected["finish"])
            costs_all = np.concatenate(collected["costs"])
            per_task = finish_all - start_all
            return SimulationResult(
                scenario_name=stream.name,
                scheduler_name=self.scheduler.name,
                scheduling_time=scheduling_time,
                makespan=makespan_metric(start_all, finish_all),
                time_imbalance=time_imbalance(per_task),
                total_cost=float(costs_all.sum()),
                assignment=assignment_all,
                submission_times=np.zeros_like(start_all),
                start_times=start_all,
                finish_times=finish_all,
                exec_times=per_task,
                costs=costs_all,
                events_processed=0,
                info=info,
            )

        # Bounded aggregates.  Every VM's first cloudlet starts at t=0, so
        # the makespan (max finish - min start) is just the largest backlog;
        # the imbalance mean is total execution time over n.
        mean_exec = float(backlog.sum()) / n
        return StreamingResult(
            scenario_name=stream.name,
            scheduler_name=self.scheduler.name,
            scheduling_time=scheduling_time,
            makespan=float(backlog.max()),
            time_imbalance=float((exec_max - exec_min) / mean_exec),
            total_cost=float(vm_costs.sum()),
            num_cloudlets=n,
            chunk_size=stream.chunk_size,
            num_chunks=num_chunks,
            vm_finish_times=backlog,
            vm_costs=vm_costs,
            peak_rss_bytes=peak_rss,
            events_processed=0,
            info=info,
        )

__all__ = [
    "FastSimulation",
    "ShardOutcome",
    "StreamingSimulation",
    "StreamingResult",
    "execute_shard",
    "grouped_fifo_times",
    "multi_pe_fifo_times",
    "peak_rss_bytes",
    "shutdown_shard_pool",
]
