"""Fault injection: VM failures and resilient brokering.

Cloud schedulers are motivated by self-management under change; this module
injects the sharpest change — a VM dying mid-batch — and provides the
recovery path:

* :class:`VmFailure` — a (vm index, time) failure plan entry;
* :class:`FaultInjector` — an entity that delivers ``VM_FAILURE`` events to
  the owning datacenter on schedule;
* datacenter-side handling lives in the datacenter's ``VM_FAILURE``
  branch: work completed strictly before the crash is credited, unfinished
  work on the dead VM loses its progress and is bounced back to the broker;
* :class:`ResilientBroker` — resubmits bounced cloudlets round-robin over
  the surviving VMs;
* :func:`run_with_failures` — one-call façade returning the usual
  :class:`~repro.cloud.simulation.SimulationResult` plus retry accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cloud.broker import DatacenterBroker
from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.datacenter import Datacenter
from repro.cloud.simulation import (
    SimulationResult,
    build_hosts_for_datacenter,
    compute_batch_costs,
)
from repro.core.engine import Simulation
from repro.core.entity import Entity
from repro.core.eventqueue import Event
from repro.core.tags import EventTag
from repro.metrics.definitions import makespan, time_imbalance
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioSpec


@dataclass(frozen=True, slots=True)
class VmFailure:
    """One planned VM failure."""

    vm_index: int
    at_time: float

    def __post_init__(self) -> None:
        if self.vm_index < 0:
            raise ValueError(f"vm_index must be non-negative, got {self.vm_index}")
        if self.at_time < 0:
            raise ValueError(f"at_time must be non-negative, got {self.at_time}")


class FaultInjector(Entity):
    """Delivers scheduled VM failures to their datacenters."""

    def __init__(
        self,
        name: str,
        failures: list[VmFailure],
        vm_entity: dict[int, int],
    ) -> None:
        """``vm_entity`` maps vm index → owning datacenter entity id."""
        super().__init__(name)
        for failure in failures:
            if failure.vm_index not in vm_entity:
                raise ValueError(f"failure references unknown vm index {failure.vm_index}")
        self.failures = list(failures)
        self.vm_entity = dict(vm_entity)

    def start(self) -> None:
        for failure in self.failures:
            self.schedule_self(failure.at_time, EventTag.TIMER, data=failure)

    def process_event(self, event: Event) -> None:
        if event.tag is not EventTag.TIMER:
            raise ValueError(f"{self.name}: unexpected event tag {event.tag!r}")
        failure: VmFailure = event.data
        self.send_now(
            self.vm_entity[failure.vm_index],
            EventTag.VM_FAILURE,
            data=failure.vm_index,
            priority=-1,  # fail before same-instant completions are processed
        )


class ResilientBroker(DatacenterBroker):
    """A broker that resubmits cloudlets bounced off failed VMs.

    Recovery policy: round-robin over the VMs still alive (the simplest
    self-healing rule; scheduler-driven recovery can subclass
    :meth:`choose_retry_vm`).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._alive = np.ones(len(self.vms), dtype=bool)
        self._retry_cursor = 0
        self.retries = 0
        #: vm index of each cloudlet's final (possibly post-retry) placement.
        self.final_assignment = np.asarray(self.assignment, dtype=np.int64).copy()

    def mark_failed_vm(self, vm_index: int) -> None:
        self._alive[vm_index] = False

    def process_event(self, event: Event) -> None:
        # Failure notifications ride on NONE events with a tagged payload.
        if (
            event.tag is EventTag.NONE
            and isinstance(event.data, tuple)
            and len(event.data) == 2
            and event.data[0] == "vm-failed"
        ):
            self.mark_failed_vm(int(event.data[1]))
            return
        super().process_event(event)

    def choose_retry_vm(self, cloudlet: Cloudlet) -> int:
        """Pick a surviving VM for a bounced cloudlet."""
        alive = np.flatnonzero(self._alive)
        if alive.size == 0:
            raise RuntimeError("every VM has failed; cloudlets cannot be recovered")
        vm = int(alive[self._retry_cursor % alive.size])
        self._retry_cursor += 1
        return vm

    def _process_return(self, event: Event) -> None:
        cloudlet: Cloudlet = event.data
        if cloudlet.status is CloudletStatus.FAILED:
            vm_index = self.choose_retry_vm(cloudlet)
            self.retries += 1
            c_idx = cloudlet.cloudlet_id
            self.final_assignment[c_idx] = vm_index
            cloudlet.reset_for_retry()
            cloudlet.vm_id = self.vms[vm_index].vm_id
            dc_id = self.vm_placement[vm_index]
            self.send(dc_id, self.topology.latency(self.id, dc_id),
                      EventTag.CLOUDLET_SUBMIT, data=cloudlet)
            return
        super()._process_return(event)


def run_with_failures(
    scenario: ScenarioSpec,
    scheduler: Scheduler,
    failures: list[VmFailure],
    seed: int | None = 0,
) -> SimulationResult:
    """Run a batch under a VM-failure plan with resilient recovery."""
    for failure in failures:
        if failure.vm_index >= scenario.num_vms:
            raise ValueError(
                f"failure vm_index {failure.vm_index} out of range "
                f"(scenario has {scenario.num_vms} VMs)"
            )

    context = SchedulingContext.from_scenario(scenario, seed)
    t0 = time.perf_counter()
    decision = scheduler.schedule_checked(context)
    scheduling_time = time.perf_counter() - t0

    sim = Simulation()
    datacenters: list[Datacenter] = []
    for dc_idx, dc_spec in enumerate(scenario.datacenters):
        dc = Datacenter(
            name=f"dc-{dc_idx}",
            hosts=build_hosts_for_datacenter(scenario, dc_idx),
            characteristics=dc_spec.characteristics,
        )
        sim.register(dc)
        datacenters.append(dc)
    vms = [spec.build(vm_id=i) for i, spec in enumerate(scenario.vms)]
    cloudlets = [spec.build(cloudlet_id=i) for i, spec in enumerate(scenario.cloudlets)]
    vm_placement = {i: datacenters[scenario.vm_datacenter[i]].id for i in range(len(vms))}
    broker = ResilientBroker(
        name="resilient-broker",
        vms=vms,
        cloudlets=cloudlets,
        assignment=decision.assignment,
        vm_placement=vm_placement,
    )
    sim.register(broker)
    injector = FaultInjector(
        name="fault-injector",
        failures=failures,
        vm_entity=vm_placement,
    )
    sim.register(injector)
    # The broker learns about each death at the failure instant (before the
    # datacenter bounces the dead VM's cloudlets, see priorities) so retries
    # avoid dead VMs.
    for failure in failures:
        sim.schedule(
            delay=failure.at_time,
            src=-1,
            dst=broker.id,
            tag=EventTag.NONE,
            data=("vm-failed", failure.vm_index),
            priority=-2,
        )

    sim.run()
    if not broker.all_finished:
        raise RuntimeError(
            f"failure run drained with {len(broker.finished)}/"
            f"{len(cloudlets)} cloudlets finished"
        )

    start = np.array([c.exec_start_time for c in cloudlets])
    finish = np.array([c.finish_time for c in cloudlets])
    submission = np.array([c.submission_time for c in cloudlets])
    costs = compute_batch_costs(scenario, broker.final_assignment)
    return SimulationResult(
        scenario_name=scenario.name,
        scheduler_name=decision.scheduler_name,
        scheduling_time=scheduling_time,
        makespan=makespan(start, finish),
        time_imbalance=time_imbalance(finish - start),
        total_cost=float(costs.sum()),
        assignment=broker.final_assignment,
        submission_times=submission,
        start_times=start,
        finish_times=finish,
        exec_times=finish - start,
        costs=costs,
        events_processed=sim.events_processed,
        info={
            "engine": "des+faults",
            "retries": broker.retries,
            "failures": len(failures),
            **decision.info,
        },
    )


__all__ = ["VmFailure", "FaultInjector", "ResilientBroker", "run_with_failures"]
