"""Fault model: failures, recoveries, stragglers, and resilient brokering.

Cloud schedulers are motivated by self-management under change; this module
injects that change and provides the simplest recovery path.  The fault
*plan* is a list of declarative events:

* :class:`VmFailure` — a VM dies at ``at_time``; with a finite ``downtime``
  its capacity returns (a fresh VM, progress lost) after that long;
* :class:`HostFailure` — the physical host running an anchor VM dies,
  killing every co-located VM at once (correlated failure);
* :class:`VmSlowdown` — a transient straggler: the VM's effective MIPS is
  scaled by ``factor`` for ``duration`` seconds.

:func:`validate_fault_plan` rejects plans with undefined semantics
(duplicate failures without an intervening recovery, two events on the
same VM at an identical instant).  :class:`FaultInjector` schedules the
validated plan into the kernel; datacenter-side handling lives in
:class:`~repro.cloud.datacenter.Datacenter`.

Ordering contract at a fault instant ``t``
------------------------------------------

1. Fault deliveries to datacenters fire first
   (:data:`FAULT_DELIVERY_PRIORITY` ``= -1``), beating the datacenter
   wake-up (priority ``+1``) that would process completions at ``t`` —
   so work finishing exactly at the crash is credited by the failure
   handler itself, not raced by it.
2. The datacenter then emits, in serial order at priority 0: the
   ``FAULT_NOTICE`` to the owning broker, credited completions, and the
   bounced ``FAILED`` cloudlets.  A broker therefore always learns of a
   death *before* it sees the casualties, and never retries onto the VM
   that just died.

Recovery here is the blind baseline: :class:`ResilientBroker` resubmits
bounced cloudlets round-robin over the surviving VMs.  Scheduler-driven
recovery (ACO/HBO/RBS re-invoked over the survivors), retry backoff and
dead-lettering live in :mod:`repro.cloud.resilience`; randomized fault
plans in :mod:`repro.cloud.chaos`.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cloud.broker import DatacenterBroker
from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.datacenter import FaultNotice
from repro.cloud.simulation import (
    SimulationResult,
    build_simulation,
    compute_batch_costs,
    make_cloudlet_scheduler,
)
from repro.cloud.vm import Vm
from repro.core.entity import Entity
from repro.core.eventqueue import Event
from repro.core.tags import EventTag
from repro.obs.telemetry import TELEMETRY as _TEL
from repro.metrics.definitions import makespan, time_imbalance
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioSpec

#: Priority of injector→datacenter fault deliveries: a fault at instant
#: ``t`` is handled before the datacenter wake-up (priority +1) and before
#: any same-instant priority-0 traffic queued after it.  See the module
#: docstring for the full ordering contract.
FAULT_DELIVERY_PRIORITY = -1


@dataclass(frozen=True, slots=True)
class VmFailure:
    """One planned VM failure, optionally followed by a recovery.

    With ``downtime=None`` the VM is gone for good; with a finite downtime
    a fresh VM (same id, empty scheduler — all progress was lost) is
    re-placed ``downtime`` seconds after the crash.
    """

    vm_index: int
    at_time: float
    downtime: float | None = None

    def __post_init__(self) -> None:
        if self.vm_index < 0:
            raise ValueError(f"vm_index must be non-negative, got {self.vm_index}")
        if not math.isfinite(self.at_time) or self.at_time < 0:
            raise ValueError(
                f"at_time must be finite and non-negative, got {self.at_time}"
            )
        if self.downtime is not None and (
            not math.isfinite(self.downtime) or self.downtime <= 0
        ):
            raise ValueError(
                f"downtime must be positive and finite, got {self.downtime}"
            )


@dataclass(frozen=True, slots=True)
class HostFailure:
    """A correlated failure: the host running VM ``vm_index`` crashes.

    Every VM co-located on that host dies at ``at_time`` (which VMs those
    are depends on the allocation policy's runtime placement); the host is
    marked dead and excluded from later recovery placements.
    """

    vm_index: int
    at_time: float

    def __post_init__(self) -> None:
        if self.vm_index < 0:
            raise ValueError(f"vm_index must be non-negative, got {self.vm_index}")
        if not math.isfinite(self.at_time) or self.at_time < 0:
            raise ValueError(
                f"at_time must be finite and non-negative, got {self.at_time}"
            )


@dataclass(frozen=True, slots=True)
class VmSlowdown:
    """A transient straggler window.

    The VM's effective MIPS is multiplied by ``factor`` at ``at_time`` and
    restored ``duration`` seconds later; in-flight work is re-timed at both
    edges, no progress is lost.
    """

    vm_index: int
    at_time: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.vm_index < 0:
            raise ValueError(f"vm_index must be non-negative, got {self.vm_index}")
        if not math.isfinite(self.at_time) or self.at_time < 0:
            raise ValueError(
                f"at_time must be finite and non-negative, got {self.at_time}"
            )
        if not math.isfinite(self.duration) or self.duration <= 0:
            raise ValueError(
                f"duration must be positive and finite, got {self.duration}"
            )
        if not 0 < self.factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")


FaultEvent = VmFailure | HostFailure | VmSlowdown


def validate_fault_plan(
    plan: Sequence[FaultEvent], num_vms: int
) -> list[FaultEvent]:
    """Check a fault plan for well-defined semantics; return it as a list.

    Rejected: events referencing VM indices outside ``[0, num_vms)``; two
    events touching the same VM at an identical instant (delivery order
    would be undefined); a second failure of a VM that never recovers from
    (or has not yet recovered from) an earlier one.  Host-failure blast
    radii depend on runtime placement, so only their anchor VMs are checked
    — victims of a host crash are handled tolerantly at runtime instead.
    """
    instants: dict[int, set[float]] = defaultdict(set)
    failures: dict[int, list[VmFailure | HostFailure]] = defaultdict(list)

    def claim(vm_index: int, at: float, what: str) -> None:
        if at in instants[vm_index]:
            raise ValueError(
                f"fault plan schedules two events for vm {vm_index} at the "
                f"identical instant t={at} ({what}); ordering would be undefined"
            )
        instants[vm_index].add(at)

    for entry in plan:
        if not isinstance(entry, (VmFailure, HostFailure, VmSlowdown)):
            raise TypeError(f"unknown fault plan entry {entry!r}")
        if not 0 <= entry.vm_index < num_vms:
            raise ValueError(
                f"fault vm_index {entry.vm_index} out of range "
                f"(scenario has {num_vms} VMs)"
            )
        if isinstance(entry, VmFailure):
            claim(entry.vm_index, entry.at_time, "failure")
            if entry.downtime is not None:
                claim(entry.vm_index, entry.at_time + entry.downtime, "recovery")
            failures[entry.vm_index].append(entry)
        elif isinstance(entry, HostFailure):
            claim(entry.vm_index, entry.at_time, "host failure")
            failures[entry.vm_index].append(entry)
        else:
            claim(entry.vm_index, entry.at_time, "slowdown")
            claim(entry.vm_index, entry.at_time + entry.duration, "slowdown end")

    for vm_index, entries in failures.items():
        entries.sort(key=lambda e: e.at_time)
        for first, second in zip(entries, entries[1:]):
            recovered_at = (
                first.at_time + first.downtime
                if isinstance(first, VmFailure) and first.downtime is not None
                else None
            )
            if recovered_at is None:
                raise ValueError(
                    f"duplicate failure of vm {vm_index}: it never recovers "
                    f"from the failure at t={first.at_time}"
                )
            if recovered_at >= second.at_time:
                raise ValueError(
                    f"vm {vm_index} fails again at t={second.at_time} before "
                    f"recovering at t={recovered_at}"
                )
    return list(plan)


class FaultInjector(Entity):
    """Schedules a validated fault plan into the kernel.

    Parameters
    ----------
    name:
        Entity name.
    plan:
        Fault events; see :func:`validate_fault_plan`.
    vm_entity:
        ``vm index -> owning datacenter entity id``.
    owner_id:
        Broker entity id recovered VMs are re-registered to.  Required when
        the plan contains recoveries.
    vm_factory:
        ``vm index -> fresh Vm`` used to materialise recovered capacity.
        Required when the plan contains recoveries.
    """

    def __init__(
        self,
        name: str,
        plan: Sequence[FaultEvent],
        vm_entity: dict[int, int],
        *,
        owner_id: int | None = None,
        vm_factory: Callable[[int], Vm] | None = None,
    ) -> None:
        super().__init__(name)
        for entry in plan:
            if entry.vm_index not in vm_entity:
                raise ValueError(
                    f"failure references unknown vm index {entry.vm_index}"
                )
        has_recoveries = any(
            isinstance(e, VmFailure) and e.downtime is not None for e in plan
        )
        if has_recoveries and (owner_id is None or vm_factory is None):
            raise ValueError(
                "fault plans with recoveries require owner_id and vm_factory"
            )
        self.plan = list(plan)
        self.vm_entity = dict(vm_entity)
        self.owner_id = owner_id
        self.vm_factory = vm_factory

    def start(self) -> None:
        if _TEL.enabled and self.plan:
            _TEL.count("faults.injected", len(self.plan))
        for entry in self.plan:
            dc_id = self.vm_entity[entry.vm_index]
            if isinstance(entry, VmFailure):
                self.send(
                    dc_id, entry.at_time, EventTag.VM_FAILURE,
                    data=entry.vm_index, priority=FAULT_DELIVERY_PRIORITY,
                )
                if entry.downtime is not None:
                    assert self.vm_factory is not None  # checked in __init__
                    fresh = self.vm_factory(entry.vm_index)
                    self.send(
                        dc_id, entry.at_time + entry.downtime, EventTag.VM_RECOVER,
                        data=(fresh, self.owner_id),
                        priority=FAULT_DELIVERY_PRIORITY,
                    )
            elif isinstance(entry, HostFailure):
                self.send(
                    dc_id, entry.at_time, EventTag.HOST_FAILURE,
                    data=entry.vm_index, priority=FAULT_DELIVERY_PRIORITY,
                )
            else:
                self.send(
                    dc_id, entry.at_time, EventTag.VM_SLOWDOWN,
                    data=(entry.vm_index, entry.factor),
                    priority=FAULT_DELIVERY_PRIORITY,
                )
                self.send(
                    dc_id, entry.at_time + entry.duration, EventTag.VM_SLOWDOWN_END,
                    data=entry.vm_index, priority=FAULT_DELIVERY_PRIORITY,
                )

    def process_event(self, event: Event) -> None:
        raise ValueError(f"{self.name}: unexpected event tag {event.tag!r}")


class ResilientBroker(DatacenterBroker):
    """A broker that resubmits cloudlets bounced off failed VMs.

    Recovery policy: round-robin over the VMs still alive (the simplest
    self-healing rule; scheduler-driven recovery lives in
    :class:`repro.cloud.resilience.ReschedulingBroker`).  The rotation
    cursor walks *VM indices*, not positions of the shrinking alive array,
    so the sequence stays stable across repeated failures.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._alive = np.ones(len(self.vms), dtype=bool)
        self._retry_cursor = 0
        self.retries = 0
        #: vm index of each cloudlet's final (possibly post-retry) placement.
        self.final_assignment = np.asarray(self.assignment, dtype=np.int64).copy()

    def mark_failed_vm(self, vm_index: int) -> None:
        self._alive[vm_index] = False

    def mark_recovered_vm(self, vm_index: int) -> None:
        self._alive[vm_index] = True

    @property
    def dead_vm_indices(self) -> list[int]:
        """Indices of VMs currently believed dead."""
        return [int(i) for i in np.flatnonzero(~self._alive)]

    def process_event(self, event: Event) -> None:
        if event.tag is EventTag.FAULT_NOTICE:
            notice: FaultNotice = event.data
            if notice.kind == "vm-failed":
                for vm_index in notice.vm_ids:
                    self.mark_failed_vm(vm_index)
            elif notice.kind == "vm-recovered":
                for vm_index in notice.vm_ids:
                    self.mark_recovered_vm(vm_index)
            return
        super().process_event(event)

    def choose_retry_vm(self, cloudlet: Cloudlet) -> int:
        """Pick a surviving VM for a bounced cloudlet (stable round-robin)."""
        num_vms = len(self.vms)
        for _ in range(num_vms):
            vm_index = self._retry_cursor % num_vms
            self._retry_cursor += 1
            if self._alive[vm_index]:
                return vm_index
        raise RuntimeError("every VM has failed; cloudlets cannot be recovered")

    def _process_return(self, event: Event) -> None:
        cloudlet: Cloudlet = event.data
        if cloudlet.status is CloudletStatus.FAILED:
            vm_index = self.choose_retry_vm(cloudlet)
            self.retries += 1
            c_idx = cloudlet.cloudlet_id
            self.final_assignment[c_idx] = vm_index
            cloudlet.reset_for_retry()
            cloudlet.vm_id = self.vms[vm_index].vm_id
            dc_id = self.vm_placement[vm_index]
            self.send(dc_id, self.topology.latency(self.id, dc_id),
                      EventTag.CLOUDLET_SUBMIT, data=cloudlet)
            return
        super()._process_return(event)


def run_with_failures(
    scenario: ScenarioSpec,
    scheduler: Scheduler,
    failures: Sequence[FaultEvent],
    seed: int | None = 0,
    *,
    execution_model: str = "space-shared",
) -> SimulationResult:
    """Run a batch under a fault plan with blind round-robin recovery.

    The plan may mix :class:`VmFailure` (with or without recovery),
    :class:`HostFailure` and :class:`VmSlowdown` entries.  For
    scheduler-driven recovery with retry backoff use
    :func:`repro.cloud.resilience.run_resilient`.
    """
    validate_fault_plan(failures, scenario.num_vms)

    context = SchedulingContext.from_scenario(scenario, seed)
    t0 = time.perf_counter()
    decision = scheduler.schedule_checked(context)
    scheduling_time = time.perf_counter() - t0

    env = build_simulation(scenario, execution_model=execution_model)
    broker = ResilientBroker(
        name="resilient-broker",
        vms=env.vms,
        cloudlets=env.cloudlets,
        assignment=decision.assignment,
        vm_placement=env.vm_placement,
    )
    env.sim.register(broker)
    injector = FaultInjector(
        name="fault-injector",
        plan=failures,
        vm_entity=env.vm_placement,
        owner_id=broker.id,
        vm_factory=lambda i: scenario.vms[i].build(
            vm_id=i, cloudlet_scheduler=make_cloudlet_scheduler(execution_model)
        ),
    )
    env.sim.register(injector)

    env.sim.run()
    cloudlets = env.cloudlets
    if not broker.all_finished:
        raise RuntimeError(
            f"failure run drained with {len(broker.finished)}/"
            f"{len(cloudlets)} cloudlets finished"
        )

    start = np.array([c.exec_start_time for c in cloudlets])
    finish = np.array([c.finish_time for c in cloudlets])
    submission = np.array([c.submission_time for c in cloudlets])
    costs = compute_batch_costs(scenario, broker.final_assignment)
    return SimulationResult(
        scenario_name=scenario.name,
        scheduler_name=decision.scheduler_name,
        scheduling_time=scheduling_time,
        makespan=makespan(start, finish),
        time_imbalance=time_imbalance(finish - start),
        total_cost=float(costs.sum()),
        assignment=broker.final_assignment,
        submission_times=submission,
        start_times=start,
        finish_times=finish,
        exec_times=finish - start,
        costs=costs,
        events_processed=env.sim.events_processed,
        info={
            "engine": "des+faults",
            "retries": broker.retries,
            "failures": len(failures),
            "failed_vms": broker.dead_vm_indices,
            "lost_mi": float(sum(dc.lost_mi for dc in env.datacenters)),
            "recoveries": int(sum(dc.recoveries for dc in env.datacenters)),
            "host_failures": int(sum(dc.host_failures for dc in env.datacenters)),
            **decision.info,
        },
    )


__all__ = [
    "FAULT_DELIVERY_PRIORITY",
    "VmFailure",
    "HostFailure",
    "VmSlowdown",
    "FaultEvent",
    "validate_fault_plan",
    "FaultInjector",
    "ResilientBroker",
    "run_with_failures",
]
