"""Physical hosts.

A host owns PEs, RAM, bandwidth and storage, and accommodates VMs through
its provisioners.  The study never oversubscribes hosts (each paper VM gets
dedicated capacity), but the model enforces capacity limits so allocation
policies are meaningfully exercised.
"""

from __future__ import annotations

from typing import Iterable

from repro.cloud.provisioners import BwProvisioner, PeProvisioner, RamProvisioner
from repro.cloud.vm import Vm


class Host:
    """A physical machine inside a datacenter.

    Parameters
    ----------
    host_id:
        Unique id within its datacenter.
    mips_per_pe:
        Capacity of each processing element.
    pes:
        Number of processing elements.
    ram, bw, storage:
        Memory (MB), bandwidth (Mbit/s) and disk (MB) capacities.
    """

    def __init__(
        self,
        host_id: int,
        mips_per_pe: float,
        pes: int,
        ram: float,
        bw: float,
        storage: float,
    ) -> None:
        if mips_per_pe <= 0 or pes < 1:
            raise ValueError("host requires positive mips_per_pe and pes >= 1")
        self.host_id = host_id
        self.mips_per_pe = float(mips_per_pe)
        self.pes = int(pes)
        self.storage_capacity = float(storage)
        self.ram_provisioner = RamProvisioner(ram)
        self.bw_provisioner = BwProvisioner(bw)
        self.pe_provisioner = PeProvisioner(pes)
        self._storage_used = 0.0
        self._vms: dict[int, Vm] = {}

    # -- capacity views -------------------------------------------------------

    @property
    def total_mips(self) -> float:
        return self.mips_per_pe * self.pes

    @property
    def available_storage(self) -> float:
        return self.storage_capacity - self._storage_used

    @property
    def free_pes(self) -> int:
        return int(self.pe_provisioner.available)

    @property
    def vms(self) -> tuple[Vm, ...]:
        return tuple(self._vms.values())

    @property
    def vm_count(self) -> int:
        return len(self._vms)

    # -- VM placement ----------------------------------------------------------

    def is_suitable_for(self, vm: Vm) -> bool:
        """Whether the VM's full requirements fit on this host right now."""
        return (
            vm.mips <= self.mips_per_pe + 1e-9
            and self.pe_provisioner.can_allocate(vm.pes)
            and self.ram_provisioner.can_allocate(vm.ram)
            and self.bw_provisioner.can_allocate(vm.bw)
            and vm.size <= self.available_storage + 1e-9
        )

    def create_vm(self, vm: Vm) -> bool:
        """Place ``vm`` on this host; returns ``False`` when it does not fit."""
        if vm.vm_id in self._vms:
            raise ValueError(f"vm {vm.vm_id} is already on host {self.host_id}")
        if not self.is_suitable_for(vm):
            return False
        # The three allocations cannot fail after is_suitable_for, but keep
        # the rollback anyway so the invariant survives future edits.
        if not self.pe_provisioner.allocate(vm.vm_id, vm.pes):
            return False
        if not self.ram_provisioner.allocate(vm.vm_id, vm.ram):
            self.pe_provisioner.deallocate(vm.vm_id)
            return False
        if not self.bw_provisioner.allocate(vm.vm_id, vm.bw):
            self.pe_provisioner.deallocate(vm.vm_id)
            self.ram_provisioner.deallocate(vm.vm_id)
            return False
        self._storage_used += vm.size
        self._vms[vm.vm_id] = vm
        vm.host = self
        return True

    def destroy_vm(self, vm: Vm) -> None:
        """Remove ``vm`` and release its resources."""
        if vm.vm_id not in self._vms:
            raise ValueError(f"vm {vm.vm_id} is not on host {self.host_id}")
        self.pe_provisioner.deallocate(vm.vm_id)
        self.ram_provisioner.deallocate(vm.vm_id)
        self.bw_provisioner.deallocate(vm.vm_id)
        self._storage_used -= vm.size
        del self._vms[vm.vm_id]
        vm.host = None

    def iter_vms(self) -> Iterable[Vm]:
        return iter(self._vms.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Host(id={self.host_id}, pes={self.pes}x{self.mips_per_pe}mips, "
            f"vms={len(self._vms)})"
        )


__all__ = ["Host"]
