"""Runtime VM consolidation via live migration.

:class:`ConsolidationController` periodically inspects a datacenter and
issues ``VM_MIGRATE`` requests that drain lightly loaded hosts into fuller
ones — the runtime counterpart of the static
:class:`~repro.cloud.vm_allocation.VmAllocationConsolidating` policy, and
the mechanism behind energy-aware cloud operation (fewer active hosts).

Migration semantics live in the datacenter (post-copy live migration: the
copy phase takes ``vm.ram / migration_bandwidth`` seconds and execution is
never paused, so cloudlet timings are migration-invariant — asserted by
the tests).
"""

from __future__ import annotations

from repro.cloud.datacenter import Datacenter
from repro.core.entity import Entity
from repro.core.eventqueue import Event
from repro.core.tags import EventTag


class ConsolidationController(Entity):
    """Periodically packs a datacenter's VMs onto fewer hosts.

    Parameters
    ----------
    name:
        Entity name.
    datacenter:
        The datacenter to manage (must be registered with the same
        simulation).
    interval:
        Seconds between consolidation passes.
    max_rounds:
        Stop after this many passes (keeps idle simulations finite).
    moves_per_round:
        Maximum migrations requested per pass.
    """

    def __init__(
        self,
        name: str,
        datacenter: Datacenter,
        interval: float = 5.0,
        max_rounds: int = 20,
        moves_per_round: int = 4,
    ) -> None:
        super().__init__(name)
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if max_rounds < 1 or moves_per_round < 1:
            raise ValueError("max_rounds and moves_per_round must be >= 1")
        self.datacenter = datacenter
        self.interval = interval
        self.max_rounds = max_rounds
        self.moves_per_round = moves_per_round
        self.rounds_run = 0
        self.moves_requested = 0

    def start(self) -> None:
        self.schedule_self(self.interval, EventTag.TIMER)

    def process_event(self, event: Event) -> None:
        if event.tag is not EventTag.TIMER:
            raise ValueError(f"{self.name}: unexpected event tag {event.tag!r}")
        self.rounds_run += 1
        moves = self.plan_moves()
        for vm_id, host_id in moves:
            self.moves_requested += 1
            self.send_now(self.datacenter, EventTag.VM_MIGRATE, data=(vm_id, host_id))
        if self.rounds_run < self.max_rounds:
            self.schedule_self(self.interval, EventTag.TIMER)

    def plan_moves(self) -> list[tuple[int, int]]:
        """Greedy drain: move VMs off the emptiest active hosts into the
        fullest hosts that can take them.

        Moves within one round are planned against *projected* occupancy —
        each planned move updates the counts the next decision sees —
        otherwise two equally loaded hosts would simply swap VMs forever.
        A move is only planned into a host at least as full as the source,
        so every move strictly progresses consolidation.
        """
        hosts = self.datacenter.hosts
        projected = {h.host_id: h.vm_count for h in hosts}
        planned_pes_in: dict[int, int] = {h.host_id: 0 for h in hosts}
        planned_vms: set[int] = set()
        moves: list[tuple[int, int]] = []

        for _ in range(self.moves_per_round):
            active = [h for h in hosts if projected[h.host_id] > 0]
            if len(active) < 2:
                break
            source = min(active, key=lambda h: projected[h.host_id])
            candidates = [
                vm for vm in source.iter_vms() if vm.vm_id not in planned_vms
            ]
            if not candidates:
                break
            vm = candidates[0]
            targets = sorted(
                (
                    h
                    for h in hosts
                    if h is not source
                    and projected[h.host_id] >= projected[source.host_id]
                ),
                key=lambda h: -projected[h.host_id],
            )
            target = next(
                (
                    t
                    for t in targets
                    if t.is_suitable_for(vm)
                    and t.free_pes - planned_pes_in[t.host_id] >= vm.pes
                ),
                None,
            )
            if target is None:
                break
            moves.append((vm.vm_id, target.host_id))
            planned_vms.add(vm.vm_id)
            projected[source.host_id] -= 1
            projected[target.host_id] += 1
            planned_pes_in[target.host_id] += vm.pes
        return moves


__all__ = ["ConsolidationController"]
