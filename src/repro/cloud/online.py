"""Online simulation: cloudlets arrive over time, scheduled per wave.

Extends the batch study to the dynamic setting the paper's introduction
motivates ("the demands for resources change dynamically, and cloud
providers are expected to ... react to these changes"):

* an :class:`OnlineBroker` entity receives arrival waves as timer events,
  asks an :class:`~repro.schedulers.online.OnlineScheduler` to place each
  cloudlet using the live backlog estimate, and submits it immediately;
* :class:`OnlineCloudSimulation` wires scenario + arrival process + policy
  together and reduces the run to the familiar
  :class:`~repro.cloud.simulation.SimulationResult` (with arrival-relative
  waiting/flow times).
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.simulation import (
    ExecutionModel,
    SimulationResult,
    build_simulation,
    compute_batch_costs,
)
from repro.cloud.vm import Vm
from repro.core.entity import Entity
from repro.core.eventqueue import Event
from repro.core.rng import spawn_rng
from repro.core.tags import EventTag
from repro.metrics.definitions import makespan, time_imbalance
from repro.schedulers.base import SchedulingContext
from repro.schedulers.online import BatchAdapter, OnlineScheduler
from repro.workloads.arrivals import ArrivalProcess, BatchArrivals
from repro.workloads.spec import ScenarioSpec


class OnlineBroker(Entity):
    """Submits cloudlets as they arrive; places each with an online policy.

    The broker maintains ``backlog``: per-VM estimated outstanding execution
    seconds (submission adds the cloudlet's ``length/mips`` estimate on the
    chosen VM, completion removes it), which is the state the online
    policies key on.
    """

    def __init__(
        self,
        name: str,
        vms: list[Vm],
        cloudlets: list[Cloudlet],
        arrival_times: np.ndarray,
        policy: OnlineScheduler,
        context: SchedulingContext,
        vm_placement: dict[int, int],
    ) -> None:
        super().__init__(name)
        if len(arrival_times) != len(cloudlets):
            raise ValueError("arrival_times must be index-aligned with cloudlets")
        self.vms = vms
        self.cloudlets = cloudlets
        self.arrival_times = np.asarray(arrival_times, dtype=float)
        if self.arrival_times.size and self.arrival_times.min() < 0:
            raise ValueError("arrival times must be non-negative")
        self.policy = policy
        self.context = context
        self.vm_placement = dict(vm_placement)
        self.backlog = np.zeros(len(vms))
        self.finished: list[Cloudlet] = []
        self.assignment = np.full(len(cloudlets), -1, dtype=np.int64)
        #: accumulated wall-clock seconds inside the policy (scheduling time).
        self.decision_seconds = 0.0
        self._acks_outstanding = 0
        #: arrival instant -> cloudlet indices (a "wave").
        self._waves: dict[float, list[int]] = defaultdict(list)
        for idx, t in enumerate(self.arrival_times):
            self._waves[float(t)].append(idx)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self.policy.start(self.context)
        self._acks_outstanding = len(self.vms)
        for idx, vm in enumerate(self.vms):
            self.send(self.vm_placement[idx], 0.0, EventTag.VM_CREATE, data=vm)

    def process_event(self, event: Event) -> None:
        if event.tag is EventTag.VM_CREATE_ACK:
            self._process_ack(event)
        elif event.tag is EventTag.TIMER:
            self._process_wave(event.data)
        elif event.tag is EventTag.CLOUDLET_RETURN:
            self._process_return(event)
        else:
            raise ValueError(f"{self.name}: unexpected event tag {event.tag!r}")

    def _process_ack(self, event: Event) -> None:
        vm, success = event.data
        if not success:
            raise RuntimeError(f"{self.name}: datacenter rejected vm {vm.vm_id}")
        self._acks_outstanding -= 1
        if self._acks_outstanding == 0:
            for instant in sorted(self._waves):
                self.schedule_self(
                    max(0.0, instant - self.now), EventTag.TIMER, data=instant
                )

    def _process_wave(self, instant: float) -> None:
        indices = self._waves[instant]
        t0 = time.perf_counter()
        if isinstance(self.policy, BatchAdapter):
            self.policy.begin_wave(np.asarray(indices, dtype=np.int64), self.context)
        arr = self.context.arrays
        for idx in indices:
            vm_idx = self.policy.assign(idx, self.now, self.backlog, self.context)
            if not 0 <= vm_idx < len(self.vms):
                raise ValueError(
                    f"policy {self.policy.name!r} returned invalid VM index {vm_idx}"
                )
            self.assignment[idx] = vm_idx
            self.backlog[vm_idx] += float(
                arr.cloudlet_length[idx] / (arr.vm_mips[vm_idx] * arr.vm_pes[vm_idx])
            )
            cloudlet = self.cloudlets[idx]
            cloudlet.vm_id = self.vms[vm_idx].vm_id
            self.send_now(
                self.vm_placement[vm_idx], EventTag.CLOUDLET_SUBMIT, data=cloudlet
            )
        self.decision_seconds += time.perf_counter() - t0

    def _process_return(self, event: Event) -> None:
        cloudlet: Cloudlet = event.data
        if cloudlet.status is CloudletStatus.FAILED:
            raise RuntimeError(f"{self.name}: cloudlet {cloudlet.cloudlet_id} failed")
        vm_idx = self.assignment[cloudlet.cloudlet_id]
        arr = self.context.arrays
        self.backlog[vm_idx] -= float(
            arr.cloudlet_length[cloudlet.cloudlet_id]
            / (arr.vm_mips[vm_idx] * arr.vm_pes[vm_idx])
        )
        self.finished.append(cloudlet)

    @property
    def all_finished(self) -> bool:
        return len(self.finished) == len(self.cloudlets)


class OnlineCloudSimulation:
    """Run an online policy on a scenario under an arrival process.

    Parameters
    ----------
    scenario:
        Environment and cloudlet characteristics (arrival order = index
        order).
    policy:
        Online placement policy.
    arrivals:
        Arrival process (default: the paper's batch-at-zero).
    seed:
        Root seed for arrivals and the policy's random stream.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        policy: OnlineScheduler,
        arrivals: ArrivalProcess | None = None,
        seed: int | None = 0,
        execution_model: ExecutionModel = "space-shared",
    ) -> None:
        if execution_model not in ("space-shared", "time-shared"):
            raise ValueError(f"unknown execution model {execution_model!r}")
        self.scenario = scenario
        self.policy = policy
        self.arrivals = arrivals or BatchArrivals()
        self.seed = seed
        self.execution_model = execution_model

    def run(self) -> SimulationResult:
        scenario = self.scenario
        context = SchedulingContext.from_scenario(scenario, self.seed)
        arrival_rng = spawn_rng(self.seed, f"arrivals/{scenario.name}")
        arrival_times = self.arrivals.sample(arrival_rng, scenario.num_cloudlets)

        env = build_simulation(scenario, execution_model=self.execution_model)
        sim, cloudlets = env.sim, env.cloudlets
        broker = OnlineBroker(
            name="online-broker",
            vms=env.vms,
            cloudlets=cloudlets,
            arrival_times=arrival_times,
            policy=self.policy,
            context=context,
            vm_placement=env.vm_placement,
        )
        sim.register(broker)
        sim.run()
        if not broker.all_finished:
            raise RuntimeError(
                f"online run drained with {len(broker.finished)}/"
                f"{len(cloudlets)} cloudlets finished"
            )

        start = np.array([c.exec_start_time for c in cloudlets])
        finish = np.array([c.finish_time for c in cloudlets])
        costs = compute_batch_costs(scenario, broker.assignment)
        return SimulationResult(
            scenario_name=scenario.name,
            scheduler_name=self.policy.name,
            scheduling_time=broker.decision_seconds,
            makespan=makespan(start, finish),
            time_imbalance=time_imbalance(finish - start),
            total_cost=float(costs.sum()),
            assignment=broker.assignment,
            submission_times=arrival_times,
            start_times=start,
            finish_times=finish,
            exec_times=finish - start,
            costs=costs,
            events_processed=sim.events_processed,
            info={
                "engine": "online-des",
                "policy": self.policy.name,
                "execution_model": self.execution_model,
            },
        )


__all__ = ["OnlineBroker", "OnlineCloudSimulation"]
