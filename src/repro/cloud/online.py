"""Online simulation: cloudlets arrive over time, scheduled per wave.

Extends the batch study to the dynamic setting the paper's introduction
motivates ("the demands for resources change dynamically, and cloud
providers are expected to ... react to these changes"):

* an :class:`OnlineBroker` entity receives arrival waves as timer events,
  asks an :class:`~repro.schedulers.online.OnlineScheduler` to place each
  cloudlet using the live backlog estimate, and submits it immediately;
* :class:`OnlineCloudSimulation` wires scenario + arrival process + policy
  together and reduces the run to the familiar
  :class:`~repro.cloud.simulation.SimulationResult` (with arrival-relative
  waiting/flow times).
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import TYPE_CHECKING

import numpy as np

from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.faults import FaultInjector
from repro.cloud.simulation import (
    ExecutionModel,
    SimulationResult,
    build_simulation,
    compute_batch_costs,
    make_cloudlet_scheduler,
)
from repro.cloud.vm import Vm
from repro.core.entity import Entity
from repro.core.eventqueue import Event
from repro.core.rng import spawn_rng
from repro.core.tags import EventTag
from repro.metrics.definitions import makespan, time_imbalance
from repro.schedulers.base import SchedulingContext
from repro.schedulers.online import BatchAdapter, OnlineScheduler
from repro.workloads.arrivals import ArrivalProcess, BatchArrivals
from repro.workloads.spec import ScenarioSpec

if TYPE_CHECKING:  # control.py imports this module; keep the cycle type-only
    from repro.cloud.control import ControlConfig
    from repro.workloads.timeline import Timeline


class OnlineBroker(Entity):
    """Submits cloudlets as they arrive; places each with an online policy.

    The broker maintains ``backlog``: per-VM estimated outstanding execution
    seconds (submission adds the cloudlet's ``length/mips`` estimate on the
    chosen VM, completion removes it), which is the state the online
    policies key on.
    """

    def __init__(
        self,
        name: str,
        vms: list[Vm],
        cloudlets: list[Cloudlet],
        arrival_times: np.ndarray,
        policy: OnlineScheduler,
        context: SchedulingContext,
        vm_placement: dict[int, int],
    ) -> None:
        super().__init__(name)
        if len(arrival_times) != len(cloudlets):
            raise ValueError("arrival_times must be index-aligned with cloudlets")
        self.vms = vms
        self.cloudlets = cloudlets
        self.arrival_times = np.asarray(arrival_times, dtype=float)
        if self.arrival_times.size and self.arrival_times.min() < 0:
            raise ValueError("arrival times must be non-negative")
        self.policy = policy
        self.context = context
        self.vm_placement = dict(vm_placement)
        self.backlog = np.zeros(len(vms))
        self.finished: list[Cloudlet] = []
        self.assignment = np.full(len(cloudlets), -1, dtype=np.int64)
        #: accumulated wall-clock seconds inside the policy (scheduling time).
        self.decision_seconds = 0.0
        self._acks_outstanding = 0
        #: arrival instant -> cloudlet indices (a "wave").
        self._waves: dict[float, list[int]] = defaultdict(list)
        for idx, t in enumerate(self.arrival_times):
            self._waves[float(t)].append(idx)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self.policy.start(self.context)
        self._acks_outstanding = len(self.vms)
        for idx, vm in enumerate(self.vms):
            self.send(self.vm_placement[idx], 0.0, EventTag.VM_CREATE, data=vm)

    def process_event(self, event: Event) -> None:
        if event.tag is EventTag.VM_CREATE_ACK:
            self._process_ack(event)
        elif event.tag is EventTag.TIMER:
            self._process_wave(event.data)
        elif event.tag is EventTag.CLOUDLET_RETURN:
            self._process_return(event)
        else:
            raise ValueError(f"{self.name}: unexpected event tag {event.tag!r}")

    def _process_ack(self, event: Event) -> None:
        vm, success = event.data
        if not success:
            raise RuntimeError(f"{self.name}: datacenter rejected vm {vm.vm_id}")
        self._acks_outstanding -= 1
        if self._acks_outstanding == 0:
            for instant in sorted(self._waves):
                self.schedule_self(
                    max(0.0, instant - self.now), EventTag.TIMER, data=instant
                )

    def _process_wave(self, instant: float) -> None:
        indices = self._waves[instant]
        t0 = time.perf_counter()
        if isinstance(self.policy, BatchAdapter):
            self.policy.begin_wave(np.asarray(indices, dtype=np.int64), self.context)
        for idx in indices:
            self._place_cloudlet(idx)
        self.decision_seconds += time.perf_counter() - t0

    def _choose_vm(self, idx: int) -> int:
        """Ask the policy for a placement; subclasses may mask/remap it."""
        vm_idx = self.policy.assign(idx, self.now, self.backlog, self.context)
        if not 0 <= vm_idx < len(self.vms):
            raise ValueError(
                f"policy {self.policy.name!r} returned invalid VM index {vm_idx}"
            )
        return vm_idx

    def _place_cloudlet(self, idx: int) -> None:
        """Place one cloudlet: choose a VM, book the backlog, submit."""
        vm_idx = self._choose_vm(idx)
        arr = self.context.arrays
        self.assignment[idx] = vm_idx
        self.backlog[vm_idx] += float(
            arr.cloudlet_length[idx] / (arr.vm_mips[vm_idx] * arr.vm_pes[vm_idx])
        )
        cloudlet = self.cloudlets[idx]
        cloudlet.vm_id = self.vms[vm_idx].vm_id
        self.send_now(
            self.vm_placement[vm_idx], EventTag.CLOUDLET_SUBMIT, data=cloudlet
        )

    def _process_return(self, event: Event) -> None:
        cloudlet: Cloudlet = event.data
        if cloudlet.status is CloudletStatus.FAILED:
            raise RuntimeError(f"{self.name}: cloudlet {cloudlet.cloudlet_id} failed")
        vm_idx = self.assignment[cloudlet.cloudlet_id]
        arr = self.context.arrays
        self.backlog[vm_idx] -= float(
            arr.cloudlet_length[cloudlet.cloudlet_id]
            / (arr.vm_mips[vm_idx] * arr.vm_pes[vm_idx])
        )
        self.finished.append(cloudlet)

    @property
    def all_finished(self) -> bool:
        return len(self.finished) == len(self.cloudlets)


class OnlineCloudSimulation:
    """Run an online policy on a scenario under an arrival process.

    Parameters
    ----------
    scenario:
        Environment and cloudlet characteristics (arrival order = index
        order).
    policy:
        Online placement policy.
    arrivals:
        Arrival process (default: the paper's batch-at-zero).  A
        ``timeline`` that drives arrivals (``base_rate`` set) overrides
        this.
    seed:
        Root seed for arrivals, timeline compilation and the policy's
        random stream.
    timeline:
        Optional :class:`~repro.workloads.timeline.Timeline` compiled
        (deterministically, from ``seed``) into arrival dynamics, a fault
        plan and control-loop triggers.
    control:
        Optional :class:`~repro.cloud.control.ControlConfig`; attaches a
        MAPE-K :class:`~repro.cloud.control.ControlLoop` to the run.
    standby_vms:
        Park this many highest-indexed VMs as an inactive reserve without
        attaching a loop — the *uncontrolled* arm of storm comparisons
        (with ``control`` set, ``control.standby_vms`` wins).

    With ``timeline=None`` and ``control=None`` (and ``standby_vms=0``)
    the run takes the original :class:`OnlineBroker` path and reproduces
    pre-existing results byte-for-byte.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        policy: OnlineScheduler,
        arrivals: ArrivalProcess | None = None,
        seed: int | None = 0,
        execution_model: ExecutionModel = "space-shared",
        *,
        timeline: "Timeline | None" = None,
        control: "ControlConfig | None" = None,
        standby_vms: int = 0,
    ) -> None:
        if execution_model not in ("space-shared", "time-shared"):
            raise ValueError(f"unknown execution model {execution_model!r}")
        if standby_vms < 0:
            raise ValueError(f"standby_vms must be non-negative, got {standby_vms}")
        self.scenario = scenario
        self.policy = policy
        self.arrivals = arrivals or BatchArrivals()
        self.seed = seed
        self.execution_model = execution_model
        self.timeline = timeline
        self.control = control
        self.standby_vms = standby_vms

    def run(self) -> SimulationResult:
        scenario = self.scenario
        context = SchedulingContext.from_scenario(scenario, self.seed)

        compiled = None
        arrivals = self.arrivals
        if self.timeline is not None:
            compiled = self.timeline.compile(scenario.num_vms, seed=self.seed)
            if compiled.arrivals is not None:
                arrivals = compiled.arrivals
        arrival_rng = spawn_rng(self.seed, f"arrivals/{scenario.name}")
        arrival_times = arrivals.sample(arrival_rng, scenario.num_cloudlets)

        env = build_simulation(scenario, execution_model=self.execution_model)
        sim, cloudlets = env.sim, env.cloudlets

        fault_plan = tuple(compiled.fault_plan) if compiled is not None else ()
        standby = (
            self.control.standby_vms if self.control is not None else self.standby_vms
        )
        controlled = (
            self.control is not None or standby > 0 or bool(fault_plan)
        )
        if controlled:
            from repro.cloud.control import ControlledOnlineBroker, ControlLoop

            broker: OnlineBroker = ControlledOnlineBroker(
                name="online-broker",
                vms=env.vms,
                cloudlets=cloudlets,
                arrival_times=arrival_times,
                policy=self.policy,
                context=context,
                vm_placement=env.vm_placement,
                standby_vms=standby,
            )
        else:
            broker = OnlineBroker(
                name="online-broker",
                vms=env.vms,
                cloudlets=cloudlets,
                arrival_times=arrival_times,
                policy=self.policy,
                context=context,
                vm_placement=env.vm_placement,
            )
        sim.register(broker)

        if fault_plan:
            sim.register(
                FaultInjector(
                    name="timeline-faults",
                    plan=list(fault_plan),
                    vm_entity=env.vm_placement,
                    owner_id=broker.id,
                    vm_factory=lambda i: scenario.vms[i].build(
                        vm_id=i,
                        cloudlet_scheduler=make_cloudlet_scheduler(
                            self.execution_model
                        ),
                    ),
                )
            )
        loop = None
        if self.control is not None:
            loop = ControlLoop(
                name="control-loop",
                broker=broker,
                config=self.control,
                triggers=compiled.triggers if compiled is not None else (),
            )
            sim.register(loop)

        sim.run()
        if not broker.all_finished:
            raise RuntimeError(
                f"online run drained with {len(broker.finished)}/"
                f"{len(cloudlets)} cloudlets finished"
            )

        start = np.array([c.exec_start_time for c in cloudlets])
        finish = np.array([c.finish_time for c in cloudlets])
        costs = compute_batch_costs(scenario, broker.assignment)
        info: dict = {
            "engine": "online-des",
            "policy": self.policy.name,
            "execution_model": self.execution_model,
        }
        if compiled is not None:
            info["timeline"] = compiled.name
            info["faults"] = len(fault_plan)
            if fault_plan:
                info["first_fault_time"] = compiled.first_fault_time
        if controlled:
            info["retries"] = broker.retries
            info["lost_mi"] = float(sum(dc.lost_mi for dc in env.datacenters))
            info["recoveries"] = int(sum(dc.recoveries for dc in env.datacenters))
            info["standby_vms"] = standby
        if loop is not None:
            info["control"] = loop.summary()
        return SimulationResult(
            scenario_name=scenario.name,
            scheduler_name=self.policy.name,
            scheduling_time=broker.decision_seconds,
            makespan=makespan(start, finish),
            time_imbalance=time_imbalance(finish - start),
            total_cost=float(costs.sum()),
            assignment=broker.assignment,
            submission_times=arrival_times,
            start_times=start,
            finish_times=finish,
            exec_times=finish - start,
            costs=costs,
            events_processed=sim.events_processed,
            info=info,
        )


__all__ = ["OnlineBroker", "OnlineCloudSimulation"]
