"""Host power models and batch energy accounting.

The paper's related work motivates energy-aware scheduling (Wang & Wang
[27]); this module provides the substrate to study it on top of the
reproduction: CloudSim-style host power models (power as a function of CPU
utilization) and an energy metric computed from a finished batch.

Energy accounting uses the batch structure of the study (all cloudlets at
t=0, space-shared execution): a VM is busy for the sum of its cloudlets'
execution times and idle for the rest of the horizon, so host energy is the
utilization-weighted integral of the power model over the makespan.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.workloads.spec import ScenarioSpec


class PowerModel(abc.ABC):
    """Maps CPU utilization ∈ [0, 1] to electrical power in watts."""

    @abc.abstractmethod
    def power(self, utilization: float) -> float:
        """Power draw at the given utilization."""

    def power_array(self, utilization: np.ndarray) -> np.ndarray:
        """Vectorised power; subclasses may override for speed."""
        return np.array([self.power(float(u)) for u in np.asarray(utilization)])

    def _check(self, utilization: float) -> None:
        if not -1e-9 <= utilization <= 1 + 1e-9:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")


class PowerModelLinear(PowerModel):
    """CloudSim's linear model: ``idle + (peak - idle) * u``.

    Parameters
    ----------
    idle_watts:
        Draw at zero utilization (static power).
    peak_watts:
        Draw at full utilization.
    """

    def __init__(self, idle_watts: float = 100.0, peak_watts: float = 250.0) -> None:
        if idle_watts < 0 or peak_watts < idle_watts:
            raise ValueError(
                f"need 0 <= idle_watts <= peak_watts, got {idle_watts}, {peak_watts}"
            )
        self.idle_watts = idle_watts
        self.peak_watts = peak_watts

    def power(self, utilization: float) -> float:
        self._check(utilization)
        u = min(max(utilization, 0.0), 1.0)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * u

    def power_array(self, utilization: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(utilization, dtype=float), 0.0, 1.0)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * u


class PowerModelSqrt(PowerModel):
    """Concave model: ``idle + (peak - idle) * sqrt(u)``.

    Approximates servers whose power rises steeply at low load — the shape
    CloudSim's ``PowerModelSqrt`` uses.
    """

    def __init__(self, idle_watts: float = 100.0, peak_watts: float = 250.0) -> None:
        if idle_watts < 0 or peak_watts < idle_watts:
            raise ValueError(
                f"need 0 <= idle_watts <= peak_watts, got {idle_watts}, {peak_watts}"
            )
        self.idle_watts = idle_watts
        self.peak_watts = peak_watts

    def power(self, utilization: float) -> float:
        self._check(utilization)
        u = min(max(utilization, 0.0), 1.0)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * float(np.sqrt(u))

    def power_array(self, utilization: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(utilization, dtype=float), 0.0, 1.0)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * np.sqrt(u)


def vm_busy_times(
    scenario: ScenarioSpec, assignment: np.ndarray, exec_times: np.ndarray
) -> np.ndarray:
    """Total busy seconds per VM for a finished batch."""
    assignment = np.asarray(assignment, dtype=np.int64)
    busy = np.zeros(scenario.num_vms)
    np.add.at(busy, assignment, np.asarray(exec_times, dtype=float))
    return busy


def batch_energy(
    scenario: ScenarioSpec,
    assignment: np.ndarray,
    exec_times: np.ndarray,
    makespan: float,
    power_model: PowerModel | None = None,
    idle_fleet: bool = True,
) -> float:
    """Energy (joules) to execute a batch across the fleet.

    Each VM contributes busy seconds at full-utilization power and — when
    ``idle_fleet`` is set — idle seconds (up to ``makespan``) at idle power.
    One VM is treated as one power domain; host-level consolidation studies
    can divide by VMs-per-host.
    """
    if makespan <= 0:
        raise ValueError(f"makespan must be positive, got {makespan}")
    model = power_model or PowerModelLinear()
    busy = vm_busy_times(scenario, assignment, exec_times)
    if np.any(busy > makespan * (1 + 1e-9)):
        raise ValueError("a VM is busy for longer than the makespan; inputs inconsistent")
    energy_busy = float(busy.sum()) * model.power(1.0)
    if not idle_fleet:
        return energy_busy
    idle_seconds = float((makespan - busy).sum())
    return energy_busy + idle_seconds * model.power(0.0)


def energy_of_result(result, scenario: ScenarioSpec, power_model: PowerModel | None = None) -> float:
    """Convenience wrapper over :func:`batch_energy` for a SimulationResult."""
    return batch_energy(
        scenario,
        result.assignment,
        result.exec_times,
        result.makespan,
        power_model=power_model,
    )


__all__ = [
    "PowerModel",
    "PowerModelLinear",
    "PowerModelSqrt",
    "vm_busy_times",
    "batch_energy",
    "energy_of_result",
]
