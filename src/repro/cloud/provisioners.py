"""Host resource provisioners.

Mirror CloudSim's ``RamProvisionerSimple`` / ``BwProvisionerSimple`` /
``PeProvisionerSimple``: bookkeeping objects that grant or deny slices of a
host resource to VMs.  They enforce capacity but perform no overbooking.
"""

from __future__ import annotations


class ResourceProvisioner:
    """Tracks allocation of a scalar resource (RAM MB, BW Mbit/s, PEs...).

    Parameters
    ----------
    capacity:
        Total amount available on the host.
    name:
        Human-readable resource name used in error messages.
    """

    def __init__(self, capacity: float, name: str = "resource") -> None:
        if capacity < 0:
            raise ValueError(f"{name} capacity must be non-negative, got {capacity}")
        self.capacity = float(capacity)
        self.name = name
        self._allocated: dict[int, float] = {}

    @property
    def total_allocated(self) -> float:
        return sum(self._allocated.values())

    @property
    def available(self) -> float:
        return self.capacity - self.total_allocated

    def allocated_for(self, vm_id: int) -> float:
        """Amount currently granted to ``vm_id`` (0 when none)."""
        return self._allocated.get(vm_id, 0.0)

    def can_allocate(self, amount: float) -> bool:
        """Whether ``amount`` more of the resource fits."""
        if amount < 0:
            raise ValueError(f"cannot allocate negative {self.name}: {amount}")
        return amount <= self.available + 1e-9

    def allocate(self, vm_id: int, amount: float) -> bool:
        """Grant ``amount`` to ``vm_id``.  Returns ``False`` if it does not fit.

        Re-allocating for an id replaces (not adds to) its previous grant.
        """
        previous = self._allocated.get(vm_id, 0.0)
        if amount - previous > self.available + 1e-9:
            return False
        self._allocated[vm_id] = float(amount)
        return True

    def deallocate(self, vm_id: int) -> float:
        """Release the grant for ``vm_id``; returns the amount released."""
        return self._allocated.pop(vm_id, 0.0)

    def reset(self) -> None:
        """Release all grants."""
        self._allocated.clear()


class RamProvisioner(ResourceProvisioner):
    """Host memory provisioner."""

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity, name="ram")


class BwProvisioner(ResourceProvisioner):
    """Host bandwidth provisioner."""

    def __init__(self, capacity: float) -> None:
        super().__init__(capacity, name="bw")


class PeProvisioner(ResourceProvisioner):
    """Host PE-count provisioner (integral PEs)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(float(capacity), name="pes")

    def allocate(self, vm_id: int, amount: float) -> bool:
        if amount != int(amount):
            raise ValueError(f"PE allocation must be integral, got {amount}")
        return super().allocate(vm_id, amount)


__all__ = ["ResourceProvisioner", "RamProvisioner", "BwProvisioner", "PeProvisioner"]
