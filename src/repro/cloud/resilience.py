"""Failure-aware recovery: retry policies, rescheduling, speculation.

This module upgrades the blind round-robin recovery of
:mod:`repro.cloud.faults` to the full resilience stack of the study:

* :class:`RetryPolicy` — *when* to retry a bounced cloudlet.  Policies
  bound total execution attempts (``max_attempts``); exceeding the bound
  dead-letters the cloudlet (it is abandoned deterministically and
  reported in ``SimulationResult.info["dead_letter"]``).
* :class:`ReschedulingBroker` — *where* to retry.  Bounced cloudlets are
  buffered per retry instant and re-placed in one batch by re-invoking the
  configured batch :class:`~repro.schedulers.base.Scheduler` over the
  sub-problem of (bounced cloudlets × surviving VMs), via
  :meth:`~repro.schedulers.base.SchedulingContext.restrict`.  The same
  bio-inspired policy that placed the batch also heals it.
* Speculative re-execution — an optional watchdog per dispatch: when a
  cloudlet has not returned within ``speculation_multiple ×`` its expected
  completion (queue backlog included), the broker cancels it
  (``CLOUDLET_CANCEL``) and the bounce re-enters the retry path on a
  different VM.  Modelled as cancel-and-restart, the conservative variant
  of speculation: the copy is launched only after the original is
  withdrawn, so one cloudlet never runs twice concurrently.

:func:`run_resilient` is the façade; with an empty fault plan, the default
retry policy and speculation off it reproduces the plain
:class:`~repro.cloud.simulation.CloudSimulation` result bit-for-bit (a
property test pins this).
"""

from __future__ import annotations

import abc
import time
from typing import Sequence

import numpy as np

from repro.cloud.broker import DatacenterBroker
from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.datacenter import FaultNotice
from repro.cloud.faults import FaultEvent, FaultInjector, validate_fault_plan
from repro.cloud.simulation import (
    ExecutionModel,
    SimulationResult,
    build_simulation,
    compute_batch_costs,
    make_cloudlet_scheduler,
)
from repro.core.eventqueue import Event
from repro.core.rng import spawn_rng
from repro.obs.manifest import capture_manifest
from repro.obs.telemetry import TELEMETRY as _TEL
from repro.core.tags import EventTag
from repro.metrics.definitions import makespan, time_imbalance
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioSpec


# -- retry policies -------------------------------------------------------------


class RetryPolicy(abc.ABC):
    """Decides whether/when execution attempt ``attempt`` may happen.

    ``attempt`` counts *executions*: the initial dispatch is attempt 1, the
    first retry is attempt 2.  :meth:`next_delay` returns the delay before
    that attempt, or ``None`` once ``max_attempts`` is exhausted — the
    caller then dead-letters the cloudlet.
    """

    def __init__(self, max_attempts: int = 5) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts

    def next_delay(self, attempt: int, rng: np.random.Generator) -> float | None:
        """Delay before execution attempt ``attempt``; ``None`` = give up."""
        if attempt < 2:
            raise ValueError(f"retries start at attempt 2, got {attempt}")
        if attempt > self.max_attempts:
            return None
        return self._delay(attempt, rng)

    @abc.abstractmethod
    def _delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay for a permitted attempt (``2 <= attempt <= max_attempts``)."""


class ImmediateRetry(RetryPolicy):
    """Retry in the same instant the bounce is observed."""

    def _delay(self, attempt: int, rng: np.random.Generator) -> float:
        return 0.0


class FixedDelayRetry(RetryPolicy):
    """Constant pause before every retry."""

    def __init__(self, delay: float = 1.0, max_attempts: int = 5) -> None:
        super().__init__(max_attempts)
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay

    def _delay(self, attempt: int, rng: np.random.Generator) -> float:
        return self.delay


class ExponentialBackoffRetry(RetryPolicy):
    """Exponentially growing, jittered pause: ``base * factor^(attempt-2)``.

    The multiplicative jitter is drawn from the broker's seeded generator
    (uniform on ``[1-jitter, 1+jitter]``), so backoff schedules are
    reproducible per run seed while still decorrelating retry storms.
    """

    def __init__(
        self,
        base_delay: float = 0.5,
        factor: float = 2.0,
        max_delay: float = 60.0,
        jitter: float = 0.1,
        max_attempts: int = 5,
    ) -> None:
        super().__init__(max_attempts)
        if base_delay < 0 or max_delay < 0 or factor < 1:
            raise ValueError("base_delay/max_delay must be >= 0 and factor >= 1")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.base_delay = base_delay
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter

    def _delay(self, attempt: int, rng: np.random.Generator) -> float:
        raw = min(self.max_delay, self.base_delay * self.factor ** (attempt - 2))
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw


# -- the rescheduling broker ---------------------------------------------------


class ReschedulingBroker(DatacenterBroker):
    """Recovers from failures by re-invoking the batch scheduler.

    Bounced cloudlets sharing a retry instant (e.g. every immediate retry
    caused by one host crash) are re-placed in a *single* scheduler call
    over the surviving VMs, so the recovery placement sees the whole
    bounced batch — the same optimisation scope the initial decision had.

    Parameters beyond :class:`~repro.cloud.broker.DatacenterBroker`:

    scheduler / context:
        The batch policy to re-invoke and the full scheduling context it
        originally saw (rescheduling restricts it).
    retry_policy:
        When to retry; see :class:`RetryPolicy`.
    rng:
        Seeded generator feeding backoff jitter.
    speculation_multiple:
        ``None`` disables speculation (default).  Otherwise a dispatch arms
        a watchdog at ``multiple ×`` the expected completion time; if the
        cloudlet is still out when it fires, the broker cancels and retries
        it elsewhere.
    """

    def __init__(
        self,
        name: str,
        vms,
        cloudlets,
        assignment,
        vm_placement,
        *,
        scheduler: Scheduler,
        context: SchedulingContext,
        retry_policy: RetryPolicy,
        rng: np.random.Generator,
        speculation_multiple: float | None = None,
        topology=None,
    ) -> None:
        super().__init__(name, vms, cloudlets, assignment, vm_placement, topology)
        if speculation_multiple is not None and speculation_multiple <= 1:
            raise ValueError(
                f"speculation_multiple must exceed 1, got {speculation_multiple}"
            )
        self.scheduler = scheduler
        self.context = context
        self.retry_policy = retry_policy
        self.rng = rng
        self.speculation_multiple = speculation_multiple

        num_cloudlets = len(self.cloudlets)
        self._alive = np.ones(len(self.vms), dtype=bool)
        #: execution attempts per cloudlet (1 = the initial dispatch).
        self.attempts = np.zeros(num_cloudlets, dtype=np.int64)
        self.final_assignment = np.asarray(assignment, dtype=np.int64).copy()
        #: per-VM estimated outstanding execution seconds.
        self.backlog = np.zeros(len(self.vms))
        #: retry instant -> bounced cloudlet indices awaiting that instant.
        self._retry_buckets: dict[float, list[int]] = {}
        #: first bounce instant per still-unrecovered cloudlet (for MTTR).
        self._bounce_time: dict[int, float] = {}
        #: seconds from first bounce to successful finish, per recovered cloudlet.
        self.recovery_times: list[float] = []
        #: cloudlet indices abandoned after max_attempts.
        self.dead_letter: list[int] = []
        self.retries = 0
        self.reschedules = 0
        self.rescheduling_seconds = 0.0
        self.speculative_cancels = 0

    # -- fleet state -------------------------------------------------------------

    @property
    def dead_vm_indices(self) -> list[int]:
        """Indices of VMs currently believed dead."""
        return [int(i) for i in np.flatnonzero(~self._alive)]

    @property
    def all_finished(self) -> bool:
        """Every cloudlet either finished or was deterministically abandoned."""
        return len(self.finished) + len(self.dead_letter) == len(self.cloudlets)

    # -- event handling ----------------------------------------------------------

    def process_event(self, event: Event) -> None:
        if event.tag is EventTag.FAULT_NOTICE:
            self._process_fault_notice(event.data)
        elif event.tag is EventTag.TIMER:
            kind = event.data[0]
            if kind == "retry":
                self._process_retry_batch(event.data[1])
            elif kind == "speculate":
                self._process_speculation(event.data[1], event.data[2])
            else:  # pragma: no cover - defensive
                raise ValueError(f"{self.name}: unknown timer {event.data!r}")
        else:
            super().process_event(event)

    def _process_fault_notice(self, notice: FaultNotice) -> None:
        if notice.kind == "vm-failed":
            for vm_index in notice.vm_ids:
                self._alive[vm_index] = False
                # Resident estimates died with the VM; bounces re-add theirs
                # at their retry dispatch.
                self.backlog[vm_index] = 0.0
        elif notice.kind == "vm-recovered":
            for vm_index in notice.vm_ids:
                self._alive[vm_index] = True

    # -- dispatch ----------------------------------------------------------------

    def _submit_cloudlets(self) -> None:
        if self._submitted:
            return
        self._submitted = True
        for c_idx in range(len(self.cloudlets)):
            self.attempts[c_idx] = 1
            self._dispatch(c_idx, int(self.assignment[c_idx]))

    def _exec_estimate(self, c_idx: int, vm_idx: int) -> float:
        arr = self.context.arrays
        return float(
            arr.cloudlet_length[c_idx] / (arr.vm_mips[vm_idx] * arr.vm_pes[vm_idx])
        )

    def _dispatch(self, c_idx: int, vm_idx: int) -> None:
        """Send cloudlet ``c_idx`` to VM ``vm_idx`` and arm its watchdog."""
        cloudlet = self.cloudlets[c_idx]
        if cloudlet.status is not CloudletStatus.CREATED:
            cloudlet.reset_for_retry()
        self.final_assignment[c_idx] = vm_idx
        cloudlet.vm_id = self.vms[vm_idx].vm_id
        dc_id = self.vm_placement[vm_idx]
        delay = self.topology.latency(self.id, dc_id)
        estimate = self._exec_estimate(c_idx, vm_idx)
        self.backlog[vm_idx] += estimate
        self.send(dc_id, delay, EventTag.CLOUDLET_SUBMIT, data=cloudlet)
        if self.speculation_multiple is not None:
            # Expected completion = everything queued ahead plus this
            # cloudlet's own run; the watchdog fires at a multiple of it.
            horizon = max(float(self.backlog[vm_idx]), estimate)
            self.schedule_self(
                delay + self.speculation_multiple * horizon,
                EventTag.TIMER,
                data=("speculate", c_idx, int(self.attempts[c_idx])),
            )

    # -- returns and bounces -----------------------------------------------------

    def _process_return(self, event: Event) -> None:
        cloudlet: Cloudlet = event.data
        c_idx = cloudlet.cloudlet_id
        vm_idx = int(self.final_assignment[c_idx])
        self.backlog[vm_idx] = max(
            0.0, self.backlog[vm_idx] - self._exec_estimate(c_idx, vm_idx)
        )
        if cloudlet.status is CloudletStatus.FAILED:
            self._handle_bounce(c_idx)
            return
        if c_idx in self._bounce_time:
            self.recovery_times.append(self.now - self._bounce_time.pop(c_idx))
        self.finished.append(cloudlet)

    def _handle_bounce(self, c_idx: int) -> None:
        self._bounce_time.setdefault(c_idx, self.now)
        self.attempts[c_idx] += 1
        delay = self.retry_policy.next_delay(int(self.attempts[c_idx]), self.rng)
        if delay is None:
            self.dead_letter.append(c_idx)
            if _TEL.enabled:
                _TEL.count("resilience.dead_letters")
            return
        self.retries += 1
        if _TEL.enabled:
            _TEL.count("resilience.retries")
        due = self.now + delay
        bucket = self._retry_buckets.setdefault(due, [])
        bucket.append(c_idx)
        if len(bucket) == 1:
            self.schedule_self(delay, EventTag.TIMER, data=("retry", due))

    def _process_retry_batch(self, due: float) -> None:
        """Re-place every cloudlet whose retry matured at this instant."""
        indices = self._retry_buckets.pop(due)
        alive = np.flatnonzero(self._alive)
        if alive.size == 0:
            # Nothing to run on right now: dead-letter deterministically
            # rather than spin (recoveries later cannot resurrect these).
            self.dead_letter.extend(indices)
            return
        t0 = time.perf_counter()
        with _TEL.span("resilience.reschedule"):
            sub = self.context.restrict(np.asarray(indices, dtype=np.int64), alive)
            result = self.scheduler.schedule_checked(sub)
        self.rescheduling_seconds += time.perf_counter() - t0
        self.reschedules += 1
        if _TEL.enabled:
            _TEL.count("resilience.reschedules")
        for local_c, c_idx in enumerate(indices):
            self._dispatch(c_idx, int(alive[result.assignment[local_c]]))

    def _process_speculation(self, c_idx: int, attempt: int) -> None:
        """Watchdog: cancel a cloudlet that overstayed its expected runtime."""
        if attempt != int(self.attempts[c_idx]):
            return  # the attempt it watched already bounced or was retried
        cloudlet = self.cloudlets[c_idx]
        if cloudlet.status is CloudletStatus.SUCCESS or c_idx in self.dead_letter:
            return
        vm_idx = int(self.final_assignment[c_idx])
        self.speculative_cancels += 1
        if _TEL.enabled:
            _TEL.count("resilience.speculative_cancels")
        self.send_now(
            self.vm_placement[vm_idx], EventTag.CLOUDLET_CANCEL, data=cloudlet
        )


# -- façade --------------------------------------------------------------------


def run_resilient(
    scenario: ScenarioSpec,
    scheduler: Scheduler,
    failures: Sequence[FaultEvent] = (),
    seed: int | None = 0,
    *,
    retry_policy: RetryPolicy | None = None,
    speculation_multiple: float | None = None,
    execution_model: ExecutionModel = "space-shared",
) -> SimulationResult:
    """Run a batch under a fault plan with scheduler-driven recovery.

    Bounced cloudlets are re-placed by ``scheduler`` itself over the
    surviving VMs, retries pace themselves per ``retry_policy`` (default:
    seeded exponential backoff), and cloudlets exceeding ``max_attempts``
    are dead-lettered (reported in ``info["dead_letter"]``; their
    finish/exec entries stay at the -1 sentinel and the aggregate metrics
    are computed over the completed subset).

    With no failures, default policy and no speculation this reproduces
    :class:`~repro.cloud.simulation.CloudSimulation` output bit-for-bit.
    """
    validate_fault_plan(failures, scenario.num_vms)

    context = SchedulingContext.from_scenario(scenario, seed)
    with _TEL.span("sim.schedule"):
        t0 = time.perf_counter()
        decision = scheduler.schedule_checked(context)
        scheduling_time = time.perf_counter() - t0

    env = build_simulation(scenario, execution_model=execution_model)
    broker = ReschedulingBroker(
        name="broker",
        vms=env.vms,
        cloudlets=env.cloudlets,
        assignment=decision.assignment,
        vm_placement=env.vm_placement,
        scheduler=scheduler,
        context=context,
        retry_policy=retry_policy or ExponentialBackoffRetry(),
        rng=spawn_rng(seed, f"resilience/{scenario.name}"),
        speculation_multiple=speculation_multiple,
    )
    env.sim.register(broker)
    injector = FaultInjector(
        name="fault-injector",
        plan=failures,
        vm_entity=env.vm_placement,
        owner_id=broker.id,
        vm_factory=lambda i: scenario.vms[i].build(
            vm_id=i, cloudlet_scheduler=make_cloudlet_scheduler(execution_model)
        ),
    )
    env.sim.register(injector)

    with _TEL.span("sim.execute"):
        env.sim.run()
    cloudlets = env.cloudlets
    if not broker.all_finished:
        raise RuntimeError(
            f"resilient run drained with {len(broker.finished)} finished + "
            f"{len(broker.dead_letter)} dead-lettered of {len(cloudlets)} cloudlets"
        )

    submission = np.array([c.submission_time for c in cloudlets])
    start = np.array([c.exec_start_time for c in cloudlets])
    finish = np.array([c.finish_time for c in cloudlets])
    completed = np.array([c.is_finished for c in cloudlets], dtype=bool)
    costs = compute_batch_costs(scenario, broker.final_assignment)
    costs = np.where(completed, costs, 0.0)
    if completed.any():
        run_makespan = makespan(start[completed], finish[completed])
        imbalance = time_imbalance(finish[completed] - start[completed])
    else:  # every cloudlet dead-lettered (pathological plans)
        run_makespan = 0.0
        imbalance = 0.0
    mttr = float(np.mean(broker.recovery_times)) if broker.recovery_times else 0.0
    return SimulationResult(
        scenario_name=scenario.name,
        scheduler_name=decision.scheduler_name,
        scheduling_time=scheduling_time,
        makespan=run_makespan,
        time_imbalance=imbalance,
        total_cost=float(costs.sum()),
        assignment=broker.final_assignment,
        submission_times=submission,
        start_times=start,
        finish_times=finish,
        exec_times=finish - start,
        costs=costs,
        events_processed=env.sim.events_processed,
        info={
            "engine": "des+resilience",
            "execution_model": execution_model,
            "manifest": capture_manifest(
                scenario=scenario,
                scheduler=scheduler,
                seed=seed,
                engine="des+resilience",
                execution_model=execution_model,
                num_planned_faults=len(failures),
            ).to_dict(),
            "failures": len(failures),
            "retries": broker.retries,
            "reschedules": broker.reschedules,
            "rescheduling_seconds": broker.rescheduling_seconds,
            "speculative_cancels": broker.speculative_cancels,
            "dead_letter": sorted(broker.dead_letter),
            "completed": int(completed.sum()),
            "failed_vms": broker.dead_vm_indices,
            "lost_mi": float(sum(dc.lost_mi for dc in env.datacenters)),
            "recoveries": int(sum(dc.recoveries for dc in env.datacenters)),
            "host_failures": int(sum(dc.host_failures for dc in env.datacenters)),
            "mttr": mttr,
            **decision.info,
        },
    )


__all__ = [
    "RetryPolicy",
    "ImmediateRetry",
    "FixedDelayRetry",
    "ExponentialBackoffRetry",
    "ReschedulingBroker",
    "run_resilient",
]
