"""One-call scenario execution.

:class:`CloudSimulation` wires a :class:`~repro.workloads.spec.ScenarioSpec`
and a scheduler into the DES kernel: it times the scheduling decision
(the paper's *scheduling time*), builds datacenters/hosts/VMs/cloudlets,
runs the event loop and reduces the outcome to a
:class:`SimulationResult` carrying the paper's four metrics.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Literal

import numpy as np

from repro.cloud.broker import DatacenterBroker
from repro.cloud.cloudlet import Cloudlet
from repro.cloud.cloudlet_scheduler import (
    CloudletSchedulerSpaceShared,
    CloudletSchedulerTimeShared,
)
from repro.cloud.datacenter import Datacenter
from repro.cloud.host import Host
from repro.cloud.topology import NetworkTopology
from repro.cloud.vm import Vm
from repro.core.engine import Simulation
from repro.obs.manifest import capture_manifest
from repro.obs.telemetry import TELEMETRY as _TEL
from repro.metrics.definitions import (
    average_waiting_time,
    makespan,
    processing_cost,
    throughput,
    time_imbalance,
)
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioSpec

ExecutionModel = Literal["space-shared", "time-shared"]


@dataclass
class SimulationResult:
    """Outcome of one (scenario, scheduler) execution.

    All per-cloudlet arrays are index-aligned with the scenario's cloudlet
    list.
    """

    scenario_name: str
    scheduler_name: str
    #: wall-clock seconds the scheduler spent deciding (paper metric 1).
    scheduling_time: float
    #: simulated makespan, Eq. 12 (paper metric 2).
    makespan: float
    #: degree of imbalance, Eq. 13 (paper metric 3).
    time_imbalance: float
    #: summed processing cost (paper metric 4, Fig. 6d).
    total_cost: float
    assignment: np.ndarray
    submission_times: np.ndarray
    start_times: np.ndarray
    finish_times: np.ndarray
    exec_times: np.ndarray
    #: per-cloudlet processing cost.
    costs: np.ndarray
    events_processed: int = 0
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def num_cloudlets(self) -> int:
        return int(self.assignment.shape[0])

    @property
    def average_waiting_time(self) -> float:
        """Mean submission→start delay."""
        return average_waiting_time(self.submission_times, self.start_times)

    @property
    def throughput(self) -> float:
        """Cloudlets finished per simulated second."""
        return throughput(self.finish_times)

    def summary(self) -> dict[str, float]:
        """The paper's four metrics as a flat dict (for reports/CSV)."""
        return {
            "scheduling_time_s": self.scheduling_time,
            "makespan": self.makespan,
            "time_imbalance": self.time_imbalance,
            "total_cost": self.total_cost,
        }

    # -- persistence ------------------------------------------------------------

    def save(self, path) -> "Path":
        """Persist the full result (metrics + per-cloudlet arrays) as JSON."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format_version": 1,
            "scenario_name": self.scenario_name,
            "scheduler_name": self.scheduler_name,
            "scheduling_time": self.scheduling_time,
            "makespan": self.makespan,
            "time_imbalance": self.time_imbalance,
            "total_cost": self.total_cost,
            "assignment": self.assignment.tolist(),
            "submission_times": self.submission_times.tolist(),
            "start_times": self.start_times.tolist(),
            "finish_times": self.finish_times.tolist(),
            "exec_times": self.exec_times.tolist(),
            "costs": self.costs.tolist(),
            "events_processed": self.events_processed,
            "info": {k: v for k, v in self.info.items() if _json_safe(v)},
        }
        path.write_text(json.dumps(payload))
        return path

    @classmethod
    def load(cls, path) -> "SimulationResult":
        """Reload a result written by :meth:`save`."""
        import json
        from pathlib import Path

        data = json.loads(Path(path).read_text())
        version = data.get("format_version")
        if version != 1:
            raise ValueError(f"unsupported result format version {version!r}")
        return cls(
            scenario_name=data["scenario_name"],
            scheduler_name=data["scheduler_name"],
            scheduling_time=data["scheduling_time"],
            makespan=data["makespan"],
            time_imbalance=data["time_imbalance"],
            total_cost=data["total_cost"],
            assignment=np.array(data["assignment"], dtype=np.int64),
            submission_times=np.array(data["submission_times"]),
            start_times=np.array(data["start_times"]),
            finish_times=np.array(data["finish_times"]),
            exec_times=np.array(data["exec_times"]),
            costs=np.array(data["costs"]),
            events_processed=data["events_processed"],
            info=dict(data["info"]),
        )


def _json_safe(value) -> bool:
    """True when ``value`` serialises to JSON without custom encoding."""
    return isinstance(value, (str, int, float, bool, type(None), list, dict))


def compute_batch_costs(scenario: ScenarioSpec, assignment: np.ndarray) -> np.ndarray:
    """Vectorised per-cloudlet processing cost for an assignment."""
    arr = scenario.arrays()
    vm = np.asarray(assignment, dtype=np.int64)
    dc = arr.vm_datacenter[vm]
    return processing_cost(
        lengths=arr.cloudlet_length,
        vm_mips=arr.vm_mips[vm],
        vm_ram=arr.vm_ram[vm],
        vm_size=arr.vm_size[vm],
        file_sizes=arr.cloudlet_file_size,
        output_sizes=arr.cloudlet_output_size,
        cost_per_cpu=arr.dc_cost_per_cpu[dc],
        cost_per_mem=arr.dc_cost_per_mem[dc],
        cost_per_storage=arr.dc_cost_per_storage[dc],
        cost_per_bw=arr.dc_cost_per_bw[dc],
    )


def build_hosts_for_datacenter(scenario: ScenarioSpec, dc_idx: int) -> list[Host]:
    """Create enough hosts in datacenter ``dc_idx`` for its share of VMs.

    Host sizing comes from the :class:`~repro.workloads.spec.DatacenterSpec`;
    the count is derived from the aggregate PE/RAM/BW/storage demand of the
    VMs mapped to this datacenter (plus one spare host so allocation
    policies always have a choice).
    """
    dc_spec = scenario.datacenters[dc_idx]
    vm_indices = list(scenario.vms_in_datacenter(dc_idx))
    if not vm_indices:
        return [
            Host(
                host_id=0,
                mips_per_pe=dc_spec.host_mips,
                pes=dc_spec.host_pes,
                ram=dc_spec.host_ram,
                bw=dc_spec.host_bw,
                storage=dc_spec.host_storage,
            )
        ]
    vms = [scenario.vms[i] for i in vm_indices]
    need = max(
        math.ceil(sum(v.pes for v in vms) / dc_spec.host_pes),
        math.ceil(sum(v.ram for v in vms) / dc_spec.host_ram),
        math.ceil(sum(v.bw for v in vms) / dc_spec.host_bw),
        math.ceil(sum(v.size for v in vms) / dc_spec.host_storage),
        1,
    )
    max_vm_mips = max(v.mips for v in vms)
    if max_vm_mips > dc_spec.host_mips:
        raise ValueError(
            f"datacenter {dc_idx}: host PEs of {dc_spec.host_mips} MIPS cannot "
            f"run a {max_vm_mips} MIPS VM"
        )
    return [
        Host(
            host_id=h,
            mips_per_pe=dc_spec.host_mips,
            pes=dc_spec.host_pes,
            ram=dc_spec.host_ram,
            bw=dc_spec.host_bw,
            storage=dc_spec.host_storage,
        )
        for h in range(need + 1)
    ]


def make_cloudlet_scheduler(execution_model: ExecutionModel):
    """Instantiate the per-VM execution model named by ``execution_model``."""
    if execution_model == "space-shared":
        return CloudletSchedulerSpaceShared()
    if execution_model == "time-shared":
        return CloudletSchedulerTimeShared()
    raise ValueError(f"unknown execution model {execution_model!r}")


@dataclass
class SimulationEnvironment:
    """A fully wired DES instance for one scenario, ready for a broker.

    Produced by :func:`build_simulation` — the single canonical builder
    shared by the batch, online and fault/resilience façades, so fault runs
    cannot drift from the plain DES path.
    """

    sim: Simulation
    datacenters: list[Datacenter]
    vms: list[Vm]
    cloudlets: list[Cloudlet]
    #: vm index -> owning datacenter entity id.
    vm_placement: dict[int, int]


def build_simulation(
    scenario: ScenarioSpec,
    *,
    execution_model: ExecutionModel = "space-shared",
    trace: bool = False,
) -> SimulationEnvironment:
    """Build kernel + datacenters + VMs + cloudlets for ``scenario``.

    The caller registers its broker (and any fault injector) on the
    returned :attr:`SimulationEnvironment.sim` and runs it.
    """
    sim = Simulation(trace=trace)
    datacenters: list[Datacenter] = []
    for dc_idx, dc_spec in enumerate(scenario.datacenters):
        dc = Datacenter(
            name=f"dc-{dc_idx}",
            hosts=build_hosts_for_datacenter(scenario, dc_idx),
            characteristics=dc_spec.characteristics,
        )
        sim.register(dc)
        datacenters.append(dc)
    vms = [
        spec.build(vm_id=i, cloudlet_scheduler=make_cloudlet_scheduler(execution_model))
        for i, spec in enumerate(scenario.vms)
    ]
    cloudlets = [spec.build(cloudlet_id=i) for i, spec in enumerate(scenario.cloudlets)]
    vm_placement = {
        i: datacenters[scenario.vm_datacenter[i]].id for i in range(len(vms))
    }
    return SimulationEnvironment(
        sim=sim,
        datacenters=datacenters,
        vms=vms,
        cloudlets=cloudlets,
        vm_placement=vm_placement,
    )


class CloudSimulation:
    """Run one scheduler on one scenario through the DES engine.

    Parameters
    ----------
    scenario:
        The workload/environment description.
    scheduler:
        Batch scheduling policy.
    seed:
        Root seed for the scheduler's random stream.
    execution_model:
        Per-VM cloudlet execution semantics (paper default: space-shared).
    topology:
        Optional network topology for submission latencies.
    trace:
        Record the kernel event trace (tests/debugging only).
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        scheduler: Scheduler,
        seed: int | None = 0,
        execution_model: ExecutionModel = "space-shared",
        topology: NetworkTopology | None = None,
        trace: bool = False,
    ) -> None:
        if execution_model not in ("space-shared", "time-shared"):
            raise ValueError(f"unknown execution model {execution_model!r}")
        self.scenario = scenario
        self.scheduler = scheduler
        self.seed = seed
        self.execution_model = execution_model
        self.topology = topology
        self.trace = trace

    def run(self) -> SimulationResult:
        """Schedule, simulate, and reduce to metrics."""
        scenario = self.scenario
        context = SchedulingContext.from_scenario(scenario, self.seed)

        telemetry_before = _TEL.snapshot() if _TEL.enabled else None

        with _TEL.span("sim.schedule"):
            t0 = time.perf_counter()
            decision = self.scheduler.schedule_checked(context)
            scheduling_time = time.perf_counter() - t0

        with _TEL.span("sim.build"):
            env = build_simulation(
                scenario, execution_model=self.execution_model, trace=self.trace
            )
            sim, cloudlets = env.sim, env.cloudlets
            broker = DatacenterBroker(
                name="broker",
                vms=env.vms,
                cloudlets=cloudlets,
                assignment=decision.assignment,
                vm_placement=env.vm_placement,
                topology=self.topology,
            )
            sim.register(broker)
        with _TEL.span("sim.execute"):
            sim.run()

        if not broker.all_finished:
            raise RuntimeError(
                f"simulation drained with {len(broker.finished)}/"
                f"{len(cloudlets)} cloudlets finished"
            )

        with _TEL.span("sim.reduce"):
            submission = np.array([c.submission_time for c in cloudlets])
            start = np.array([c.exec_start_time for c in cloudlets])
            finish = np.array([c.finish_time for c in cloudlets])
            exec_times = finish - start
            costs = compute_batch_costs(scenario, decision.assignment)

        info = {
            "engine": "des",
            "execution_model": self.execution_model,
            "manifest": capture_manifest(
                scenario=scenario,
                scheduler=self.scheduler,
                seed=self.seed,
                engine="des",
                execution_model=self.execution_model,
            ).to_dict(),
            **decision.info,
        }
        if telemetry_before is not None:
            info["telemetry"] = _TEL.snapshot().diff(telemetry_before).to_dict()

        return SimulationResult(
            scenario_name=scenario.name,
            scheduler_name=decision.scheduler_name,
            scheduling_time=scheduling_time,
            makespan=makespan(start, finish),
            time_imbalance=time_imbalance(exec_times),
            total_cost=float(costs.sum()),
            assignment=decision.assignment,
            submission_times=submission,
            start_times=start,
            finish_times=finish,
            exec_times=exec_times,
            costs=costs,
            events_processed=sim.events_processed,
            info=info,
        )


def quick_run(
    scheduler: Scheduler,
    num_vms: int = 20,
    num_cloudlets: int = 200,
    scenario_kind: Literal["heterogeneous", "homogeneous"] = "heterogeneous",
    seed: int | None = 0,
    **kwargs,
) -> SimulationResult:
    """Convenience wrapper: generate a paper scenario and run it.

    Extra keyword arguments are forwarded to :class:`CloudSimulation`.
    """
    # Imported here: workloads import cloud modules, so a module-level import
    # would be circular.
    from repro.workloads.heterogeneous import heterogeneous_scenario
    from repro.workloads.homogeneous import homogeneous_scenario

    if scenario_kind == "heterogeneous":
        scenario = heterogeneous_scenario(num_vms, num_cloudlets, seed=seed)
    elif scenario_kind == "homogeneous":
        scenario = homogeneous_scenario(num_vms, num_cloudlets, seed=seed)
    else:
        raise ValueError(f"unknown scenario kind {scenario_kind!r}")
    return CloudSimulation(scenario, scheduler, seed=seed, **kwargs).run()


__all__ = [
    "CloudSimulation",
    "SimulationResult",
    "SimulationEnvironment",
    "build_simulation",
    "make_cloudlet_scheduler",
    "quick_run",
    "compute_batch_costs",
    "build_hosts_for_datacenter",
]
