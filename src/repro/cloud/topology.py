"""Network topologies.

The paper uses CloudSim's *default* topology — no network delays — which is
:class:`ZeroLatencyTopology` here.  Delay-matrix and ``networkx``-graph
topologies are provided so the submission path (broker → datacenter) can be
made latency-aware in extension experiments.
"""

from __future__ import annotations

import abc

import networkx as nx
import numpy as np


class NetworkTopology(abc.ABC):
    """Latency oracle between simulation entities (by entity id)."""

    @abc.abstractmethod
    def latency(self, src: int, dst: int) -> float:
        """One-way delay in simulated seconds between two entity ids."""


class ZeroLatencyTopology(NetworkTopology):
    """CloudSim's default: messages are instantaneous."""

    def latency(self, src: int, dst: int) -> float:
        return 0.0


class DelayMatrixTopology(NetworkTopology):
    """Latency from an explicit (symmetric or not) delay matrix.

    Entity ids index the matrix directly; ids outside the matrix fall back
    to ``default_latency``.
    """

    def __init__(self, matrix: np.ndarray, default_latency: float = 0.0) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"delay matrix must be square, got shape {matrix.shape}")
        if (matrix < 0).any():
            raise ValueError("delays must be non-negative")
        if default_latency < 0:
            raise ValueError("default_latency must be non-negative")
        self._matrix = matrix
        self._default = float(default_latency)

    def latency(self, src: int, dst: int) -> float:
        n = self._matrix.shape[0]
        if 0 <= src < n and 0 <= dst < n:
            return float(self._matrix[src, dst])
        return self._default

    @property
    def size(self) -> int:
        return self._matrix.shape[0]


class GraphTopology(NetworkTopology):
    """Shortest-path latency over a weighted ``networkx`` graph.

    Nodes are entity ids; edge attribute ``weight`` is the link delay.
    All-pairs shortest paths are precomputed at construction (the scenario
    sizes here make that cheap) so lookups are O(1).
    """

    def __init__(self, graph: nx.Graph, default_latency: float = 0.0) -> None:
        if default_latency < 0:
            raise ValueError("default_latency must be non-negative")
        self._default = float(default_latency)
        lengths = dict(nx.all_pairs_dijkstra_path_length(graph, weight="weight"))
        self._latency: dict[tuple[int, int], float] = {
            (src, dst): float(d)
            for src, targets in lengths.items()
            for dst, d in targets.items()
        }

    def latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return self._latency.get((src, dst), self._default)


__all__ = [
    "NetworkTopology",
    "ZeroLatencyTopology",
    "DelayMatrixTopology",
    "GraphTopology",
]
