"""Virtual machines.

A :class:`Vm` mirrors CloudSim's ``Vm``: a bundle of MIPS capacity, PEs,
RAM, bandwidth and image size, executing cloudlets through a per-VM
cloudlet scheduler (space- or time-shared).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cloud.cloudlet_scheduler import CloudletScheduler, CloudletSchedulerSpaceShared

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.host import Host


class Vm:
    """A virtual machine.

    Parameters
    ----------
    vm_id:
        Unique id within a simulation.
    mips:
        Per-PE capacity in million instructions per second (``vmMips``).
    pes:
        Number of virtual processing elements (``vmPesNumber``).
    ram:
        Memory in MB (``vmRam``).
    bw:
        Bandwidth in Mbit/s (``vmBw``).
    size:
        Image/storage size in MB (``vmSize``).
    cloudlet_scheduler:
        Execution model; defaults to a fresh space-shared scheduler,
        matching the CloudSim default used by the paper.
    """

    def __init__(
        self,
        vm_id: int,
        mips: float,
        pes: int = 1,
        ram: float = 512.0,
        bw: float = 500.0,
        size: float = 5000.0,
        cloudlet_scheduler: CloudletScheduler | None = None,
    ) -> None:
        if mips <= 0:
            raise ValueError(f"vm mips must be positive, got {mips}")
        if pes < 1:
            raise ValueError(f"vm pes must be >= 1, got {pes}")
        if min(ram, bw, size) < 0:
            raise ValueError("vm ram/bw/size must be non-negative")
        self.vm_id = vm_id
        self.mips = float(mips)
        self.pes = int(pes)
        self.ram = float(ram)
        self.bw = float(bw)
        self.size = float(size)
        self.host: "Host | None" = None
        self.datacenter_id = -1
        if cloudlet_scheduler is None:
            cloudlet_scheduler = CloudletSchedulerSpaceShared()
        self.cloudlet_scheduler = cloudlet_scheduler
        self.cloudlet_scheduler.bind(mips=self.mips, pes=self.pes)

    @property
    def total_mips(self) -> float:
        """Aggregate capacity across the VM's PEs."""
        return self.mips * self.pes

    @property
    def is_created(self) -> bool:
        """True once the VM has been placed on a host."""
        return self.host is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Vm(id={self.vm_id}, mips={self.mips}, pes={self.pes}, "
            f"ram={self.ram}, bw={self.bw}, size={self.size})"
        )


__all__ = ["Vm"]
