"""VM-to-host allocation policies.

Equivalent of CloudSim's ``VmAllocationPolicy`` hierarchy: when a broker asks
a datacenter to create a VM, the policy picks the host.  The paper relies on
the "simple" policy (least-used host first); first-fit and round-robin are
provided for the ablation benches.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.cloud.host import Host
from repro.cloud.vm import Vm


class VmAllocationPolicy(abc.ABC):
    """Chooses a host for each VM creation request."""

    @abc.abstractmethod
    def select_host(self, hosts: Sequence[Host], vm: Vm) -> Host | None:
        """Return the host to place ``vm`` on, or ``None`` if nothing fits."""

    def allocate(self, hosts: Sequence[Host], vm: Vm) -> bool:
        """Pick a host and create the VM there; returns success."""
        host = self.select_host(hosts, vm)
        if host is None:
            return False
        return host.create_vm(vm)


class VmAllocationLeastUsed(VmAllocationPolicy):
    """CloudSim's ``VmAllocationPolicySimple``: host with most free PEs wins."""

    def select_host(self, hosts: Sequence[Host], vm: Vm) -> Host | None:
        best: Host | None = None
        best_free = -1
        for host in hosts:
            if host.free_pes > best_free and host.is_suitable_for(vm):
                best = host
                best_free = host.free_pes
        return best


class VmAllocationFirstFit(VmAllocationPolicy):
    """First host (in id order) that fits."""

    def select_host(self, hosts: Sequence[Host], vm: Vm) -> Host | None:
        for host in hosts:
            if host.is_suitable_for(vm):
                return host
        return None


class VmAllocationRoundRobin(VmAllocationPolicy):
    """Rotate over hosts, skipping those that do not fit."""

    def __init__(self) -> None:
        self._next = 0

    def select_host(self, hosts: Sequence[Host], vm: Vm) -> Host | None:
        n = len(hosts)
        for offset in range(n):
            host = hosts[(self._next + offset) % n]
            if host.is_suitable_for(vm):
                self._next = (self._next + offset + 1) % n
                return host
        return None


class VmAllocationConsolidating(VmAllocationPolicy):
    """Pack VMs onto as few hosts as possible (most-used suitable host wins).

    The energy-aware counterpart of :class:`VmAllocationLeastUsed`: fewer
    active hosts means fewer idle-power domains under the
    :mod:`repro.cloud.power` models.  Ties (equal free PEs) break toward
    the lower host id so placement is deterministic.
    """

    def select_host(self, hosts: Sequence[Host], vm: Vm) -> Host | None:
        best: Host | None = None
        best_free: int | None = None
        for host in hosts:
            if not host.is_suitable_for(vm):
                continue
            if best_free is None or host.free_pes < best_free:
                best = host
                best_free = host.free_pes
        return best


__all__ = [
    "VmAllocationPolicy",
    "VmAllocationLeastUsed",
    "VmAllocationFirstFit",
    "VmAllocationRoundRobin",
    "VmAllocationConsolidating",
]
