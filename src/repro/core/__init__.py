"""Discrete-event simulation kernel.

This subpackage is the substrate that stands in for CloudSim's simulation
core (``org.cloudbus.cloudsim.core``): a future event list, a simulation
clock, entity registration and tagged message passing between entities.

The kernel is deliberately small and allocation-light; the scheduling study
pushes millions of events through it in the heterogeneous scenario sweeps.
"""

from repro.core.engine import Simulation, SimulationError
from repro.core.entity import Entity
from repro.core.eventqueue import Event, EventQueue
from repro.core.rng import RngStreams, spawn_rng
from repro.core.tags import EventTag

__all__ = [
    "Simulation",
    "SimulationError",
    "Entity",
    "Event",
    "EventQueue",
    "EventTag",
    "RngStreams",
    "spawn_rng",
]
