"""The simulation engine: clock + event loop + entity registry.

Equivalent to CloudSim's ``CloudSim`` class, trimmed to what the scheduling
study needs: deterministic event ordering, entity registration by name/id and
a run loop with optional time/event-count bounds.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.entity import Entity
from repro.core.eventqueue import Event, EventQueue
from repro.core.tags import EventTag
from repro.obs.telemetry import TELEMETRY as _TEL


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (unknown destination, re-run...)."""


class Simulation:
    """Owns the clock, the future event list and the registered entities.

    Parameters
    ----------
    trace:
        When true, every delivered event is recorded in :attr:`trace_log`
        (useful for tests and debugging; costs memory on big runs).

    Examples
    --------
    >>> from repro.core import Simulation, Entity, EventTag
    >>> class Echo(Entity):
    ...     def process_event(self, event):
    ...         self.received = event.data
    >>> sim = Simulation()
    >>> echo = Echo("echo")
    >>> sim.register(echo)
    0
    >>> _ = sim.schedule(delay=5.0, src=-1, dst=echo.id, tag=EventTag.NONE, data="hi")
    >>> sim.run()
    5.0
    >>> echo.received
    'hi'
    """

    def __init__(self, *, trace: bool = False) -> None:
        self._clock = 0.0
        self._queue = EventQueue()
        self._entities: list[Entity] = []
        self._by_name: dict[str, Entity] = {}
        self._running = False
        self._started = False
        self._finished = False
        self._events_processed = 0
        self.trace = trace
        self.trace_log: list[Event] = []

    # -- registry -----------------------------------------------------------

    def register(self, entity: Entity) -> int:
        """Register ``entity`` and return its assigned id."""
        if self._running or self._finished:
            raise SimulationError("cannot register entities once the simulation has run")
        if entity.name in self._by_name:
            raise SimulationError(f"duplicate entity name {entity.name!r}")
        entity_id = len(self._entities)
        entity._attach(self, entity_id)
        self._entities.append(entity)
        self._by_name[entity.name] = entity
        return entity_id

    def register_all(self, entities: Iterable[Entity]) -> list[int]:
        """Register several entities; returns their ids in order."""
        return [self.register(e) for e in entities]

    def entity(self, key: int | str) -> Entity:
        """Look up an entity by id or by name."""
        if isinstance(key, str):
            try:
                return self._by_name[key]
            except KeyError:
                raise SimulationError(f"unknown entity name {key!r}") from None
        try:
            return self._entities[key]
        except IndexError:
            raise SimulationError(f"unknown entity id {key}") from None

    @property
    def entities(self) -> tuple[Entity, ...]:
        return tuple(self._entities)

    # -- clock & scheduling ---------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._clock

    @property
    def events_processed(self) -> int:
        """Number of events delivered so far."""
        return self._events_processed

    @property
    def finished(self) -> bool:
        """True once the event list drained and shutdown hooks have fired."""
        return self._finished

    def schedule(
        self,
        *,
        delay: float,
        src: int,
        dst: int,
        tag: EventTag,
        data: Any = None,
        priority: int = 0,
    ) -> Event:
        """Enqueue an event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if not 0 <= dst < len(self._entities):
            raise SimulationError(f"unknown destination entity id {dst}")
        return self._queue.push(
            time=self._clock + delay, src=src, dst=dst, tag=tag, data=data, priority=priority
        )

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event."""
        return self._queue.cancel(event)

    def cancel_where(self, predicate: Callable[[Event], bool]) -> int:
        """Cancel all pending events matching ``predicate``."""
        return self._queue.cancel_where(predicate)

    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    # -- run loop -------------------------------------------------------------

    def _finalize(self) -> None:
        """Terminate a drained simulation: flip state, fire shutdown hooks.

        Idempotent — :meth:`run` and :meth:`step` both funnel through here,
        so hooks fire exactly once no matter how the drain was reached.
        """
        if self._finished:
            return
        self._finished = True
        self._running = False
        for entity in self._entities:
            entity.shutdown()

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run the event loop.

        Entities' :meth:`~repro.core.entity.Entity.start` hooks fire first
        (on the initial call only); the loop then drains the event list until
        it is empty, ``until`` is passed, or ``max_events`` deliveries happen.

        Returns the final simulation clock.
        """
        if self._finished and not self._queue:
            return self._clock
        self._running = True
        if not self._started:
            self._started = True
            for entity in self._entities:
                entity.start()

        delivered = 0
        while self._queue:
            head = self._queue.peek()
            assert head is not None
            if until is not None and head.time > until:
                self._clock = until
                break
            if max_events is not None and delivered >= max_events:
                break
            event = self._queue.pop()
            if event.time < self._clock:
                raise SimulationError(
                    f"causality violation: event at t={event.time} < clock={self._clock}"
                )
            self._clock = event.time
            if self.trace:
                self.trace_log.append(event)
            self._entities[event.dst].process_event(event)
            self._events_processed += 1
            delivered += 1
        else:
            # Event list drained completely: simulation is over.
            self._finalize()
        if _TEL.enabled and delivered:
            # Batched once per run() call, not per event, to keep the loop hot.
            _TEL.count("core.events_dispatched", delivered)
        return self._clock

    def step(self) -> Event | None:
        """Deliver exactly one event; returns it (or ``None`` if drained).

        Termination matches :meth:`run`: the step that drains the event
        list (and a drained call on a started simulation) finalizes —
        ``_finished`` flips, ``_running`` clears and entity ``shutdown()``
        hooks fire, exactly once.
        """
        if not self._queue:
            if self._started:
                self._finalize()
            return None
        self._running = True
        if not self._started:
            self._started = True
            for entity in self._entities:
                entity.start()
        event = self._queue.pop()
        self._clock = event.time
        if self.trace:
            self.trace_log.append(event)
        self._entities[event.dst].process_event(event)
        self._events_processed += 1
        if not self._queue:
            self._finalize()
        return event


__all__ = ["Simulation", "SimulationError"]
