"""Simulation entities.

An :class:`Entity` is the unit of concurrency in the kernel — the analogue of
CloudSim's ``SimEntity``.  Entities communicate exclusively by tagged,
time-stamped messages routed through the :class:`~repro.core.engine.Simulation`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any

from repro.core.tags import EventTag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.engine import Simulation
    from repro.core.eventqueue import Event


class Entity(abc.ABC):
    """Base class for all simulated actors (brokers, datacenters, ...).

    Subclasses implement :meth:`process_event`; :meth:`start` runs once when
    the simulation begins, before any event is delivered.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("entity name must be non-empty")
        self.name = name
        self._id = -1
        self._sim: Simulation | None = None

    # -- identity -----------------------------------------------------------

    @property
    def id(self) -> int:
        """Kernel-assigned id; ``-1`` until registered with a simulation."""
        return self._id

    @property
    def sim(self) -> "Simulation":
        """The owning simulation.

        Raises
        ------
        RuntimeError
            If the entity has not been registered yet.
        """
        if self._sim is None:
            raise RuntimeError(f"entity {self.name!r} is not attached to a simulation")
        return self._sim

    def _attach(self, sim: "Simulation", entity_id: int) -> None:
        if self._sim is not None:
            raise RuntimeError(f"entity {self.name!r} is already attached")
        self._sim = sim
        self._id = entity_id

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Hook called once when :meth:`Simulation.run` begins."""

    def shutdown(self) -> None:
        """Hook called when the simulation terminates."""

    @abc.abstractmethod
    def process_event(self, event: "Event") -> None:
        """Handle a delivered event."""

    # -- messaging ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def send(
        self,
        dst: "Entity | int",
        delay: float,
        tag: EventTag,
        data: Any = None,
        priority: int = 0,
    ) -> "Event":
        """Send ``data`` to entity ``dst`` after ``delay`` time units."""
        dst_id = dst.id if isinstance(dst, Entity) else dst
        return self.sim.schedule(
            delay=delay, src=self._id, dst=dst_id, tag=tag, data=data, priority=priority
        )

    def send_now(
        self, dst: "Entity | int", tag: EventTag, data: Any = None, priority: int = 0
    ) -> "Event":
        """Send with zero delay (delivered after currently queued same-time events)."""
        return self.send(dst, 0.0, tag, data, priority=priority)

    def schedule_self(
        self, delay: float, tag: EventTag, data: Any = None, priority: int = 0
    ) -> "Event":
        """Schedule an event to be delivered back to this entity."""
        return self.send(self, delay, tag, data, priority=priority)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self._id} name={self.name!r}>"


__all__ = ["Entity"]
