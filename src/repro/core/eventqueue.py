"""Future event list for the DES kernel.

The queue is a binary heap keyed on ``(time, priority, serial)``.  The serial
number guarantees *stable* FIFO ordering for simultaneous events, which the
cloud model relies on (e.g. a ``CLOUDLET_SUBMIT`` issued before a
``VM_DATACENTER_EVENT`` at the same timestamp must be delivered first).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.tags import EventTag


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled occurrence in simulated time.

    Attributes
    ----------
    time:
        Absolute simulation time at which the event fires.
    src:
        Id of the sending entity (``-1`` for kernel-originated events).
    dst:
        Id of the receiving entity.
    tag:
        Protocol tag (:class:`~repro.core.tags.EventTag`).
    data:
        Arbitrary payload.
    priority:
        Secondary ordering key for simultaneous events; lower fires first.
    serial:
        Tertiary, strictly increasing tie-breaker assigned by the queue.
    """

    time: float
    src: int
    dst: int
    tag: EventTag
    data: Any = None
    priority: int = 0
    serial: int = field(default=0, compare=False)

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.serial)


class EventQueue:
    """A future event list with stable ordering and lazy cancellation.

    Cancellation marks events dead in O(1); dead events are skipped when
    popped.  This keeps :meth:`cancel_where` cheap for the datacenter's
    "supersede my previous progress-update event" pattern.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        self._serial = itertools.count()
        self._dead: set[int] = set()
        self._live_count = 0

    def __len__(self) -> int:
        return self._live_count

    def __bool__(self) -> bool:
        return self._live_count > 0

    def push(
        self,
        time: float,
        src: int,
        dst: int,
        tag: EventTag,
        data: Any = None,
        priority: int = 0,
    ) -> Event:
        """Insert a new event and return it (its serial identifies it)."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(
            time=time, src=src, dst=dst, tag=tag, data=data,
            priority=priority, serial=next(self._serial),
        )
        heapq.heappush(self._heap, (event.sort_key(), event))
        self._live_count += 1
        return event

    def peek(self) -> Event | None:
        """Return the next live event without removing it."""
        self._drop_dead_head()
        if not self._heap:
            return None
        return self._heap[0][1]

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._drop_dead_head()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        _, event = heapq.heappop(self._heap)
        self._live_count -= 1
        return event

    def cancel(self, event: Event) -> bool:
        """Cancel a previously pushed event.  Returns ``False`` if unknown/dead."""
        if event.serial in self._dead:
            return False
        self._dead.add(event.serial)
        self._live_count -= 1
        return True

    def cancel_where(self, predicate: Callable[[Event], bool]) -> int:
        """Cancel all live events matching ``predicate``; returns the count."""
        cancelled = 0
        for _, event in self._heap:
            if event.serial not in self._dead and predicate(event):
                self._dead.add(event.serial)
                cancelled += 1
        self._live_count -= cancelled
        return cancelled

    def clear(self) -> None:
        """Drop every event."""
        self._heap.clear()
        self._dead.clear()
        self._live_count = 0

    def iter_live(self) -> Iterator[Event]:
        """Iterate live events in an unspecified (heap) order."""
        for _, event in self._heap:
            if event.serial not in self._dead:
                yield event

    def next_time(self) -> float | None:
        """Time of the next live event, or ``None`` when empty."""
        head = self.peek()
        return None if head is None else head.time

    def _drop_dead_head(self) -> None:
        heap = self._heap
        dead = self._dead
        while heap and heap[0][1].serial in dead:
            dead.discard(heapq.heappop(heap)[1].serial)


__all__ = ["Event", "EventQueue"]
