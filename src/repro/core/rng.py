"""Seeded random-number discipline.

Every stochastic component in the package (workload generators, ACO ants,
RBS walk lengths, ...) draws from a :class:`numpy.random.Generator` obtained
through :func:`spawn_rng` or :class:`RngStreams`.  Streams are derived from a
root ``SeedSequence`` with a stable text label, so

* two runs with the same ``(seed, label)`` are bit-identical, and
* adding a new consumer never perturbs existing streams (unlike sharing one
  generator and interleaving draws).
"""

from __future__ import annotations

import zlib
from typing import Iterator

import numpy as np


def _label_key(label: str) -> int:
    """Map a text label to a stable 32-bit stream key."""
    return zlib.crc32(label.encode("utf-8"))


def spawn_rng(seed: int | None, label: str = "") -> np.random.Generator:
    """Create a generator for ``label`` derived from ``seed``.

    ``seed=None`` produces OS entropy (non-reproducible) — allowed, but the
    experiment harness always passes explicit seeds.
    """
    if seed is None:
        return np.random.default_rng()
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(_label_key(label),)))


class RngStreams:
    """A family of named, independent random streams under one root seed.

    Examples
    --------
    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("workload")
    >>> b = streams.get("aco")
    >>> a is streams.get("workload")   # memoised
    True
    """

    def __init__(self, seed: int | None) -> None:
        self.seed = seed
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, label: str) -> np.random.Generator:
        """Return the (memoised) generator for ``label``."""
        if label not in self._cache:
            self._cache[label] = spawn_rng(self.seed, label)
        return self._cache[label]

    def fresh(self, label: str) -> np.random.Generator:
        """Return a *new* generator for ``label`` (same sequence from the start)."""
        return spawn_rng(self.seed, label)

    def labels(self) -> Iterator[str]:
        """Labels instantiated so far."""
        return iter(self._cache)


__all__ = ["spawn_rng", "RngStreams"]
