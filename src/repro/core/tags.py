"""Event tags used by the cloud model.

Mirrors CloudSim's ``CloudSimTags``: every message between entities carries a
tag identifying the request/response type.  Keeping them in one enum makes the
event traces greppable and lets tests assert on protocol sequences.
"""

from __future__ import annotations

import enum


class EventTag(enum.IntEnum):
    """Protocol tags for messages exchanged between cloud entities."""

    #: Generic no-op event; used by tests and as a wake-up tick.
    NONE = 0

    #: Broker -> Datacenter: request creation of a VM (payload: ``Vm``).
    VM_CREATE = 10
    #: Datacenter -> Broker: result of VM creation (payload: ``(vm, success)``).
    VM_CREATE_ACK = 11
    #: Broker -> Datacenter: destroy a VM (payload: ``Vm``).
    VM_DESTROY = 12
    #: FaultInjector -> Datacenter: a VM crashes (payload: vm index == vm_id).
    VM_FAILURE = 13
    #: Controller -> Datacenter: live-migrate a VM (payload: (vm_id, host_id)).
    VM_MIGRATE = 14
    #: Datacenter self-message: a live migration's copy phase finished.
    VM_MIGRATION_COMPLETE = 15

    #: Broker -> Datacenter: submit a cloudlet to a VM (payload: ``Cloudlet``).
    CLOUDLET_SUBMIT = 20
    #: Datacenter -> Broker: cloudlet finished (payload: ``Cloudlet``).
    CLOUDLET_RETURN = 21
    #: Datacenter self-message: recompute cloudlet progress at the next
    #: expected completion instant.
    VM_DATACENTER_EVENT = 22

    #: Entity self-message used to delay an action (payload: callable or data).
    TIMER = 30

    #: Simulation management: entity asked to wrap up.
    END_OF_SIMULATION = 99


__all__ = ["EventTag"]
