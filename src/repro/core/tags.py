"""Event tags used by the cloud model.

Mirrors CloudSim's ``CloudSimTags``: every message between entities carries a
tag identifying the request/response type.  Keeping them in one enum makes the
event traces greppable and lets tests assert on protocol sequences.
"""

from __future__ import annotations

import enum


class EventTag(enum.IntEnum):
    """Protocol tags for messages exchanged between cloud entities."""

    #: Generic no-op event; used by tests and as a wake-up tick.
    NONE = 0

    #: Broker -> Datacenter: request creation of a VM (payload: ``Vm``).
    VM_CREATE = 10
    #: Datacenter -> Broker: result of VM creation (payload: ``(vm, success)``).
    VM_CREATE_ACK = 11
    #: Broker -> Datacenter: destroy a VM (payload: ``Vm``).
    VM_DESTROY = 12
    #: FaultInjector -> Datacenter: a VM crashes (payload: vm index == vm_id).
    VM_FAILURE = 13
    #: Controller -> Datacenter: live-migrate a VM (payload: (vm_id, host_id)).
    VM_MIGRATE = 14
    #: Datacenter self-message: a live migration's copy phase finished.
    VM_MIGRATION_COMPLETE = 15
    #: FaultInjector -> Datacenter: the host running a VM crashes, killing
    #: every co-located VM (payload: anchor vm index).
    HOST_FAILURE = 16
    #: FaultInjector -> Datacenter: a previously failed VM returns to service
    #: (payload: ``(fresh Vm, owner entity id)``).
    VM_RECOVER = 17
    #: FaultInjector -> Datacenter: a VM starts straggling — its effective
    #: MIPS is scaled down (payload: ``(vm index, factor)``).
    VM_SLOWDOWN = 18
    #: FaultInjector -> Datacenter: a straggling VM returns to full speed
    #: (payload: vm index).
    VM_SLOWDOWN_END = 19

    #: Broker -> Datacenter: submit a cloudlet to a VM (payload: ``Cloudlet``).
    CLOUDLET_SUBMIT = 20
    #: Datacenter -> Broker: cloudlet finished (payload: ``Cloudlet``).
    CLOUDLET_RETURN = 21
    #: Datacenter self-message: recompute cloudlet progress at the next
    #: expected completion instant.
    VM_DATACENTER_EVENT = 22
    #: Broker -> Datacenter: abort a resident cloudlet (payload: ``Cloudlet``);
    #: the datacenter bounces it back ``FAILED`` if it was still unfinished.
    CLOUDLET_CANCEL = 23
    #: Datacenter -> Broker: fleet state changed (payload: ``FaultNotice``);
    #: sent before the bounced cloudlets of the same fault.
    FAULT_NOTICE = 24

    #: Entity self-message used to delay an action (payload: callable or data).
    TIMER = 30

    #: Simulation management: entity asked to wrap up.
    END_OF_SIMULATION = 99


__all__ = ["EventTag"]
