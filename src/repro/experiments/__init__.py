"""Experiment harness.

One entry point per paper figure plus ablations:

* ``fig4a`` / ``fig4b`` — homogeneous simulation time (makespan) sweeps;
* ``fig5a`` / ``fig5b`` — homogeneous scheduling-time sweeps;
* ``fig6a`` .. ``fig6d`` — heterogeneous makespan / scheduling time /
  imbalance / processing cost sweeps;
* ``ablation-*`` — parameter studies called out in DESIGN.md.

Each experiment can run at three presets: ``quick`` (seconds, CI-sized),
``scaled`` (minutes, shape-faithful), ``paper`` (the paper's actual sizes;
hours in pure Python — provided for completeness).

Run from the command line::

    python -m repro.experiments fig6a --preset quick
    python -m repro.experiments all --preset scaled --out results/
"""

from repro.experiments.figures import (
    EXPERIMENTS,
    ExperimentDefinition,
    FigureData,
    get_experiment,
    run_experiment,
)
from repro.experiments.runner import SweepRecord, run_sweep
from repro.experiments.scenarios import Preset, preset_config

__all__ = [
    "EXPERIMENTS",
    "ExperimentDefinition",
    "FigureData",
    "get_experiment",
    "run_experiment",
    "SweepRecord",
    "run_sweep",
    "Preset",
    "preset_config",
]
