"""Command-line entry point: regenerate paper figures and render reports.

Examples
--------
::

    python -m repro.experiments fig6a --preset quick
    python -m repro.experiments all --preset scaled --out results/ -v
    python -m repro.experiments fig4a --stream --chunk-size 65536 -v
    python -m repro.experiments fig4a --stream --shards auto
    python -m repro.experiments fig6a --telemetry --out results/
    python -m repro.experiments fig6b --cache-dir .repro-cache
    python -m repro.experiments cache stats --cache-dir .repro-cache
    python -m repro.experiments report results/
    python -m repro.experiments list
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro import obs
from repro.experiments.extensions import EXTENSION_EXPERIMENTS
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.report import render_figure, save_figure
from repro.experiments.scenarios import Preset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures (see DESIGN.md for the index).",
    )
    parser.add_argument(
        "target",
        help=(
            "figure id (fig4a-fig5b, fig6a-fig6d), extension id (ext-*), "
            "'compare', 'storm', 'serve', 'report', 'cache', 'all', or 'list'"
        ),
    )
    parser.add_argument(
        "path",
        nargs="?",
        type=Path,
        default=None,
        help=(
            "for target 'report': a run JSON (SimulationResult.save), a "
            "telemetry JSONL, or a sweep directory (default: --out); for "
            "target 'cache': the action — stats (default), prune, or verify"
        ),
    )
    compare = parser.add_argument_group("compare options (target 'compare')")
    compare.add_argument(
        "--schedulers",
        default="antcolony,basetest,honeybee,rbs",
        help="comma-separated registry names to compare",
    )
    compare.add_argument("--vms", type=int, default=50, help="fleet size")
    compare.add_argument("--cloudlets", type=int, default=500, help="batch size")
    compare.add_argument(
        "--scenario",
        choices=["heterogeneous", "homogeneous"],
        default="heterogeneous",
        help="scenario family",
    )
    compare.add_argument("--seed", type=int, default=0, help="root seed")
    storm = parser.add_argument_group("storm options (target 'storm')")
    storm.add_argument(
        "--timeline",
        type=Path,
        default=None,
        help=(
            "JSON timeline spec (Timeline.to_dict form) driving arrivals and "
            "faults; default: the built-in demo storm"
        ),
    )
    storm.add_argument(
        "--control",
        default="on",
        choices=["on", "off"],
        help=(
            "'on' (default) runs calm/uncontrolled/controlled arms; 'off' "
            "skips nothing but reports make clear the loop was a no-op"
        ),
    )
    storm.add_argument(
        "--policies",
        default="greedy-mct,leastloaded",
        help="comma-separated online policies (roundrobin, random, leastloaded, greedy-mct)",
    )
    storm.add_argument(
        "--seeds", default="0,1", help="comma-separated storm seeds"
    )
    storm.add_argument(
        "--sla", type=float, default=30.0, help="flow-time SLO in seconds"
    )
    storm.add_argument(
        "--standby", type=int, default=2, help="VMs parked as recruitable reserve"
    )
    storm.add_argument(
        "--cadence", type=float, default=0.5, help="control-loop tick period (s)"
    )
    storm.add_argument(
        "--cooldown", type=float, default=2.0, help="per-action cooldown (s)"
    )
    serve = parser.add_argument_group("serve options (target 'serve')")
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address for the HTTP service"
    )
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port for the HTTP service"
    )
    serve.add_argument(
        "--fleet",
        action="append",
        default=None,
        metavar="NAME=SCHEDULER:FAMILY:VMS[:SEED]",
        help=(
            "fleet to serve (repeatable), e.g. edge=greedy-mct:homogeneous:100; "
            "servable schedulers: basetest, greedy-mct "
            "(default: edge=greedy-mct:homogeneous:100)"
        ),
    )
    parser.add_argument(
        "--preset",
        choices=[p.value for p in Preset],
        default=Preset.QUICK.value,
        help="sweep size: quick (seconds), scaled (minutes), paper (verbatim sizes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("results"),
        help="directory for CSV output (default: results/)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the sweep grid (default: serial); "
            "records are bit-identical to a serial run"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "content-addressed result cache directory: figure sweeps replay "
            "previously computed (scheduler, scale, seed) cells from disk "
            "and compute only the missing ones (see docs/performance.md)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir for this invocation (always recompute)",
    )
    parser.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help="for 'cache prune': evict oldest entries down to this size",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "run the figure on the memory-bounded streaming engine: chunked "
            "scenario generation + per-VM accumulator folding (fast-path "
            "figures fig4a-fig5b only; see docs/performance.md)"
        ),
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=(
            "cloudlets per streaming chunk (default 65536); metric values "
            "are chunk-size-invariant, only peak memory changes"
        ),
    )
    parser.add_argument(
        "--shards",
        default=None,
        help=(
            "data-parallel shard count for --stream points ('auto' = cpu "
            "count); results are shard-count-invariant, so cached serial "
            "entries still hit"
        ),
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "record span timings and subsystem counters during the sweep and "
            "write <out>/<target>.telemetry.jsonl next to the CSV"
        ),
    )
    parser.add_argument(
        "--logy", action="store_true", help="plot the y axis on a log scale"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="print per-cell progress"
    )
    return parser


def run_compare(args) -> int:
    """Run an ad-hoc scheduler comparison and print the metric table."""
    from repro.analysis.tables import format_table
    from repro.cloud.simulation import CloudSimulation
    from repro.schedulers import SCHEDULER_REGISTRY, make_scheduler
    from repro.workloads import heterogeneous_scenario, homogeneous_scenario

    names = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    unknown = [n for n in names if n not in SCHEDULER_REGISTRY]
    if unknown:
        print(
            f"unknown scheduler(s) {unknown}; available: {sorted(SCHEDULER_REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    factory = (
        heterogeneous_scenario if args.scenario == "heterogeneous" else homogeneous_scenario
    )
    scenario = factory(args.vms, args.cloudlets, seed=args.seed)
    print(f"Scenario: {scenario.name} (seed={args.seed})\n")
    rows = []
    for name in names:
        result = CloudSimulation(scenario, make_scheduler(name), seed=args.seed).run()
        rows.append(
            {
                "scheduler": name,
                "makespan_s": result.makespan,
                "scheduling_time_s": result.scheduling_time,
                "time_imbalance": result.time_imbalance,
                "processing_cost": result.total_cost,
            }
        )
    print(format_table(rows, float_format="{:.4g}"))
    return 0


#: online policy registry for the 'storm' target.
STORM_POLICIES = {
    "roundrobin": "OnlineRoundRobin",
    "random": "OnlineRandom",
    "leastloaded": "OnlineLeastLoaded",
    "greedy-mct": "OnlineGreedyMCT",
}


def run_storm(args) -> int:
    """Run a timeline-driven chaos storm with and without the MAPE-K loop."""
    import repro.schedulers.online as online_policies
    from repro.analysis.tables import format_table
    from repro.cloud.chaos import demo_storm_timeline, run_storm_suite
    from repro.cloud.control import ControlConfig
    from repro.workloads import heterogeneous_scenario
    from repro.workloads.timeline import timeline_from_dict

    names = [n.strip() for n in args.policies.split(",") if n.strip()]
    unknown = [n for n in names if n not in STORM_POLICIES]
    if unknown:
        print(
            f"unknown online polic{'y' if len(unknown) == 1 else 'ies'} "
            f"{unknown}; available: {sorted(STORM_POLICIES)}",
            file=sys.stderr,
        )
        return 2
    scenario = heterogeneous_scenario(args.vms, args.cloudlets, seed=args.seed)
    if args.timeline is not None:
        import json

        timeline = timeline_from_dict(json.loads(args.timeline.read_text()))
    else:
        timeline = demo_storm_timeline(scenario.num_vms)
    # --control off keeps the three-arm comparison but attaches an inert
    # loop (thresholds it can never cross), so "controlled" degenerates to
    # the self-healing baseline — a clean ablation of the loop itself.
    inert = args.control == "off"
    control = ControlConfig(
        cadence=args.cadence,
        cooldown=args.cooldown,
        standby_vms=args.standby,
        imbalance_threshold=1e9 if inert else 2.0,
        scale_up_backlog=None if inert else 1.5,
        sla_seconds=args.sla,
    )
    seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
    policies = {
        name: getattr(online_policies, STORM_POLICIES[name]) for name in names
    }
    report = run_storm_suite(
        scenario, policies, timeline, control, seeds=seeds, sla_seconds=args.sla
    )
    print(
        f"Storm {timeline.name!r} on {scenario.name} "
        f"(seeds={list(seeds)}, sla={args.sla}s, control={args.control})\n"
    )
    print(format_table(report.to_rows(), float_format="{:.4g}"))
    print()
    for arm in ("uncontrolled", "controlled"):
        print(
            f"{arm:12s} mean degradation "
            f"{report.mean_degradation(arm):.4f}, "
            f"SLA violations {report.sla_violation_count(arm)}"
        )
    path = report.save(args.out / "storm.json")
    print(f"\n(report written to {path}; render with the 'report' target)")
    return 0


def _parse_fleet_arg(text: str):
    """``NAME=SCHEDULER:FAMILY:VMS[:SEED]`` → :class:`repro.serve.FleetSpec`."""
    from repro.serve import FleetSpec

    name, sep, rest = text.partition("=")
    if not sep or not name:
        raise ValueError(f"fleet spec {text!r} is not NAME=SCHEDULER:FAMILY:VMS[:SEED]")
    parts = rest.split(":")
    if not 1 <= len(parts) <= 4:
        raise ValueError(f"fleet spec {text!r} has {len(parts)} fields, expected 1-4")
    scheduler = parts[0]
    family = parts[1] if len(parts) > 1 and parts[1] else "homogeneous"
    num_vms = int(parts[2]) if len(parts) > 2 else 100
    seed = int(parts[3]) if len(parts) > 3 else 0
    return FleetSpec(
        name=name, scheduler=scheduler, family=family, num_vms=num_vms, seed=seed
    )


def run_serve(args) -> int:
    """Serve live placement requests over HTTP until interrupted."""
    from repro.serve import SchedulerService, ServeError
    from repro.serve.http import run_server

    service = SchedulerService()
    try:
        for text in args.fleet or ["edge=greedy-mct:homogeneous:100"]:
            spec = _parse_fleet_arg(text)
            fleet = service.add_fleet(spec)
            print(
                f"fleet {spec.name!r}: {spec.scheduler} over {spec.num_vms} "
                f"{spec.family} VMs, seed {spec.seed} "
                f"(fingerprint {fleet.manifest.fingerprint()[:12]})"
            )
    except (ServeError, ValueError) as exc:
        print(f"bad --fleet: {exc}", file=sys.stderr)
        return 2
    print(
        "endpoints: GET /healthz | GET /v1/fleets[/<name>] | "
        "POST /v1/fleets/<name>/submit"
    )
    if args.telemetry:
        with obs.enabled(True):
            run_server(service, args.host, args.port)
    else:
        run_server(service, args.host, args.port)
    return 0


def _report_one(path: Path) -> bool:
    """Render one artifact (run JSON or telemetry JSONL); False if unusable."""
    if path.suffix == ".jsonl":
        try:
            snapshot, manifest = obs.read_telemetry_jsonl(path)
        except (ValueError, KeyError):
            return False
        print(obs.render_telemetry(snapshot, title=str(path)))
        if manifest is not None:
            print()
            print(obs.render_manifest(manifest))
        print()
        return True
    if path.suffix == ".json":
        from repro.cloud.chaos import load_report_rows
        from repro.cloud.simulation import SimulationResult

        try:
            payload = load_report_rows(path)
        except (OSError, ValueError):
            payload = None
        if payload is not None:
            from repro.analysis.tables import format_table

            title = f"{path} — {payload['kind']} on {payload.get('scenario', '?')}"
            print(title)
            print("=" * len(title))
            print(format_table(payload["rows"], float_format="{:.4g}"))
            for aggregate in ("mean_degradation", "sla_violations"):
                if aggregate in payload:
                    print(f"{aggregate}: {payload[aggregate]}")
            print()
            return True
        try:
            result = SimulationResult.load(path)
        except (ValueError, KeyError):
            return False
        title = f"{path} — {result.scheduler_name} on {result.scenario_name}"
        telemetry = result.info.get("telemetry")
        if telemetry:
            snapshot = obs.TelemetrySnapshot.from_dict(telemetry)
            print(obs.render_telemetry(snapshot, title=title))
        else:
            print(title)
            print("=" * len(title))
            print("(run was recorded without telemetry)")
        manifest_dict = result.info.get("manifest")
        if manifest_dict:
            print()
            print(obs.render_manifest(obs.RunManifest.from_dict(manifest_dict)))
        print()
        return True
    return False


def run_cache(args) -> int:
    """Inspect or maintain a result cache (stats / prune / verify)."""
    from repro.cache import ResultCache

    if args.cache_dir is None:
        print("target 'cache' requires --cache-dir", file=sys.stderr)
        return 2
    action = str(args.path) if args.path is not None else "stats"
    if action not in ("stats", "prune", "verify"):
        print(
            f"unknown cache action {action!r}; expected stats, prune or verify",
            file=sys.stderr,
        )
        return 2
    cache = ResultCache(args.cache_dir)
    if action == "stats":
        stats = cache.stats()
        print(f"cache: {cache.root}")
        print(f"entries:     {stats.entries}")
        print(f"total bytes: {stats.total_bytes} ({stats.total_bytes / 1e6:.2f} MB)")
        for version, count in sorted(stats.by_version.items()):
            print(f"  version {version}: {count} entr{'y' if count == 1 else 'ies'}")
        return 0
    if action == "prune":
        max_bytes = int(args.max_mb * 1e6) if args.max_mb is not None else None
        report = cache.prune(max_bytes=max_bytes)
        print(
            f"pruned {report.removed} entr{'y' if report.removed == 1 else 'ies'}, "
            f"freed {report.freed_bytes} bytes"
        )
        return 0
    problems = cache.verify()
    if not problems:
        print(f"cache {cache.root}: all {len(cache)} entries verify")
        return 0
    for key, reason in problems:
        print(f"{key}: {reason}")
    print(f"({len(problems)} problem(s) found)", file=sys.stderr)
    return 1


def run_report(args) -> int:
    """Render telemetry/manifest reports for a run file or sweep directory."""
    path = args.path if args.path is not None else args.out
    if not path.exists():
        print(f"report target {path} does not exist", file=sys.stderr)
        return 2
    if path.is_file():
        if _report_one(path):
            return 0
        print(
            f"{path} is neither a telemetry JSONL nor a saved run JSON",
            file=sys.stderr,
        )
        return 2
    rendered = 0
    for candidate in sorted(path.iterdir()):
        if candidate.suffix in (".jsonl", ".json") and _report_one(candidate):
            rendered += 1
    if rendered == 0:
        print(
            f"no telemetry artifacts in {path}; run a figure with --telemetry "
            "or save a run with SimulationResult.save first",
            file=sys.stderr,
        )
        return 2
    print(f"({rendered} artifact(s) rendered from {path})")
    return 0


def _parse_shards(value, stream: bool) -> int | None:
    """Resolve --shards: None passes through, 'auto' = cpu count, else int."""
    if value is None:
        return None
    if not stream:
        raise SystemExit("--shards requires --stream")
    if str(value).lower() == "auto":
        import os

        return os.cpu_count() or 1
    try:
        shards = int(value)
    except ValueError:
        raise SystemExit(f"--shards expects an integer or 'auto', got {value!r}")
    if shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {shards}")
    return shards


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "compare":
        return run_compare(args)
    if args.target == "storm":
        args.out.mkdir(parents=True, exist_ok=True)
        return run_storm(args)
    if args.target == "serve":
        return run_serve(args)
    if args.target == "report":
        return run_report(args)
    if args.target == "cache":
        return run_cache(args)
    if args.target == "list":
        for experiment_id, definition in sorted(EXPERIMENTS.items()):
            print(f"{experiment_id:10s} {definition.title}")
            print(f"{'':10s}   expectation: {definition.expectation}")
        for experiment_id, runner in sorted(EXTENSION_EXPERIMENTS.items()):
            print(f"{experiment_id:10s} {(runner.__doc__ or '').strip().splitlines()[0]}")
        return 0

    targets = sorted(EXPERIMENTS) if args.target == "all" else [args.target.lower()]
    if args.target == "all" and args.stream:
        # Only the analytic fast-path figures can stream; skip DES figures
        # rather than failing halfway through the batch.
        targets = [t for t in targets if EXPERIMENTS[t].engine == "fast"]
        print(f"(--stream: running fast-path figures only: {', '.join(targets)})")
    unknown = [
        t for t in targets if t not in EXPERIMENTS and t not in EXTENSION_EXPERIMENTS
    ]
    if unknown:
        print(f"unknown experiment(s) {unknown}; try 'list'", file=sys.stderr)
        return 2

    shards = _parse_shards(args.shards, args.stream)

    cache = None
    if args.cache_dir is not None and not args.no_cache:
        from repro.cache import ResultCache

        cache = ResultCache(args.cache_dir)

    if args.telemetry:
        obs.enable()
    progress = print if args.verbose else None
    for target in targets:
        telemetry_before = obs.snapshot() if args.telemetry else None
        hits_before = (cache.hits, cache.misses) if cache is not None else (0, 0)
        t0 = time.perf_counter()
        if target in EXTENSION_EXPERIMENTS:
            if args.workers and args.workers > 1:
                print(f"note: {target} is an extension experiment; running serially")
            if cache is not None:
                print(f"note: {target} is an extension experiment; cache not used")
            if args.stream:
                print(f"note: {target} is an extension experiment; --stream ignored")
            data = EXTENSION_EXPERIMENTS[target](args.preset)
        else:
            try:
                data = run_experiment(
                    target,
                    preset=args.preset,
                    progress=progress,
                    workers=args.workers,
                    cache=cache,
                    stream=args.stream,
                    chunk_size=args.chunk_size,
                    shards=shards,
                )
            except ValueError as exc:
                if not args.stream:
                    raise
                print(str(exc), file=sys.stderr)
                return 2
        elapsed = time.perf_counter() - t0
        # Scheduling-time figures span decades; log scale reads better.
        logy = args.logy or target.startswith("fig5") or target == "fig6b"
        print(render_figure(data, logy=logy))
        path = save_figure(data, args.out)
        print(f"(swept in {elapsed:.1f}s; CSV written to {path})")
        if cache is not None and target in EXPERIMENTS:
            hits = cache.hits - hits_before[0]
            misses = cache.misses - hits_before[1]
            print(f"(cache: {hits} hit(s), {misses} miss(es) at {cache.root})")
        print()
        if telemetry_before is not None:
            snapshot = obs.snapshot().diff(telemetry_before)
            manifest = obs.capture_manifest(
                engine="sweep",
                timestamp=True,
                experiment=target,
                preset=args.preset,
                workers=args.workers,
            )
            telemetry_path = obs.write_telemetry_jsonl(
                args.out / f"{target}.telemetry.jsonl", snapshot, manifest
            )
            print(obs.render_telemetry(snapshot, title=f"{target} telemetry"))
            print(f"(telemetry written to {telemetry_path})\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
