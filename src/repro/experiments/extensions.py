"""Extension experiments beyond the paper's figures.

Three studies the paper motivates but never runs, each regenerable from the
CLI like the paper figures:

* ``ext-energy`` — fleet energy per scheduler (linear power model) across
  the heterogeneous VM sweep;
* ``ext-online`` — mean flow time of the online policies across Poisson
  arrival rates;
* ``ext-sla`` — deadline violation rate of EDF vs the paper schedulers
  across deadline slack factors.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cloud.online import OnlineCloudSimulation
from repro.cloud.power import PowerModelLinear, energy_of_result
from repro.cloud.simulation import CloudSimulation
from repro.experiments.figures import FigureData
from repro.experiments.scenarios import Preset
from repro.metrics.sla import relative_deadlines, sla_report
from repro.schedulers import RoundRobinScheduler, make_scheduler
from repro.schedulers.deadline import DeadlineAwareScheduler
from repro.schedulers.online import (
    BatchAdapter,
    OnlineGreedyMCT,
    OnlineLeastLoaded,
    OnlineRoundRobin,
)
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.heterogeneous import heterogeneous_scenario

#: bench-sized ACO for the extension sweeps.
_ACO_KWARGS = {"num_ants": 10, "max_iterations": 2}


def _sizes(preset: Preset | str) -> tuple[int, int, tuple[int, ...]]:
    """(num_cloudlets, num_vms, seeds) per preset for the extensions."""
    preset = Preset(preset)
    if preset is Preset.QUICK:
        return 300, 40, (0,)
    if preset is Preset.SCALED:
        return 800, 80, (0, 1)
    return 1000, 100, (0, 1, 2)


def run_ext_energy(preset: Preset | str = Preset.QUICK) -> FigureData:
    """Fleet energy (J) per paper scheduler across the VM sweep."""
    num_cloudlets, _, seeds = _sizes(preset)
    vm_counts = [25, 50, 100, 200]
    model = PowerModelLinear(idle_watts=100.0, peak_watts=250.0)
    schedulers = ("antcolony", "basetest", "honeybee", "rbs")
    series: dict[str, list[float]] = {name: [] for name in schedulers}
    ci = {name: [0.0] * len(vm_counts) for name in schedulers}
    for num_vms in vm_counts:
        for name in schedulers:
            values = []
            for seed in seeds:
                scenario = heterogeneous_scenario(num_vms, num_cloudlets, seed=seed)
                kwargs = _ACO_KWARGS if name == "antcolony" else {}
                result = CloudSimulation(
                    scenario, make_scheduler(name, **kwargs), seed=seed
                ).run()
                values.append(energy_of_result(result, scenario, model))
            series[name].append(float(np.mean(values)))
    return FigureData(
        experiment_id="ext-energy",
        title="Fleet energy per scheduler (extension)",
        xlabel="number of virtual machines",
        ylabel="energy (J)",
        x=vm_counts,
        series=series,
        ci=ci,
    )


def run_ext_online(preset: Preset | str = Preset.QUICK) -> FigureData:
    """Mean flow time per online policy across Poisson arrival rates."""
    num_cloudlets, num_vms, seeds = _sizes(preset)
    rates = [5, 10, 20, 40, 80]
    policies: dict[str, Callable[[], object]] = {
        "online-roundrobin": OnlineRoundRobin,
        "online-leastloaded": OnlineLeastLoaded,
        "online-greedy-mct": OnlineGreedyMCT,
        "batch[basetest]": lambda: BatchAdapter(RoundRobinScheduler()),
    }
    series: dict[str, list[float]] = {name: [] for name in policies}
    ci = {name: [0.0] * len(rates) for name in policies}
    for rate in rates:
        for name, factory in policies.items():
            values = []
            for seed in seeds:
                scenario = heterogeneous_scenario(num_vms, num_cloudlets, seed=seed)
                result = OnlineCloudSimulation(
                    scenario, factory(), arrivals=PoissonArrivals(rate=float(rate)), seed=seed
                ).run()
                flow = result.finish_times - result.submission_times
                values.append(float(flow.mean()))
            series[name].append(float(np.mean(values)))
    return FigureData(
        experiment_id="ext-online",
        title="Mean flow time under Poisson arrivals (extension)",
        xlabel="arrival rate (cloudlets/s)",
        ylabel="mean flow time (s)",
        x=rates,
        series=series,
        ci=ci,
        x_key="arrival_rate",
    )


def run_ext_sla(preset: Preset | str = Preset.QUICK) -> FigureData:
    """Deadline violation rate (%) across slack factors."""
    num_cloudlets, num_vms, seeds = _sizes(preset)
    slacks = [2, 4, 8, 16, 32]
    names = ("deadline-edf", "basetest", "antcolony", "honeybee")
    series: dict[str, list[float]] = {name: [] for name in names}
    ci = {name: [0.0] * len(slacks) for name in names}
    for slack in slacks:
        for name in names:
            values = []
            for seed in seeds:
                scenario = heterogeneous_scenario(num_vms, num_cloudlets, seed=seed)
                arr = scenario.arrays()
                deadlines = relative_deadlines(
                    arr.cloudlet_length, float(arr.vm_mips.mean()), slack_factor=float(slack)
                )
                if name == "deadline-edf":
                    scheduler = DeadlineAwareScheduler(deadlines=deadlines)
                elif name == "antcolony":
                    scheduler = make_scheduler(name, **_ACO_KWARGS)
                else:
                    scheduler = make_scheduler(name)
                result = CloudSimulation(scenario, scheduler, seed=seed).run()
                report = sla_report(result.finish_times, deadlines)
                values.append(100.0 * report.violation_rate)
            series[name].append(float(np.mean(values)))
    return FigureData(
        experiment_id="ext-sla",
        title="Deadline violation rate vs slack (extension)",
        xlabel="deadline slack factor",
        ylabel="violation rate (%)",
        x=slacks,
        series=series,
        ci=ci,
        x_key="slack_factor",
    )


EXTENSION_EXPERIMENTS: dict[str, Callable[[Preset | str], FigureData]] = {
    "ext-energy": run_ext_energy,
    "ext-online": run_ext_online,
    "ext-sla": run_ext_sla,
}


__all__ = [
    "run_ext_energy",
    "run_ext_online",
    "run_ext_sla",
    "EXTENSION_EXPERIMENTS",
]
