"""Per-figure experiment definitions.

Every paper figure (and every ablation from DESIGN.md) is an
:class:`ExperimentDefinition`: which scenario family, which metric, which
schedulers, and the paper's qualitative expectation.  :func:`run_experiment`
executes one at a chosen preset and returns a :class:`FigureData` —
aggregated series ready for the report layer (ASCII plot + CSV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.experiments.runner import Engine, SweepRecord, run_sweep
from repro.experiments.scenarios import Preset, SweepConfig, preset_config
from repro.metrics.stats import summarize
from repro.schedulers import PAPER_SCHEDULERS
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario


@dataclass
class FigureData:
    """Aggregated series for one figure: mean (and CI) per x per scheduler."""

    experiment_id: str
    title: str
    xlabel: str
    ylabel: str
    x: list[int]
    #: scheduler -> series of means, aligned with ``x``.
    series: dict[str, list[float]]
    #: scheduler -> series of CI half-widths, aligned with ``x``.
    ci: dict[str, list[float]]
    records: list[SweepRecord] = field(default_factory=list)
    #: column name of the x axis in tabular output.
    x_key: str = "num_vms"

    def final_values(self) -> dict[str, float]:
        """Mean at the largest x per scheduler (used by shape checks)."""
        return {name: values[-1] for name, values in self.series.items()}

    def to_json_dict(self) -> dict:
        """JSON-serialisable form (raw records are not persisted)."""
        return {
            "format_version": 1,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "x": list(self.x),
            "x_key": self.x_key,
            "series": {k: list(v) for k, v in self.series.items()},
            "ci": {k: list(v) for k, v in self.ci.items()},
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "FigureData":
        """Inverse of :meth:`to_json_dict`."""
        version = data.get("format_version")
        if version != 1:
            raise ValueError(f"unsupported figure format version {version!r}")
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            xlabel=data["xlabel"],
            ylabel=data["ylabel"],
            x=list(data["x"]),
            series={k: list(v) for k, v in data["series"].items()},
            ci={k: list(v) for k, v in data["ci"].items()},
            x_key=data.get("x_key", "num_vms"),
        )

    def to_rows(self) -> list[dict[str, float | int | str]]:
        """Long-format rows for CSV export."""
        rows: list[dict[str, float | int | str]] = []
        for name, values in self.series.items():
            for xi, v, c in zip(self.x, values, self.ci[name]):
                rows.append(
                    {
                        "experiment": self.experiment_id,
                        "scheduler": name,
                        self.x_key: xi,
                        "mean": v,
                        "ci95": c,
                    }
                )
        return rows


@dataclass(frozen=True)
class ScenarioFamily:
    """Picklable (num_vms, num_cloudlets, seed) -> scenario factory.

    Parallel sweeps pickle the factory into spawn-based workers, so it is
    a dataclass keyed by the family name rather than a lambda.

    With ``chunked=True`` the factory yields a
    :class:`~repro.workloads.streaming.ScenarioChunks` instead of a
    materialised spec — same seeds, bit-identical columns, but the
    workload exists only one chunk at a time.  This is what the
    ``"stream"`` engine sweeps use at paper scale.
    """

    kind: str  # "homogeneous" | "heterogeneous"
    chunked: bool = False
    chunk_size: int | None = None

    def __call__(self, num_vms: int, num_cloudlets: int, seed: int):
        if self.kind not in ("homogeneous", "heterogeneous"):
            raise ValueError(f"unknown scenario kind {self.kind!r}")
        if self.chunked:
            from repro.workloads.streaming import (
                DEFAULT_CHUNK_SIZE,
                heterogeneous_stream,
                homogeneous_stream,
            )

            make = (
                homogeneous_stream
                if self.kind == "homogeneous"
                else heterogeneous_stream
            )
            return make(
                num_vms,
                num_cloudlets,
                seed=seed,
                chunk_size=self.chunk_size or DEFAULT_CHUNK_SIZE,
            )
        if self.kind == "homogeneous":
            return homogeneous_scenario(num_vms, num_cloudlets, seed=seed)
        return heterogeneous_scenario(num_vms, num_cloudlets, seed=seed)


@dataclass(frozen=True)
class ExperimentDefinition:
    """A reproducible experiment: scenario family + sweep + metric."""

    experiment_id: str
    title: str
    metric: str
    ylabel: str
    scenario_kind: str  # "homogeneous" | "heterogeneous"
    engine: Engine
    schedulers: tuple[str, ...] = PAPER_SCHEDULERS
    #: paper's qualitative expectation, documented in EXPERIMENTS.md.
    expectation: str = ""

    def scenario_factory(
        self, chunked: bool = False, chunk_size: int | None = None
    ) -> ScenarioFamily:
        if self.scenario_kind not in ("homogeneous", "heterogeneous"):
            raise ValueError(f"unknown scenario kind {self.scenario_kind!r}")
        return ScenarioFamily(self.scenario_kind, chunked=chunked, chunk_size=chunk_size)

    def config(self, preset: Preset | str) -> SweepConfig:
        return preset_config(self.experiment_id, preset)


EXPERIMENTS: dict[str, ExperimentDefinition] = {
    e.experiment_id: e
    for e in (
        ExperimentDefinition(
            experiment_id="fig4a",
            title="Simulation time, homogeneous (small fleet sweep)",
            metric="makespan",
            ylabel="simulation time of cloudlets (s)",
            scenario_kind="homogeneous",
            engine="fast",
            expectation=(
                "all schedulers converge to the Base Test optimum; makespan "
                "decreases as VMs grow"
            ),
        ),
        ExperimentDefinition(
            experiment_id="fig4b",
            title="Simulation time, homogeneous (large fleet sweep)",
            metric="makespan",
            ylabel="simulation time of cloudlets (s)",
            scenario_kind="homogeneous",
            engine="fast",
            expectation="same as fig4a at 10x the fleet size",
        ),
        ExperimentDefinition(
            experiment_id="fig5a",
            title="Scheduling time, homogeneous (small fleet sweep)",
            metric="scheduling_time",
            ylabel="scheduling time (s)",
            scenario_kind="homogeneous",
            engine="fast",
            expectation=(
                "Base Test orders of magnitude below ACO/HBO/RBS, which pay "
                "for their decision computations"
            ),
        ),
        ExperimentDefinition(
            experiment_id="fig5b",
            title="Scheduling time, homogeneous (large fleet sweep)",
            metric="scheduling_time",
            ylabel="scheduling time (s)",
            scenario_kind="homogeneous",
            engine="fast",
            expectation="same ordering as fig5a",
        ),
        ExperimentDefinition(
            experiment_id="fig6a",
            title="Simulation time, heterogeneous",
            metric="makespan",
            ylabel="simulation time of cloudlets (s)",
            scenario_kind="heterogeneous",
            engine="des",
            expectation=(
                "ACO best; HBO slightly better than Base Test; RBS about the "
                "same as Base Test with fluctuations"
            ),
        ),
        ExperimentDefinition(
            experiment_id="fig6b",
            title="Scheduling time, heterogeneous",
            metric="scheduling_time",
            ylabel="scheduling time (s)",
            scenario_kind="heterogeneous",
            engine="des",
            expectation="Base Test < RBS < HBO < ACO",
        ),
        ExperimentDefinition(
            experiment_id="fig6c",
            title="Degree of time imbalance, heterogeneous",
            metric="time_imbalance",
            ylabel="time degree of imbalance",
            scenario_kind="heterogeneous",
            engine="des",
            expectation=(
                "metaheuristics (ACO, HBO) show the worst imbalance — they "
                "seek fast VMs, shrinking the mean per-task time; Base Test "
                "and RBS spread by count and stay lower (paper order: base "
                "< RBS < HBO < ACO; the ACO/HBO internal order is noise-"
                "level here, see EXPERIMENTS.md)"
            ),
        ),
        ExperimentDefinition(
            experiment_id="fig6d",
            title="Processing cost, heterogeneous",
            metric="total_cost",
            ylabel="processing cost",
            scenario_kind="heterogeneous",
            engine="des",
            expectation="HBO lowest; the other three close together above it",
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentDefinition:
    """Look up an experiment by id."""
    try:
        return EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def aggregate(
    definition: ExperimentDefinition,
    records: list[SweepRecord],
    vm_counts: list[int],
) -> FigureData:
    """Reduce sweep records to per-(scheduler, x) mean and CI series."""
    series: dict[str, list[float]] = {}
    ci: dict[str, list[float]] = {}
    for name in definition.schedulers:
        means: list[float] = []
        cis: list[float] = []
        for v in vm_counts:
            samples = [
                r.metric(definition.metric)
                for r in records
                if r.scheduler == name and r.num_vms == v
            ]
            if not samples:
                raise RuntimeError(
                    f"no records for scheduler={name} num_vms={v} in {definition.experiment_id}"
                )
            stats = summarize(np.array(samples))
            means.append(stats.mean)
            cis.append(stats.ci_halfwidth)
        series[name] = means
        ci[name] = cis
    return FigureData(
        experiment_id=definition.experiment_id,
        title=definition.title,
        xlabel="number of virtual machines",
        ylabel=definition.ylabel,
        x=list(vm_counts),
        series=series,
        ci=ci,
        records=records,
    )


def run_experiment(
    experiment_id: str,
    preset: Preset | str = Preset.QUICK,
    progress: Callable[[str], None] | None = None,
    workers: int | None = None,
    cache=None,
    stream: bool = False,
    chunk_size: int | None = None,
    shards: int | None = None,
) -> FigureData:
    """Execute one paper figure's sweep and aggregate it.

    ``workers`` is forwarded to :func:`repro.experiments.runner.run_sweep`:
    ``None``/0/1 runs serially, ``N >= 2`` fans the sweep cells out over
    ``N`` worker processes with bit-identical records.  ``cache`` (a
    :class:`repro.cache.ResultCache` or directory path) makes the sweep
    incremental: previously computed (scheduler, scale, seed) cells replay
    from disk and only the missing ones run.

    ``stream=True`` replaces the figure's analytic engine with the
    memory-bounded streaming path (chunked scenario generation plus
    per-VM accumulator folding; see docs/performance.md).  Only figures
    declared on the ``"fast"`` engine stream — the DES figures model
    per-event dynamics the fold cannot reproduce and raise
    ``ValueError``.  ``chunk_size`` sets the cloudlets-per-chunk
    granularity (metric values do not depend on it).  ``shards`` splits
    each streaming point into data-parallel shards merged exactly
    (``stream=True`` only; results are shard-count-invariant).
    """
    definition = get_experiment(experiment_id)
    config = definition.config(preset)
    engine = definition.engine
    if stream:
        if engine != "fast":
            raise ValueError(
                f"experiment {definition.experiment_id!r} runs on the "
                f"{engine!r} engine; --stream only applies to the analytic "
                "fast-path figures (fig4a-fig5b)"
            )
        engine = "stream"
    if shards is not None and not stream:
        raise ValueError("shards= requires stream=True")
    records = run_sweep(
        scenario_factory=definition.scenario_factory(
            chunked=stream, chunk_size=chunk_size
        ),
        scheduler_factories=config.make_schedulers(definition.schedulers),
        vm_counts=config.vm_counts,
        num_cloudlets=config.num_cloudlets,
        seeds=config.seeds,
        engine=engine,
        progress=progress,
        workers=workers,
        cache=cache,
        chunk_size=chunk_size,
        shards=shards,
    )
    return aggregate(definition, records, list(config.vm_counts))


__all__ = [
    "FigureData",
    "ExperimentDefinition",
    "ScenarioFamily",
    "EXPERIMENTS",
    "get_experiment",
    "aggregate",
    "run_experiment",
]
