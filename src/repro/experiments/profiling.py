"""Profiling helpers.

The hpc-parallel guideline this project follows is *no optimization without
measuring*: these wrappers make it one call to profile a scheduler decision
or a whole simulation and get the hot functions back, without littering the
experiment code with ``cProfile`` boilerplate.

Examples
--------
>>> from repro.experiments.profiling import profile_scheduling
>>> from repro.schedulers import AntColonyScheduler
>>> from repro.workloads import heterogeneous_scenario
>>> scenario = heterogeneous_scenario(20, 100, seed=0)
>>> report = profile_scheduling(AntColonyScheduler(num_ants=4, max_iterations=1), scenario)
>>> "function calls" in report.text
True
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Any, Callable

from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioSpec


@dataclass(frozen=True)
class ProfileReport:
    """Captured profile: raw stats plus a rendered top-N text table."""

    text: str
    total_calls: int
    total_time: float
    result: Any

    def __str__(self) -> str:
        return self.text


def profile_callable(
    fn: Callable[[], Any],
    sort: str = "cumulative",
    top: int = 25,
) -> ProfileReport:
    """Run ``fn`` under cProfile and return a :class:`ProfileReport`."""
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    return ProfileReport(
        text=buffer.getvalue(),
        total_calls=int(stats.total_calls),
        total_time=float(stats.total_tt),
        result=result,
    )


def profile_scheduling(
    scheduler: Scheduler,
    scenario: ScenarioSpec,
    seed: int | None = 0,
    sort: str = "cumulative",
    top: int = 25,
) -> ProfileReport:
    """Profile one scheduling decision on ``scenario``."""
    context = SchedulingContext.from_scenario(scenario, seed=seed)
    return profile_callable(
        lambda: scheduler.schedule_checked(context), sort=sort, top=top
    )


def profile_simulation(
    scheduler: Scheduler,
    scenario: ScenarioSpec,
    seed: int | None = 0,
    engine: str = "des",
    sort: str = "cumulative",
    top: int = 25,
) -> ProfileReport:
    """Profile a full (schedule + simulate + metrics) pipeline run."""
    from repro.experiments.runner import run_point

    return profile_callable(
        lambda: run_point(scenario, scheduler, seed=seed, engine=engine),  # type: ignore[arg-type]
        sort=sort,
        top=top,
    )


__all__ = ["ProfileReport", "profile_callable", "profile_scheduling", "profile_simulation"]
