"""Profiling helpers: one documented entry point for "profile this scheduler".

The hpc-parallel guideline this project follows is *no optimization without
measuring*.  :func:`profile_scheduling` is that one entry point: it runs a
scheduling decision under both observability layers at once —

* the :mod:`repro.obs` span timers, giving the *per-phase* view
  (``aco.construct`` vs ``aco.pheromone_update``, scheduler-level), and
* ``cProfile``, giving the *per-function* view below the spans.

The two render into a single :class:`ProfileReport` whose ``text`` starts
with the span table and ends with the classic cProfile top-N — no separate
telemetry bookkeeping, no ``cProfile`` boilerplate in experiment code.
:func:`profile_simulation` does the same for a full pipeline run and
:func:`profile_callable` for any zero-arg callable.

Examples
--------
>>> from repro.experiments.profiling import profile_scheduling
>>> from repro.schedulers import AntColonyScheduler
>>> from repro.workloads import heterogeneous_scenario
>>> scenario = heterogeneous_scenario(20, 100, seed=0)
>>> report = profile_scheduling(AntColonyScheduler(num_ants=4, max_iterations=1), scenario)
>>> "function calls" in report.text
True

The span section names the scheduler's hot phases directly:

>>> "aco.construct" in report.text
True
>>> any(path.endswith("aco.construct") for path in report.telemetry.spans)
True

Telemetry capture restores the global switch afterwards, so profiling a
run never leaves instrumentation enabled behind your back:

>>> from repro import obs
>>> obs.is_enabled()
False
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Any, Callable

from repro import obs
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioSpec


@dataclass(frozen=True)
class ProfileReport:
    """Captured profile: span telemetry plus a rendered cProfile table.

    ``text`` is the merged human-readable report (span table first, then
    the cProfile top-N); ``telemetry`` holds the structured span/counter
    snapshot for the profiled call so tooling can aggregate or export it
    via :mod:`repro.obs.export`.
    """

    text: str
    total_calls: int
    total_time: float
    result: Any
    telemetry: "obs.TelemetrySnapshot | None" = None

    def __str__(self) -> str:
        return self.text


def profile_callable(
    fn: Callable[[], Any],
    sort: str = "cumulative",
    top: int = 25,
    telemetry: bool = True,
) -> ProfileReport:
    """Run ``fn`` under cProfile (and, by default, span telemetry).

    With ``telemetry=True`` the :mod:`repro.obs` switch is forced on for
    the duration of the call (and restored afterwards); the spans and
    counters the call emitted are isolated via snapshot diff and merged
    into the report.  Pass ``telemetry=False`` to profile the exact
    production configuration with instrumentation disabled.
    """
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    profiler = cProfile.Profile()
    snapshot: "obs.TelemetrySnapshot | None" = None
    if telemetry:
        with obs.enabled():
            before = obs.snapshot()
            profiler.enable()
            try:
                result = fn()
            finally:
                profiler.disable()
            snapshot = obs.snapshot().diff(before)
    else:
        profiler.enable()
        try:
            result = fn()
        finally:
            profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    sections = []
    if snapshot is not None and not snapshot.is_empty:
        sections.append(obs.render_telemetry(snapshot, title="telemetry"))
        sections.append("")
    sections.append(buffer.getvalue())
    return ProfileReport(
        text="\n".join(sections),
        total_calls=int(stats.total_calls),
        total_time=float(stats.total_tt),
        result=result,
        telemetry=snapshot,
    )


def profile_scheduling(
    scheduler: Scheduler,
    scenario: ScenarioSpec,
    seed: int | None = 0,
    sort: str = "cumulative",
    top: int = 25,
    telemetry: bool = True,
) -> ProfileReport:
    """Profile one scheduling decision on ``scenario``.

    This is the documented "profile this scheduler" entry point: the
    returned report's span table shows where the decision spent its time
    phase by phase, and the cProfile table breaks those phases down to
    functions.  See ``docs/observability.md`` for a worked walkthrough.
    """
    context = SchedulingContext.from_scenario(scenario, seed=seed)
    return profile_callable(
        lambda: scheduler.schedule_checked(context),
        sort=sort,
        top=top,
        telemetry=telemetry,
    )


def profile_simulation(
    scheduler: Scheduler,
    scenario: ScenarioSpec,
    seed: int | None = 0,
    engine: str = "des",
    sort: str = "cumulative",
    top: int = 25,
    telemetry: bool = True,
) -> ProfileReport:
    """Profile a full (schedule + simulate + metrics) pipeline run."""
    from repro.experiments.runner import run_point

    return profile_callable(
        lambda: run_point(scenario, scheduler, seed=seed, engine=engine),  # type: ignore[arg-type]
        sort=sort,
        top=top,
        telemetry=telemetry,
    )


__all__ = ["ProfileReport", "profile_callable", "profile_scheduling", "profile_simulation"]
