"""Figure reporting: print the series a paper figure shows, save CSV.

Outputs are intentionally paper-shaped: one column per scheduler, one row
per VM-count sweep point, so the terminal output can be compared directly
against the plots in the PDF.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.compare import check_figure
from repro.analysis.tables import format_table, write_csv
from repro.experiments.figures import FigureData


def figure_rows(data: FigureData) -> list[dict[str, object]]:
    """Wide-format rows: ``num_vms`` plus one column per scheduler."""
    rows: list[dict[str, object]] = []
    for i, xv in enumerate(data.x):
        row: dict[str, object] = {data.x_key: xv}
        for name, ys in data.series.items():
            row[name] = ys[i]
        rows.append(row)
    return rows


def render_figure(data: FigureData, logy: bool = False) -> str:
    """Full text report for one figure: table + ASCII plot + shape checks."""
    parts = [
        f"== {data.experiment_id}: {data.title} ==",
        format_table(figure_rows(data)),
        "",
        ascii_plot(
            data.x,
            data.series,
            title=data.title,
            xlabel=data.xlabel,
            ylabel=data.ylabel,
            logy=logy,
        ),
    ]
    checks = check_figure(data)
    if checks:
        parts.append("")
        parts.extend(str(c) for c in checks)
    return "\n".join(parts)


def save_figure(data: FigureData, out_dir: str | Path) -> Path:
    """Write the long-format CSV for a figure; returns the file path."""
    out_dir = Path(out_dir)
    return write_csv(data.to_rows(), out_dir / f"{data.experiment_id}.csv")


def save_figure_json(data: FigureData, out_dir: str | Path) -> Path:
    """Persist a figure's aggregated series as JSON for later re-rendering."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{data.experiment_id}.json"
    path.write_text(json.dumps(data.to_json_dict(), indent=2))
    return path


def load_figure_json(path: str | Path) -> FigureData:
    """Reload a figure saved by :func:`save_figure_json`."""
    return FigureData.from_json_dict(json.loads(Path(path).read_text()))


__all__ = [
    "figure_rows",
    "render_figure",
    "save_figure",
    "save_figure_json",
    "load_figure_json",
]
