"""Sweep execution.

:func:`run_sweep` evaluates a set of schedulers over a range of VM counts
and seeds, returning flat :class:`SweepRecord` rows that the figure layer
aggregates.  The engine is selectable: the DES kernel (default, used for
the heterogeneous experiments) or the analytic fast path (used for the
paper's very large homogeneous sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Literal

from repro.cloud.fast import FastSimulation
from repro.cloud.simulation import CloudSimulation, SimulationResult
from repro.schedulers import Scheduler
from repro.workloads.spec import ScenarioSpec

Engine = Literal["des", "fast"]
ScenarioFactory = Callable[[int, int, int], ScenarioSpec]
"""(num_vms, num_cloudlets, seed) -> scenario"""


@dataclass(frozen=True)
class SweepRecord:
    """One (scheduler, scale, seed) measurement."""

    scheduler: str
    num_vms: int
    num_cloudlets: int
    seed: int
    scheduling_time: float
    makespan: float
    time_imbalance: float
    total_cost: float
    events_processed: int

    @classmethod
    def from_result(
        cls, result: SimulationResult, num_vms: int, num_cloudlets: int, seed: int
    ) -> "SweepRecord":
        return cls(
            scheduler=result.scheduler_name,
            num_vms=num_vms,
            num_cloudlets=num_cloudlets,
            seed=seed,
            scheduling_time=result.scheduling_time,
            makespan=result.makespan,
            time_imbalance=result.time_imbalance,
            total_cost=result.total_cost,
            events_processed=result.events_processed,
        )

    def metric(self, name: str) -> float:
        """Look up a metric by its figure key."""
        try:
            return float(getattr(self, name))
        except AttributeError:
            raise ValueError(f"unknown metric {name!r}") from None


def run_point(
    scenario: ScenarioSpec,
    scheduler: Scheduler,
    seed: int,
    engine: Engine = "des",
) -> SimulationResult:
    """Execute one (scenario, scheduler) cell on the chosen engine."""
    if engine == "des":
        return CloudSimulation(scenario, scheduler, seed=seed).run()
    if engine == "fast":
        return FastSimulation(scenario, scheduler, seed=seed).run()
    raise ValueError(f"unknown engine {engine!r}")


def run_sweep(
    scenario_factory: ScenarioFactory,
    scheduler_factories: dict[str, Callable[[], Scheduler]],
    vm_counts: Iterable[int],
    num_cloudlets: int,
    seeds: Iterable[int] = (0,),
    engine: Engine = "des",
    progress: Callable[[str], None] | None = None,
) -> list[SweepRecord]:
    """Run the full (scheduler × vm_count × seed) grid.

    Parameters
    ----------
    scenario_factory:
        Builds the scenario for each (num_vms, num_cloudlets, seed) cell —
        the same scenario instance is shared by all schedulers at that cell
        so they compete on identical inputs.
    scheduler_factories:
        Name → zero-arg constructor; a fresh scheduler per cell keeps
        stateful policies honest.
    progress:
        Optional callback receiving a human-readable line per cell.
    """
    records: list[SweepRecord] = []
    for num_vms in vm_counts:
        for seed in seeds:
            scenario = scenario_factory(num_vms, num_cloudlets, seed)
            for name, factory in scheduler_factories.items():
                result = run_point(scenario, factory(), seed=seed, engine=engine)
                record = SweepRecord.from_result(result, num_vms, num_cloudlets, seed)
                if record.scheduler != name:
                    raise RuntimeError(
                        f"factory {name!r} produced scheduler {record.scheduler!r}"
                    )
                records.append(record)
                if progress is not None:
                    progress(
                        f"{name:12s} vms={num_vms:<7d} seed={seed} "
                        f"makespan={record.makespan:10.2f} "
                        f"sched={record.scheduling_time * 1e3:9.2f}ms"
                    )
    return records


__all__ = ["SweepRecord", "run_sweep", "run_point", "Engine", "ScenarioFactory"]
