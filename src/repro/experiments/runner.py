"""Sweep execution.

:func:`run_sweep` evaluates a set of schedulers over a range of VM counts
and seeds, returning flat :class:`SweepRecord` rows that the figure layer
aggregates.  The engine is selectable: the DES kernel (default, used for
the heterogeneous experiments) or the analytic fast path (used for the
paper's very large homogeneous sweeps).

Sweeps parallelise over (num_vms, seed) *cells*: every cell builds its
scenario from ``scenario_factory(num_vms, num_cloudlets, seed)`` and seeds
each simulation with the cell's own sweep seed, so a cell's records depend
only on its arguments — never on execution order.  ``workers=N`` therefore
returns rows bit-identical to the serial path (modulo the wall-clock
``scheduling_time`` field).  Worker processes use the ``spawn`` start
method, which requires the factories to be picklable — module-level
functions or dataclass instances, not lambdas or closures.

Both :func:`run_point` and :func:`run_sweep` accept ``cache=`` — a
:class:`repro.cache.ResultCache` (or just a directory path) — for
incremental re-runs: each (scheduler, cell) is keyed by its manifest
fingerprint, hits replay the cold run's result bit-identically (including
its recorded wall-clock ``scheduling_time``), and only the missing cells
compute.  Under ``workers=N`` the parent resolves hits *before*
dispatching, so a warm sweep ships nothing to the pool and a partially
warm sweep ships only the missing (scheduler, cell) pairs.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Literal

from repro.cache import ResultCache, cache_key_manifest
from repro.cloud.fast import FastSimulation, StreamingResult, StreamingSimulation
from repro.cloud.simulation import CloudSimulation, SimulationResult
from repro.obs.telemetry import TELEMETRY, TelemetrySnapshot
from repro.schedulers import Scheduler
from repro.workloads.spec import ScenarioSpec

if TYPE_CHECKING:
    from repro.cloud.control import ControlConfig
    from repro.workloads.timeline import Timeline

Engine = Literal["des", "fast", "stream", "online"]
ScenarioFactory = Callable[[int, int, int], ScenarioSpec]
"""(num_vms, num_cloudlets, seed) -> scenario (a ScenarioSpec, or a
ScenarioChunks when the factory is a chunked family)"""


def _as_stream(scenario, chunk_size: int | None):
    """Coerce a scenario to a ScenarioChunks for the streaming engine.

    A :class:`~repro.workloads.streaming.ScenarioChunks` passes through
    (re-chunked if ``chunk_size`` disagrees); a materialised
    :class:`~repro.workloads.spec.ScenarioSpec` is wrapped — its columns
    already exist in memory, so wrapping costs nothing extra and small
    differential tests can stream the exact same workload.
    """
    from repro.workloads.streaming import DEFAULT_CHUNK_SIZE, ScenarioChunks

    if isinstance(scenario, ScenarioChunks):
        if chunk_size is not None and scenario.chunk_size != chunk_size:
            return scenario.with_chunk_size(chunk_size)
        return scenario
    return ScenarioChunks.from_spec(
        scenario, chunk_size=chunk_size or DEFAULT_CHUNK_SIZE
    )


@dataclass(frozen=True)
class SweepRecord:
    """One (scheduler, scale, seed) measurement."""

    scheduler: str
    num_vms: int
    num_cloudlets: int
    seed: int
    scheduling_time: float
    makespan: float
    time_imbalance: float
    total_cost: float
    events_processed: int

    @classmethod
    def from_result(
        cls,
        result: "SimulationResult | StreamingResult",
        num_vms: int,
        num_cloudlets: int,
        seed: int,
    ) -> "SweepRecord":
        return cls(
            scheduler=result.scheduler_name,
            num_vms=num_vms,
            num_cloudlets=num_cloudlets,
            seed=seed,
            scheduling_time=result.scheduling_time,
            makespan=result.makespan,
            time_imbalance=result.time_imbalance,
            total_cost=result.total_cost,
            events_processed=result.events_processed,
        )

    def metric(self, name: str) -> float:
        """Look up a metric by its figure key."""
        try:
            return float(getattr(self, name))
        except AttributeError:
            raise ValueError(f"unknown metric {name!r}") from None


def run_point(
    scenario: ScenarioSpec,
    scheduler: Scheduler,
    seed: int,
    engine: Engine = "des",
    cache: "ResultCache | str | None" = None,
    chunk_size: int | None = None,
    shards: int | None = None,
    timeline: "Timeline | None" = None,
    control: "ControlConfig | None" = None,
    standby_vms: int = 0,
) -> "SimulationResult | StreamingResult":
    """Execute one (scenario, scheduler) cell on the chosen engine.

    With ``cache`` (a :class:`repro.cache.ResultCache` or a directory
    path), the cell is first looked up by its manifest fingerprint; a hit
    replays the stored result — bit-identical to a recomputation except
    that wall-clock fields carry the *cold* run's measured values — and a
    miss computes, stores, and returns.  The key is derived before the
    scheduler runs, so mutable scheduler state never leaks into it.

    ``engine="stream"`` runs the memory-bounded
    :class:`~repro.cloud.fast.StreamingSimulation` and returns a
    :class:`~repro.cloud.fast.StreamingResult` (per-VM aggregates, no
    per-cloudlet arrays).  ``scenario`` may then be a
    :class:`~repro.workloads.streaming.ScenarioChunks` (the paper-scale
    path — nothing is ever materialised) or a plain spec (wrapped);
    ``chunk_size`` overrides the stream's chunking and, like the chunk
    count, participates in the cache key.  Other engines ignore
    ``chunk_size`` and materialise a chunked scenario via ``to_spec()``.

    ``shards=N`` (streaming engine only; other engines reject it) splits
    the stream into at most ``N`` chunk-aligned shards executed
    data-parallel and merged exactly (see
    :class:`~repro.cloud.fast.StreamingSimulation`).  The shard count is
    deliberately *not* part of the cache key — outputs are
    shard-count-invariant, so a warm entry written by a serial run
    satisfies a ``shards=N`` request and vice versa.

    ``engine="online"`` runs :class:`~repro.cloud.online.OnlineCloudSimulation`
    — ``scheduler`` must then be an
    :class:`~repro.schedulers.online.OnlineScheduler`.  ``timeline``
    (a :class:`~repro.workloads.timeline.Timeline`), ``control``
    (a :class:`~repro.cloud.control.ControlConfig`) and ``standby_vms``
    shape that run's dynamics; all three are folded into the cache key
    (via :meth:`Timeline.to_dict`/:meth:`ControlConfig.to_dict`), so a
    cached storm cell can never be replayed for a different storm.
    """
    if engine == "stream":
        scenario = _as_stream(scenario, chunk_size)
    elif hasattr(scenario, "to_spec"):
        scenario = scenario.to_spec()
    if engine != "online" and (
        timeline is not None or control is not None or standby_vms
    ):
        raise ValueError(
            "timeline=/control=/standby_vms= require engine='online', "
            f"got engine={engine!r}"
        )
    if shards is not None and engine != "stream":
        raise ValueError(f"shards= requires engine='stream', got engine={engine!r}")
    cache = ResultCache.coerce(cache)
    key = manifest = None
    if cache is not None:
        manifest = cache_key_manifest(
            scenario, scheduler, seed, engine, **_dynamic_extras(
                timeline, control, standby_vms
            )
        )
        key = manifest.fingerprint()
        cached = cache.get(key)
        if cached is not None:
            return cached
    if engine == "des":
        result = CloudSimulation(scenario, scheduler, seed=seed).run()
    elif engine == "fast":
        result = FastSimulation(scenario, scheduler, seed=seed).run()
    elif engine == "stream":
        result = StreamingSimulation(scenario, scheduler, seed=seed, shards=shards).run()
    elif engine == "online":
        from repro.cloud.online import OnlineCloudSimulation

        result = OnlineCloudSimulation(
            scenario,
            scheduler,
            seed=seed,
            timeline=timeline,
            control=control,
            standby_vms=standby_vms,
        ).run()
    else:
        raise ValueError(f"unknown engine {engine!r}")
    if cache is not None:
        cache.put(key, result, manifest)
    return result


def _dynamic_extras(
    timeline: "Timeline | None",
    control: "ControlConfig | None",
    standby_vms: int,
) -> dict:
    """Cache-key extras for the dynamic surface.

    Only non-default values contribute, so every pre-existing (engine,
    scenario, scheduler, seed) fingerprint is unchanged — old cache
    entries stay valid.
    """
    extras: dict = {}
    if timeline is not None:
        extras["timeline"] = timeline.to_dict()
    if control is not None:
        extras["control"] = control.to_dict()
    if standby_vms:
        extras["standby_vms"] = int(standby_vms)
    return extras


def _run_cell(
    scenario_factory: ScenarioFactory,
    scheduler_factories: dict[str, Callable[[], Scheduler]],
    num_vms: int,
    num_cloudlets: int,
    seed: int,
    engine: Engine,
    cache: "ResultCache | None" = None,
    chunk_size: int | None = None,
    shards: int | None = None,
    timeline: "Timeline | None" = None,
    control: "ControlConfig | None" = None,
) -> list[SweepRecord]:
    """Execute one (num_vms, seed) cell: all schedulers on a shared scenario.

    Module-level so it can be shipped to spawn-based worker processes.  The
    scenario is built once per cell (exactly as the serial loop does), so
    every scheduler at the cell competes on identical inputs and the cell's
    records are a pure function of the arguments.  ``cache`` applies
    per-scheduler: hit schedulers replay, miss schedulers compute and are
    stored.
    """
    scenario = scenario_factory(num_vms, num_cloudlets, seed)
    if engine == "stream":
        scenario = _as_stream(scenario, chunk_size)
    records: list[SweepRecord] = []
    for name, factory in scheduler_factories.items():
        result = run_point(
            scenario,
            factory(),
            seed=seed,
            engine=engine,
            cache=cache,
            chunk_size=chunk_size,
            shards=shards,
            timeline=timeline,
            control=control,
        )
        record = SweepRecord.from_result(result, num_vms, num_cloudlets, seed)
        if record.scheduler != name:
            raise RuntimeError(
                f"factory {name!r} produced scheduler {record.scheduler!r}"
            )
        records.append(record)
    return records


def _run_cell_cache_misses(
    scenario_factory: ScenarioFactory,
    miss_factories: dict[str, Callable[[], Scheduler]],
    num_vms: int,
    num_cloudlets: int,
    seed: int,
    engine: Engine,
    cache_root: str,
    chunk_size: int | None = None,
    shards: int | None = None,
    timeline: "Timeline | None" = None,
    control: "ControlConfig | None" = None,
) -> list[SweepRecord]:
    """Worker-side runner for the cache-missing schedulers of one cell.

    The parent already resolved hits and counted the misses, so this
    computes unconditionally (no re-probe) and publishes each result into
    the shared on-disk cache — concurrent workers are safe because entry
    publication is an atomic rename.
    """
    cache = ResultCache(cache_root)
    scenario = scenario_factory(num_vms, num_cloudlets, seed)
    if engine == "stream":
        scenario = _as_stream(scenario, chunk_size)
    records: list[SweepRecord] = []
    for name, factory in miss_factories.items():
        scheduler = factory()
        manifest = cache_key_manifest(
            scenario, scheduler, seed, engine,
            **_dynamic_extras(timeline, control, 0),
        )
        result = run_point(
            scenario, scheduler, seed=seed, engine=engine, chunk_size=chunk_size,
            shards=shards, timeline=timeline, control=control,
        )
        cache.put(manifest.fingerprint(), result, manifest)
        record = SweepRecord.from_result(result, num_vms, num_cloudlets, seed)
        if record.scheduler != name:
            raise RuntimeError(
                f"factory {name!r} produced scheduler {record.scheduler!r}"
            )
        records.append(record)
    return records


def _run_with_telemetry(cell_runner, *args) -> tuple[list[SweepRecord], dict]:
    """Worker-side wrapper that ships the cell's telemetry to the parent.

    Pool processes are reused across cells, so the worker's registry is
    reset before the cell runs — the returned snapshot is exactly this
    cell's contribution, which the parent folds into its own registry.
    Record values are unaffected: telemetry never feeds back into the
    simulation, so parallel sweeps stay bit-identical to serial ones.
    """
    TELEMETRY.reset()
    TELEMETRY.enable()
    records = cell_runner(*args)
    return records, TELEMETRY.snapshot().to_dict()


def run_sweep(
    scenario_factory: ScenarioFactory,
    scheduler_factories: dict[str, Callable[[], Scheduler]],
    vm_counts: Iterable[int],
    num_cloudlets: int,
    seeds: Iterable[int] = (0,),
    engine: Engine = "des",
    progress: Callable[[str], None] | None = None,
    workers: int | None = None,
    cache: "ResultCache | str | None" = None,
    chunk_size: int | None = None,
    shards: int | None = None,
    timeline: "Timeline | None" = None,
    control: "ControlConfig | None" = None,
) -> list[SweepRecord]:
    """Run the full (scheduler × vm_count × seed) grid.

    Parameters
    ----------
    scenario_factory:
        Builds the scenario for each (num_vms, num_cloudlets, seed) cell —
        the same scenario instance is shared by all schedulers at that cell
        so they compete on identical inputs.
    scheduler_factories:
        Name → zero-arg constructor; a fresh scheduler per cell keeps
        stateful policies honest.
    progress:
        Optional callback receiving a human-readable line per cell.  Always
        invoked in the calling process, in deterministic grid order.
    workers:
        ``None``, 0 or 1 runs the grid serially in-process.  ``N >= 2``
        fans the (num_vms, seed) cells out over ``N`` spawn-based worker
        processes; both factories must then be picklable (module-level
        callables or dataclass instances — not lambdas).  Records come
        back in the same grid order as the serial path and are
        bit-identical to it except for the wall-clock ``scheduling_time``.
    cache:
        Optional :class:`repro.cache.ResultCache` (or directory path).
        Granularity is per (scheduler, cell): extending ``vm_counts``,
        adding ``seeds`` or adding a scheduler to a previously swept grid
        computes only the missing cells, and a fully warm sweep replays
        byte-equal records (wall clock included — it is the cold run's).
        With ``workers``, hits are resolved in the parent *before*
        dispatch and only the missing (scheduler, cell) pairs are shipped
        to the spawn pool; misses are published to the shared cache by the
        worker that computed them via atomic renames.
    chunk_size:
        Streaming chunk size, forwarded to the ``"stream"`` engine (other
        engines ignore it).  Streaming metrics are chunk-size-invariant,
        but the chunk geometry is part of the cache key.
    shards:
        Streaming shard count, forwarded to every cell's
        :func:`run_point` (streaming engine only).  Results are
        shard-count-invariant, so ``shards`` never enters the cache key.
        Combine with ``workers`` carefully: each sweep worker would spawn
        its own shard pool, oversubscribing small hosts.
    timeline, control:
        Dynamic-scenario surface for ``engine="online"`` (see
        :func:`run_point`); both are frozen dataclasses, so they ship to
        spawn workers unchanged and participate in every cell's cache
        key.  Other engines reject them.

    Determinism contract: each cell derives every random stream from its
    own ``seed`` argument (scenario synthesis and the per-simulation
    scheduler RNG alike), so cells are independent and neither the worker
    count nor the cache state can change a result — only how fast it
    arrives.
    """
    cache = ResultCache.coerce(cache)
    cells = [(num_vms, seed) for num_vms in vm_counts for seed in seeds]
    records: list[SweepRecord] = []

    def emit(cell_records: list[SweepRecord]) -> None:
        records.extend(cell_records)
        if progress is not None:
            for record in cell_records:
                progress(
                    f"{record.scheduler:12s} vms={record.num_vms:<7d} "
                    f"seed={record.seed} "
                    f"makespan={record.makespan:10.2f} "
                    f"sched={record.scheduling_time * 1e3:9.2f}ms"
                )

    if workers is None or workers <= 1:
        for num_vms, seed in cells:
            emit(
                _run_cell(
                    scenario_factory,
                    scheduler_factories,
                    num_vms,
                    num_cloudlets,
                    seed,
                    engine,
                    cache,
                    chunk_size,
                    shards,
                    timeline,
                    control,
                )
            )
        return records

    # Spawn (not fork) so worker state is a clean import of the code under
    # test on every platform; results are consumed in submission order to
    # keep the output indistinguishable from the serial path.
    capture_telemetry = TELEMETRY.enabled

    def submit(pool, cell_runner, *args):
        if capture_telemetry:
            return pool.submit(_run_with_telemetry, cell_runner, *args)
        return pool.submit(cell_runner, *args)

    def consume(future) -> list[SweepRecord]:
        outcome = future.result()
        if capture_telemetry:
            cell_records, snapshot_dict = outcome
            TELEMETRY.merge_snapshot(TelemetrySnapshot.from_dict(snapshot_dict))
            return cell_records
        return outcome

    ctx = multiprocessing.get_context("spawn")
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, mp_context=ctx
    ) as pool:
        if cache is None:
            futures = [
                submit(
                    pool,
                    _run_cell,
                    scenario_factory,
                    scheduler_factories,
                    num_vms,
                    num_cloudlets,
                    seed,
                    engine,
                    None,
                    chunk_size,
                    shards,
                    timeline,
                    control,
                )
                for num_vms, seed in cells
            ]
            for future in futures:
                emit(consume(future))
            return records

        # Parent-side hit resolution: probe every (scheduler, cell) key
        # up front so only the misses ever reach the spawn pool — a fully
        # warm sweep dispatches nothing.
        pending: list[tuple[dict[str, SweepRecord], list[str], object | None]] = []
        for num_vms, seed in cells:
            scenario = scenario_factory(num_vms, num_cloudlets, seed)
            if engine == "stream":
                scenario = _as_stream(scenario, chunk_size)
            hit_records: dict[str, SweepRecord] = {}
            miss_factories: dict[str, Callable[[], Scheduler]] = {}
            for name, factory in scheduler_factories.items():
                key = cache.key_for(
                    scenario, factory(), seed, engine,
                    **_dynamic_extras(timeline, control, 0),
                )
                result = cache.get(key)
                if result is None:
                    miss_factories[name] = factory
                    continue
                record = SweepRecord.from_result(result, num_vms, num_cloudlets, seed)
                if record.scheduler != name:
                    raise RuntimeError(
                        f"factory {name!r} produced scheduler {record.scheduler!r}"
                    )
                hit_records[name] = record
            future = None
            if miss_factories:
                future = submit(
                    pool,
                    _run_cell_cache_misses,
                    scenario_factory,
                    miss_factories,
                    num_vms,
                    num_cloudlets,
                    seed,
                    engine,
                    str(cache.root),
                    chunk_size,
                    shards,
                    timeline,
                    control,
                )
            pending.append((hit_records, list(miss_factories), future))

        for hit_records, miss_names, future in pending:
            computed = dict(zip(miss_names, consume(future))) if future else {}
            emit(
                [
                    hit_records.get(name) or computed[name]
                    for name in scheduler_factories
                ]
            )
    return records


__all__ = ["SweepRecord", "run_sweep", "run_point", "Engine", "ScenarioFactory"]
