"""Paper scenario constants and preset scaling.

The paper's sweeps:

* Fig. 4a / 5a — homogeneous, 1 000-9 000 VMs (step 1 000), 1 000 000
  cloudlets;
* Fig. 4b / 5b — homogeneous, 10 000-90 000 VMs (step 20 000 as plotted),
  1 000 000 cloudlets;
* Fig. 6a-6d — heterogeneous, 50-950 VMs (step 100), 1 000 cloudlets
  (Section VI-D2: "the test used 50 virtual machines and up to 1000
  Cloudlets"; the figures sweep the VM count).

Pure-Python presets:

* ``quick`` — CI-sized, seconds per figure; preserves orderings.
* ``scaled`` — 10× quick; minutes per figure; smooth curves.
* ``paper`` — the verbatim sizes above.  The homogeneous sweeps use the
  analytic fast path so they complete, but the metaheuristics' scheduling
  loops at 10^6 cloudlets take hours in CPython — provided for
  completeness, not for CI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.schedulers import Scheduler, make_scheduler


class Preset(str, enum.Enum):
    """Experiment size preset."""

    QUICK = "quick"
    SCALED = "scaled"
    PAPER = "paper"


@dataclass(frozen=True)
class SchedulerFactory:
    """Picklable zero-arg scheduler constructor.

    Sweeps parallelise by shipping the factories to spawn-based worker
    processes, so they must survive pickling — a plain dataclass holding
    the registry name and kwargs does, where the old closure would not.
    """

    scheduler_name: str
    kwargs: tuple[tuple[str, object], ...] = ()

    def __call__(self) -> Scheduler:
        return make_scheduler(self.scheduler_name, **dict(self.kwargs))


@dataclass(frozen=True)
class SweepConfig:
    """Sizes and repetitions for one figure sweep."""

    vm_counts: tuple[int, ...]
    num_cloudlets: int
    seeds: tuple[int, ...]
    #: scheduler name -> constructor kwargs (preset-specific tuning).
    scheduler_kwargs: dict[str, dict] = field(default_factory=dict)

    def make_schedulers(self, names: tuple[str, ...]) -> dict[str, Callable[[], Scheduler]]:
        """Factories for the requested schedulers with preset overrides."""
        return {
            name: SchedulerFactory(
                name, tuple(sorted(self.scheduler_kwargs.get(name, {}).items()))
            )
            for name in names
        }


#: ACO configuration for the homogeneous sweeps.  ``tabu="pass"`` is the
#: strict "visit each VM once" reading: it forces near-uniform visit counts,
#: which is what makes ACO converge to the Base Test optimum in Fig. 4
#: (without it the multinomial spread of stochastic choices never closes the
#: gap).  The colony is kept small — the homogeneous fleet is symmetric, so
#: extra ants/iterations only add scheduling time, which is exactly the
#: effect Fig. 5 documents.
_ACO_LIGHT = {"num_ants": 5, "max_iterations": 2, "tabu": "pass", "pheromone": "vm"}

_HOMOGENEOUS: dict[Preset, dict[str, SweepConfig]] = {
    Preset.QUICK: {
        "a": SweepConfig(
            vm_counts=tuple(range(100, 1000, 100)),
            num_cloudlets=10_000,
            seeds=(0,),
            scheduler_kwargs={"antcolony": _ACO_LIGHT},
        ),
        "b": SweepConfig(
            vm_counts=tuple(range(1_000, 10_000, 2_000)),
            num_cloudlets=10_000,
            seeds=(0,),
            scheduler_kwargs={"antcolony": _ACO_LIGHT},
        ),
    },
    Preset.SCALED: {
        "a": SweepConfig(
            vm_counts=tuple(range(1_000, 10_000, 1_000)),
            num_cloudlets=100_000,
            seeds=(0,),
            scheduler_kwargs={"antcolony": _ACO_LIGHT},
        ),
        "b": SweepConfig(
            vm_counts=tuple(range(10_000, 100_000, 20_000)),
            num_cloudlets=100_000,
            seeds=(0,),
            scheduler_kwargs={"antcolony": _ACO_LIGHT},
        ),
    },
    Preset.PAPER: {
        "a": SweepConfig(
            vm_counts=tuple(range(1_000, 10_000, 1_000)),
            num_cloudlets=1_000_000,
            seeds=(0,),
            scheduler_kwargs={"antcolony": _ACO_LIGHT},
        ),
        "b": SweepConfig(
            vm_counts=tuple(range(10_000, 100_000, 20_000)),
            num_cloudlets=1_000_000,
            seeds=(0,),
            scheduler_kwargs={"antcolony": _ACO_LIGHT},
        ),
    },
}

_HETEROGENEOUS: dict[Preset, SweepConfig] = {
    Preset.QUICK: SweepConfig(
        vm_counts=tuple(range(50, 1000, 200)),
        num_cloudlets=800,
        seeds=(0, 1),
        scheduler_kwargs={"antcolony": {"num_ants": 20, "max_iterations": 3}},
    ),
    Preset.SCALED: SweepConfig(
        vm_counts=tuple(range(50, 1000, 100)),
        num_cloudlets=1_000,
        seeds=(0, 1, 2),
    ),
    Preset.PAPER: SweepConfig(
        vm_counts=tuple(range(50, 1000, 100)),
        num_cloudlets=1_000,
        seeds=(0, 1, 2, 3, 4),
    ),
}


def preset_config(figure: str, preset: Preset | str) -> SweepConfig:
    """Sweep configuration for a figure id (``fig4a`` ... ``fig6d``)."""
    preset = Preset(preset)
    figure = figure.lower()
    if figure in ("fig4a", "fig5a"):
        return _HOMOGENEOUS[preset]["a"]
    if figure in ("fig4b", "fig5b"):
        return _HOMOGENEOUS[preset]["b"]
    if figure in ("fig6a", "fig6b", "fig6c", "fig6d"):
        return _HETEROGENEOUS[preset]
    raise ValueError(f"unknown figure id {figure!r}")


__all__ = ["Preset", "SchedulerFactory", "SweepConfig", "preset_config"]
