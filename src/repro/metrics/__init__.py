"""Performance metrics.

Implements the paper's four measurements (Section VI-C):

* scheduling time — wall-clock duration of the scheduler's decision,
* simulation time — makespan of the cloudlet batch (Eq. 12),
* time imbalance — ``(Tmax - Tmin) / Tavg`` of cloudlet execution times
  (Eq. 13),
* processing cost — datacenter-priced resource usage (Section VI-C4),

plus utilization/throughput helpers and summary statistics used by the
experiment harness.
"""

from repro.metrics.collector import SchedulingTimer, time_scheduling
from repro.metrics.definitions import (
    average_waiting_time,
    jain_fairness_index,
    makespan,
    processing_cost,
    throughput,
    time_imbalance,
    total_processing_cost,
    vm_load_counts,
    vm_utilization,
)
from repro.metrics.resilience import (
    RecoveryMetrics,
    makespan_degradation,
    recovery_metrics,
    storm_metrics,
)
from repro.metrics.sla import (
    SlaReport,
    lateness,
    relative_deadlines,
    sla_report,
    tardiness,
    violations,
)
from repro.metrics.stats import SummaryStats, confidence_interval, summarize

__all__ = [
    "makespan",
    "time_imbalance",
    "processing_cost",
    "total_processing_cost",
    "average_waiting_time",
    "throughput",
    "vm_load_counts",
    "vm_utilization",
    "SchedulingTimer",
    "time_scheduling",
    "SummaryStats",
    "summarize",
    "confidence_interval",
    "SlaReport",
    "lateness",
    "tardiness",
    "violations",
    "sla_report",
    "relative_deadlines",
    "jain_fairness_index",
    "RecoveryMetrics",
    "recovery_metrics",
    "makespan_degradation",
    "storm_metrics",
]
