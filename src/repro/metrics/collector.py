"""Scheduling-time measurement.

The paper's first metric is the wall-clock time a scheduler spends producing
an assignment.  :class:`SchedulingTimer` wraps ``time.perf_counter`` and is
used by the simulation façade around every ``schedule()`` call; it can also
aggregate repeated measurements for the sweep harness.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class SchedulingTimer:
    """Accumulates wall-clock timings of scheduling decisions."""

    samples: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager recording one timing sample."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.samples.append(time.perf_counter() - t0)

    @property
    def last(self) -> float:
        """Most recent sample.

        Raises
        ------
        ValueError
            If nothing has been measured yet.
        """
        if not self.samples:
            raise ValueError("no scheduling time has been measured")
        return self.samples[-1]

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no scheduling time has been measured")
        return self.total / len(self.samples)


def time_scheduling(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


__all__ = ["SchedulingTimer", "time_scheduling"]
