"""Metric definitions.

All functions accept plain numpy arrays (start/finish/exec-time vectors)
so they work identically on DES results and on the analytic fast path.
"""

from __future__ import annotations

import numpy as np


def _as_float_array(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def makespan(start_times, finish_times) -> float:
    """Simulation time (paper Eq. 12): latest finish minus earliest start.

    ``Tsim = T_maxFinishTime - T_minStartTime``
    """
    starts = _as_float_array(start_times, "start_times")
    finishes = _as_float_array(finish_times, "finish_times")
    if starts.shape != finishes.shape:
        raise ValueError("start_times and finish_times must have equal length")
    if np.any(finishes + 1e-9 < starts):
        raise ValueError("every finish time must be >= its start time")
    return float(finishes.max() - starts.min())


def time_imbalance(exec_times) -> float:
    """Degree of time imbalance (paper Eq. 13).

    ``Tim = (Tmax - Tmin) / Tavg`` over per-cloudlet execution times.
    Returns 0 for a single cloudlet (no spread).
    """
    times = _as_float_array(exec_times, "exec_times")
    if np.any(times < 0):
        raise ValueError("execution times must be non-negative")
    avg = times.mean()
    if avg <= 0:
        raise ValueError("mean execution time must be positive")
    return float((times.max() - times.min()) / avg)


def processing_cost(
    lengths,
    vm_mips,
    vm_ram,
    vm_size,
    file_sizes,
    output_sizes,
    cost_per_cpu,
    cost_per_mem,
    cost_per_storage,
    cost_per_bw,
) -> np.ndarray:
    """Per-cloudlet processing cost (Section VI-C4, used in Fig. 6d).

    All arguments are index-aligned per cloudlet (VM/datacenter attributes
    already gathered through the assignment):

    ``cost_i = cpu_i * length_i / mips_i + mem_i * ram_i
    + storage_i * size_i + bw_i * (file_i + out_i)``
    """
    lengths = _as_float_array(lengths, "lengths")
    vm_mips = _as_float_array(vm_mips, "vm_mips")
    if np.any(vm_mips <= 0):
        raise ValueError("vm_mips must be positive")
    cpu_seconds = lengths / vm_mips
    return (
        np.asarray(cost_per_cpu, dtype=float) * cpu_seconds
        + np.asarray(cost_per_mem, dtype=float) * np.asarray(vm_ram, dtype=float)
        + np.asarray(cost_per_storage, dtype=float) * np.asarray(vm_size, dtype=float)
        + np.asarray(cost_per_bw, dtype=float)
        * (np.asarray(file_sizes, dtype=float) + np.asarray(output_sizes, dtype=float))
    )


def total_processing_cost(*args, **kwargs) -> float:
    """Sum of :func:`processing_cost` over the batch."""
    return float(processing_cost(*args, **kwargs).sum())


def average_waiting_time(submission_times, start_times) -> float:
    """Mean queueing delay between submission and execution start."""
    submitted = _as_float_array(submission_times, "submission_times")
    started = _as_float_array(start_times, "start_times")
    waits = started - submitted
    if np.any(waits < -1e-9):
        raise ValueError("start times must be >= submission times")
    return float(np.maximum(waits, 0.0).mean())


def throughput(finish_times, horizon: float | None = None) -> float:
    """Cloudlets finished per unit time.

    ``horizon`` defaults to the latest finish time.
    """
    finishes = _as_float_array(finish_times, "finish_times")
    if horizon is None:
        horizon = float(finishes.max())
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    return float(finishes.size / horizon)


def vm_load_counts(assignment, num_vms: int) -> np.ndarray:
    """Number of cloudlets assigned to each VM."""
    arr = np.asarray(assignment, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= num_vms):
        raise ValueError("assignment contains out-of-range VM indices")
    return np.bincount(arr, minlength=num_vms)


def jain_fairness_index(loads) -> float:
    """Jain's fairness index over per-VM loads.

    ``J = (sum x)^2 / (n * sum x^2)`` — 1.0 when perfectly balanced,
    ``1/n`` when one VM carries everything.  A standard load-balancing
    complement to the paper's Eq. 13 imbalance.
    """
    arr = _as_float_array(loads, "loads")
    if np.any(arr < 0):
        raise ValueError("loads must be non-negative")
    total_sq = arr.sum() ** 2
    denom = arr.size * (arr**2).sum()
    if denom == 0:
        raise ValueError("at least one load must be positive")
    return float(total_sq / denom)


def vm_utilization(busy_time, horizon: float) -> np.ndarray:
    """Per-VM busy fraction over ``horizon``."""
    busy = np.asarray(busy_time, dtype=float)
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    util = busy / horizon
    if np.any(util < -1e-9) or np.any(util > 1 + 1e-6):
        raise ValueError("utilization out of [0, 1]; inconsistent inputs")
    return np.clip(util, 0.0, 1.0)


__all__ = [
    "makespan",
    "jain_fairness_index",
    "time_imbalance",
    "processing_cost",
    "total_processing_cost",
    "average_waiting_time",
    "throughput",
    "vm_load_counts",
    "vm_utilization",
]
