"""Recovery metrics: how well a run absorbed injected faults.

These reduce a (baseline run, faulted run) pair — same scenario, same
scheduler, same seed — to the quantities the chaos harness reports:

* ``makespan_degradation`` — faulted/baseline makespan ratio (1.0 = the
  faults cost nothing; the headline resilience number);
* ``mttr`` — mean seconds from a cloudlet's first bounce to its eventual
  successful finish (computed by the broker, surfaced via ``info``);
* retries / dead-lettered work / lost MI — how much effort and progress
  the faults consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # simulation.py imports metrics; keep the cycle type-only
    from repro.cloud.simulation import SimulationResult


def makespan_degradation(baseline_makespan: float, faulted_makespan: float) -> float:
    """Faulted/baseline makespan ratio; 1.0 means faults cost nothing."""
    if baseline_makespan <= 0:
        raise ValueError(f"baseline makespan must be positive, got {baseline_makespan}")
    return faulted_makespan / baseline_makespan


@dataclass(frozen=True, slots=True)
class RecoveryMetrics:
    """Reduction of one (baseline, faulted) run pair."""

    #: faulted/baseline makespan ratio (1.0 = free recovery).
    makespan_degradation: float
    #: fraction of cloudlets that eventually finished.
    completed_fraction: float
    #: resubmissions performed during recovery.
    retries: int
    #: cloudlets abandoned after exhausting their retry budget.
    dead_lettered: int
    #: MI of partial progress destroyed by crashes and cancels.
    lost_mi: float
    #: mean seconds from first bounce to successful finish (0 if no bounces).
    mttr: float
    #: batch scheduler re-invocations (0 for brokers that never reschedule).
    reschedules: int

    def summary(self) -> dict[str, float]:
        """Flat dict for reports/CSV."""
        return {
            "makespan_degradation": self.makespan_degradation,
            "completed_fraction": self.completed_fraction,
            "retries": float(self.retries),
            "dead_lettered": float(self.dead_lettered),
            "lost_mi": self.lost_mi,
            "mttr": self.mttr,
            "reschedules": float(self.reschedules),
        }


def recovery_metrics(
    baseline: SimulationResult, faulted: SimulationResult
) -> RecoveryMetrics:
    """Compare a faulted run against its fault-free baseline.

    Both results must come from the same (scenario, scheduler, seed)
    triple; the faulted run's ``info`` must carry the resilience counters
    emitted by :func:`repro.cloud.resilience.run_resilient` or
    :func:`repro.cloud.faults.run_with_failures` (missing counters default
    to zero so plain runs can be compared too).
    """
    if baseline.scenario_name != faulted.scenario_name:
        raise ValueError(
            f"scenario mismatch: {baseline.scenario_name!r} vs "
            f"{faulted.scenario_name!r}"
        )
    info = faulted.info
    dead = info.get("dead_letter", [])
    completed = info.get("completed", faulted.num_cloudlets)
    return RecoveryMetrics(
        makespan_degradation=makespan_degradation(baseline.makespan, faulted.makespan),
        completed_fraction=completed / faulted.num_cloudlets,
        retries=int(info.get("retries", 0)),
        dead_lettered=len(dead),
        lost_mi=float(info.get("lost_mi", 0.0)),
        mttr=float(info.get("mttr", 0.0)),
        reschedules=int(info.get("reschedules", 0)),
    )


__all__ = ["RecoveryMetrics", "recovery_metrics", "makespan_degradation"]
