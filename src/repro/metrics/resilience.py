"""Recovery metrics: how well a run absorbed injected faults.

These reduce a (baseline run, faulted run) pair — same scenario, same
scheduler, same seed — to the quantities the chaos harness reports:

* ``makespan_degradation`` — faulted/baseline makespan ratio (1.0 = the
  faults cost nothing; the headline resilience number);
* ``mttr`` — mean seconds from a cloudlet's first bounce to its eventual
  successful finish (computed by the broker, surfaced via ``info``);
* retries / dead-lettered work / lost MI — how much effort and progress
  the faults consumed;
* ``sla_violations`` / ``time_to_restabilize`` — closed-loop storm
  quantities (see :func:`storm_metrics`).

Edge-case contract
------------------

Degenerate inputs reduce to well-defined values instead of raising:

* no faults injected (the "faulted" run saw none): degradation ≈ 1.0,
  all counters 0, ``mttr`` 0.0 — the metrics simply report a clean run;
* no recovery observed (nothing ever bounced): ``mttr`` is 0.0 by
  definition (mean over an empty set of bounces is defined as zero);
* a degenerate baseline (zero, negative, or non-finite makespan, or an
  empty workload): ratio-valued metrics (``makespan_degradation``,
  ``completed_fraction``) are ``nan`` — "not comparable", not an error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # simulation.py imports metrics; keep the cycle type-only
    from repro.cloud.simulation import SimulationResult


def makespan_degradation(baseline_makespan: float, faulted_makespan: float) -> float:
    """Faulted/baseline makespan ratio; 1.0 means faults cost nothing.

    A degenerate baseline (non-positive or non-finite) makes the ratio
    meaningless, so it is ``nan`` per the module's edge-case contract.

    >>> makespan_degradation(10.0, 12.5)
    1.25
    >>> makespan_degradation(0.0, 12.5)
    nan
    """
    if not math.isfinite(baseline_makespan) or baseline_makespan <= 0:
        return math.nan
    return faulted_makespan / baseline_makespan


@dataclass(frozen=True, slots=True)
class RecoveryMetrics:
    """Reduction of one (baseline, faulted) run pair."""

    #: faulted/baseline makespan ratio (1.0 = free recovery; ``nan`` if
    #: the baseline is degenerate).
    makespan_degradation: float
    #: fraction of cloudlets that eventually finished (``nan`` on an
    #: empty workload).
    completed_fraction: float
    #: resubmissions performed during recovery.
    retries: int
    #: cloudlets abandoned after exhausting their retry budget.
    dead_lettered: int
    #: MI of partial progress destroyed by crashes and cancels.
    lost_mi: float
    #: mean seconds from first bounce to successful finish (0 if no bounces).
    mttr: float
    #: batch scheduler re-invocations (0 for brokers that never reschedule).
    reschedules: int
    #: cloudlets whose flow time exceeded the SLO (0 without an SLO).
    sla_violations: int = 0
    #: seconds from the first fault to the last SLO-violating finish
    #: (0.0 when nothing violated or no fault fired).
    time_to_restabilize: float = 0.0

    def summary(self) -> dict[str, float]:
        """Flat dict for reports/CSV."""
        return {
            "makespan_degradation": self.makespan_degradation,
            "completed_fraction": self.completed_fraction,
            "retries": float(self.retries),
            "dead_lettered": float(self.dead_lettered),
            "lost_mi": self.lost_mi,
            "mttr": self.mttr,
            "reschedules": float(self.reschedules),
            "sla_violations": float(self.sla_violations),
            "time_to_restabilize": self.time_to_restabilize,
        }


def recovery_metrics(
    baseline: SimulationResult, faulted: SimulationResult
) -> RecoveryMetrics:
    """Compare a faulted run against its fault-free baseline.

    Both results must come from the same (scenario, scheduler, seed)
    triple; the faulted run's ``info`` must carry the resilience counters
    emitted by :func:`repro.cloud.resilience.run_resilient` or
    :func:`repro.cloud.faults.run_with_failures` (missing counters default
    to zero so plain runs can be compared too).  Degenerate inputs follow
    the module's edge-case contract (``nan`` ratios, zero counters) rather
    than raising.
    """
    if baseline.scenario_name != faulted.scenario_name:
        raise ValueError(
            f"scenario mismatch: {baseline.scenario_name!r} vs "
            f"{faulted.scenario_name!r}"
        )
    info = faulted.info
    dead = info.get("dead_letter", [])
    completed = info.get("completed", faulted.num_cloudlets)
    completed_fraction = (
        completed / faulted.num_cloudlets if faulted.num_cloudlets else math.nan
    )
    return RecoveryMetrics(
        makespan_degradation=makespan_degradation(baseline.makespan, faulted.makespan),
        completed_fraction=completed_fraction,
        retries=int(info.get("retries", 0)),
        dead_lettered=len(dead),
        lost_mi=float(info.get("lost_mi", 0.0)),
        mttr=float(info.get("mttr", 0.0)),
        reschedules=int(info.get("reschedules", 0)),
    )


def storm_metrics(
    calm: SimulationResult,
    stormy: SimulationResult,
    sla_seconds: float | None = None,
) -> RecoveryMetrics:
    """Reduce a timeline-storm run against its calm (fault-free) twin.

    Both results come from :class:`~repro.cloud.online.OnlineCloudSimulation`
    on the *same* scenario, seed and arrival dynamics — ``calm`` ran the
    timeline with :meth:`~repro.workloads.timeline.Timeline.without_faults`,
    ``stormy`` the full timeline (with or without a control loop).  On top
    of :func:`recovery_metrics` this derives the closed-loop quantities:

    * ``sla_violations`` — cloudlets whose flow time (finish − arrival)
      exceeded ``sla_seconds`` (0 when no SLO is given);
    * ``time_to_restabilize`` — seconds from the storm's first fault
      (``info["first_fault_time"]``) to the last SLO-violating finish,
      clipped at 0.0; 0.0 when nothing violated or no fault fired.
    """
    base = recovery_metrics(calm, stormy)
    if sla_seconds is None:
        return base
    if not math.isfinite(sla_seconds) or sla_seconds <= 0:
        raise ValueError(f"sla_seconds must be positive and finite, got {sla_seconds}")
    flow = stormy.finish_times - stormy.submission_times
    violating = flow > sla_seconds
    violations = int(violating.sum())
    first_fault = float(stormy.info.get("first_fault_time", math.nan))
    restabilize = 0.0
    if violations and math.isfinite(first_fault):
        restabilize = max(0.0, float(stormy.finish_times[violating].max()) - first_fault)
    return RecoveryMetrics(
        makespan_degradation=base.makespan_degradation,
        completed_fraction=base.completed_fraction,
        retries=base.retries,
        dead_lettered=base.dead_lettered,
        lost_mi=base.lost_mi,
        mttr=base.mttr,
        reschedules=base.reschedules,
        sla_violations=violations,
        time_to_restabilize=restabilize,
    )


__all__ = [
    "RecoveryMetrics",
    "recovery_metrics",
    "makespan_degradation",
    "storm_metrics",
]
