"""SLA / deadline metrics.

The paper's introduction names "deadlines for hard real-time applications"
and "SLA agreements" as the demands schedulers must absorb; these helpers
quantify them for a finished batch: violation counts/rates, lateness and
tardiness aggregates.

Deadlines are absolute simulation times (index-aligned with finish times);
``inf`` means "no deadline" and never violates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _aligned(finish_times, deadlines) -> tuple[np.ndarray, np.ndarray]:
    finish = np.asarray(finish_times, dtype=float)
    deadline = np.asarray(deadlines, dtype=float)
    if finish.ndim != 1 or finish.size == 0:
        raise ValueError("finish_times must be a non-empty 1-D sequence")
    if finish.shape != deadline.shape:
        raise ValueError("finish_times and deadlines must be index-aligned")
    return finish, deadline


def lateness(finish_times, deadlines) -> np.ndarray:
    """Signed per-task ``finish - deadline`` (negative = early)."""
    finish, deadline = _aligned(finish_times, deadlines)
    return finish - deadline


def tardiness(finish_times, deadlines) -> np.ndarray:
    """Per-task ``max(0, finish - deadline)``."""
    return np.maximum(lateness(finish_times, deadlines), 0.0)


def violations(finish_times, deadlines, tolerance: float = 1e-9) -> np.ndarray:
    """Boolean per-task deadline-missed vector."""
    return lateness(finish_times, deadlines) > tolerance


@dataclass(frozen=True, slots=True)
class SlaReport:
    """Aggregate SLA outcome of one batch."""

    total: int
    violated: int
    violation_rate: float
    mean_tardiness: float
    max_tardiness: float

    def __str__(self) -> str:
        return (
            f"{self.violated}/{self.total} deadlines missed "
            f"({self.violation_rate:.1%}); mean tardiness "
            f"{self.mean_tardiness:.3g}s, max {self.max_tardiness:.3g}s"
        )


def sla_report(finish_times, deadlines) -> SlaReport:
    """Summarise deadline compliance for a batch."""
    tardy = tardiness(finish_times, deadlines)
    violated = int((tardy > 1e-9).sum())
    constrained = np.isfinite(np.asarray(deadlines, dtype=float))
    total = int(constrained.sum())
    return SlaReport(
        total=total,
        violated=violated,
        violation_rate=violated / total if total else 0.0,
        mean_tardiness=float(tardy[constrained].mean()) if total else 0.0,
        max_tardiness=float(tardy.max()) if tardy.size else 0.0,
    )


def relative_deadlines(
    lengths, vm_mean_mips: float, slack_factor: float, arrival_times=None
) -> np.ndarray:
    """Synthesize deadlines: ``arrival + slack_factor * length / mean_mips``.

    A slack factor of 1 demands mean-speed immediate execution; realistic
    studies use 2-10.
    """
    lengths = np.asarray(lengths, dtype=float)
    if vm_mean_mips <= 0:
        raise ValueError(f"vm_mean_mips must be positive, got {vm_mean_mips}")
    if slack_factor <= 0:
        raise ValueError(f"slack_factor must be positive, got {slack_factor}")
    base = np.zeros_like(lengths) if arrival_times is None else np.asarray(
        arrival_times, dtype=float
    )
    return base + slack_factor * lengths / vm_mean_mips


__all__ = [
    "lateness",
    "tardiness",
    "violations",
    "SlaReport",
    "sla_report",
    "relative_deadlines",
]
