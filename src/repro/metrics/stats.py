"""Summary statistics for repeated experiment runs.

The sweep harness repeats each (scheduler, scale) cell over several seeds;
these helpers reduce the samples to mean / std / confidence intervals using
Student's t (scipy) so EXPERIMENTS.md can report uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True, slots=True)
class SummaryStats:
    """Mean, spread and t-based confidence half-width of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_halfwidth: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_halfwidth

    def __str__(self) -> str:
        if self.n == 1:
            return f"{self.mean:.6g}"
        return f"{self.mean:.6g} ± {self.ci_halfwidth:.2g} (n={self.n})"


def confidence_interval(samples, confidence: float = 0.95) -> float:
    """Half-width of the t-distribution confidence interval of the mean.

    Returns 0 for a single sample (no spread information).
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if arr.size == 1:
        return 0.0
    sem = arr.std(ddof=1) / np.sqrt(arr.size)
    if sem == 0:
        return 0.0
    t_crit = sps.t.ppf((1 + confidence) / 2, df=arr.size - 1)
    return float(t_crit * sem)


def summarize(samples, confidence: float = 0.95) -> SummaryStats:
    """Reduce a sample vector to :class:`SummaryStats`."""
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_halfwidth=confidence_interval(arr, confidence),
    )


__all__ = ["SummaryStats", "summarize", "confidence_interval"]
