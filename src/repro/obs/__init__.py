"""Observability layer: structured telemetry, run manifests, exporters.

Three pieces, documented in depth in ``docs/observability.md``:

* :mod:`repro.obs.telemetry` — hierarchical span timers plus typed
  counters/gauges behind a single global switch (:data:`TELEMETRY`).
  Near-zero cost while disabled, so instrumentation stays compiled into
  the hot paths permanently.
* :mod:`repro.obs.manifest` — :class:`RunManifest` provenance records
  (seeds, scenario, scheduler config, package + host info) attached to
  every simulation result and sweep artifact.
* :mod:`repro.obs.export` — JSONL/CSV exporters and the plain-text
  renderer behind ``python -m repro.experiments report``.

Example::

    >>> from repro import obs
    >>> obs.reset()
    >>> with obs.enabled():
    ...     with obs.span("demo.phase"):
    ...         obs.count("demo.items", 5)
    >>> snap = obs.snapshot()
    >>> snap.spans["demo.phase"].count, snap.counters["demo.items"]
    (1, 5)
"""

from repro.obs.export import (
    read_telemetry_jsonl,
    render_manifest,
    render_telemetry,
    write_telemetry_csv,
    write_telemetry_jsonl,
)
from repro.obs.manifest import RunManifest, capture_manifest
from repro.obs.telemetry import (
    TELEMETRY,
    SpanStat,
    Telemetry,
    TelemetrySnapshot,
    count,
    disable,
    enable,
    enabled,
    gauge,
    is_enabled,
    reset,
    snapshot,
    span,
)

__all__ = [
    "TELEMETRY",
    "SpanStat",
    "Telemetry",
    "TelemetrySnapshot",
    "RunManifest",
    "capture_manifest",
    "span",
    "count",
    "gauge",
    "enable",
    "disable",
    "is_enabled",
    "enabled",
    "snapshot",
    "reset",
    "write_telemetry_jsonl",
    "read_telemetry_jsonl",
    "write_telemetry_csv",
    "render_telemetry",
    "render_manifest",
]
