"""Telemetry exporters: JSONL and CSV writers, readers, and a text renderer.

JSONL is the canonical artifact format: one JSON object per line with a
``"kind"`` discriminator (``manifest`` / ``span`` / ``counter`` /
``gauge``), so files stream, concatenate and grep cleanly.  CSV is a
flat convenience export for spreadsheets.  :func:`render_telemetry`
produces the human-readable per-phase timing table used by the
``python -m repro.experiments report`` subcommand and by
:func:`repro.experiments.profiling.profile_callable`.

Example::

    >>> from repro.obs.export import render_telemetry
    >>> from repro.obs.telemetry import SpanStat, TelemetrySnapshot
    >>> snap = TelemetrySnapshot(
    ...     spans={"run": SpanStat(1, 2.0), "run/eval": SpanStat(10, 1.5)},
    ...     counters={"kernel.evaluations": 10},
    ... )
    >>> print(render_telemetry(snap))  # doctest: +ELLIPSIS
    span                                        calls      total_s      mean_ms
    ------------------------------------------------------------------------
    run                                             1     2.000000     2000.000
      eval                                         10     1.500000      150.000
    <BLANKLINE>
    counter                                            value
    --------------------------------------------------------
    kernel.evaluations                                    10
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.obs.manifest import RunManifest
from repro.obs.telemetry import SpanStat, TelemetrySnapshot

__all__ = [
    "write_telemetry_jsonl",
    "read_telemetry_jsonl",
    "write_telemetry_csv",
    "render_telemetry",
    "render_manifest",
]


def write_telemetry_jsonl(
    path: str | Path,
    snapshot: TelemetrySnapshot,
    manifest: RunManifest | None = None,
) -> Path:
    """Write a snapshot (and optional manifest) as one JSON object per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines: list[str] = []
    if manifest is not None:
        lines.append(json.dumps({"kind": "manifest", **manifest.to_dict()}))
    for name, stat in sorted(snapshot.spans.items()):
        lines.append(
            json.dumps(
                {
                    "kind": "span",
                    "name": name,
                    "count": stat.count,
                    "total_s": stat.total_s,
                }
            )
        )
    for name, value in sorted(snapshot.counters.items()):
        lines.append(json.dumps({"kind": "counter", "name": name, "value": value}))
    for name, value in sorted(snapshot.gauges.items()):
        lines.append(json.dumps({"kind": "gauge", "name": name, "value": value}))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_telemetry_jsonl(
    path: str | Path,
) -> tuple[TelemetrySnapshot, RunManifest | None]:
    """Read a file written by :func:`write_telemetry_jsonl`."""
    spans: dict[str, SpanStat] = {}
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    manifest: RunManifest | None = None
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if kind == "manifest":
            manifest = RunManifest.from_dict(record)
        elif kind == "span":
            spans[record["name"]] = SpanStat(
                int(record["count"]), float(record["total_s"])
            )
        elif kind == "counter":
            counters[record["name"]] = int(record["value"])
        elif kind == "gauge":
            gauges[record["name"]] = float(record["value"])
        else:
            raise ValueError(f"unknown telemetry record kind: {kind!r}")
    return TelemetrySnapshot(spans, counters, gauges), manifest


def write_telemetry_csv(path: str | Path, snapshot: TelemetrySnapshot) -> Path:
    """Flat CSV export: kind,name,count,total_s,value."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", "name", "count", "total_s", "value"])
        for name, stat in sorted(snapshot.spans.items()):
            writer.writerow(["span", name, stat.count, f"{stat.total_s:.9f}", ""])
        for name, value in sorted(snapshot.counters.items()):
            writer.writerow(["counter", name, "", "", value])
        for name, value in sorted(snapshot.gauges.items()):
            writer.writerow(["gauge", name, "", "", value])
    return path


def _indented_span_rows(spans: dict[str, SpanStat]) -> Iterable[tuple[str, SpanStat]]:
    """Span rows sorted by path, labels indented by hierarchy depth."""
    for path in sorted(spans):
        depth = path.count("/")
        label = path.rsplit("/", 1)[-1] if depth else path
        yield "  " * depth + label, spans[path]


def render_telemetry(snapshot: TelemetrySnapshot, title: str | None = None) -> str:
    """Per-phase timing table plus counter/gauge summary, as plain text."""
    lines: list[str] = []
    if title:
        lines += [title, "=" * len(title), ""]
    if snapshot.is_empty:
        lines.append("(no telemetry recorded)")
        return "\n".join(lines)
    if snapshot.spans:
        lines.append(f"{'span':<40} {'calls':>8} {'total_s':>12} {'mean_ms':>12}")
        lines.append("-" * 72)
        for label, stat in _indented_span_rows(snapshot.spans):
            lines.append(
                f"{label:<40} {stat.count:>8} {stat.total_s:>12.6f} "
                f"{stat.mean_s * 1e3:>12.3f}"
            )
    if snapshot.counters:
        if snapshot.spans:
            lines.append("")
        lines.append(f"{'counter':<46} {'value':>9}")
        lines.append("-" * 56)
        for name, value in sorted(snapshot.counters.items()):
            lines.append(f"{name:<46} {value:>9}")
    if snapshot.gauges:
        lines.append("")
        lines.append(f"{'gauge':<46} {'value':>9}")
        lines.append("-" * 56)
        for name, value in sorted(snapshot.gauges.items()):
            lines.append(f"{name:<46} {value:>9.4g}")
    return "\n".join(lines)


def render_manifest(manifest: RunManifest) -> str:
    """Compact key/value rendering of a manifest for report output."""
    lines = ["manifest", "-" * 8]
    data = manifest.to_dict()
    for key in (
        "package_version",
        "python_version",
        "numpy_version",
        "platform",
        "hostname",
        "seed",
        "engine",
        "captured_at",
    ):
        value = data.get(key)
        if value is not None:
            lines.append(f"  {key}: {value}")
    for key in ("scenario", "scheduler", "extra"):
        value = data.get(key)
        if value:
            lines.append(f"  {key}: {json.dumps(value, sort_keys=True)}")
    return "\n".join(lines)
