"""Run manifests: everything needed to reproduce a result from its artifact.

A :class:`RunManifest` captures the four inputs that determine a run —
scenario, scheduler configuration, seed and engine — plus the software
environment (package/python/numpy versions, platform, hostname).  The
simulation façades attach one to every ``SimulationResult.info`` under
the ``"manifest"`` key, and sweep artifacts written by the CLI carry one
per figure, so any number in a report can be traced back to the exact
configuration that produced it.

Manifests are deterministic by default: ``captured_at`` stays ``None``
unless a caller opts in with ``timestamp=True``.  This keeps results
bit-comparable across reruns and across serial/parallel sweep paths —
the golden-assignment and zero-fault reproduction suites rely on it.

Example::

    >>> from repro.obs.manifest import RunManifest
    >>> m = RunManifest.from_dict({"seed": 7, "engine": "fast"})
    >>> m.seed, m.engine
    (7, 'fast')
    >>> RunManifest.from_dict(m.to_dict()) == m
    True
"""

from __future__ import annotations

import platform as _platform
import socket
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from typing import Any, Mapping

import numpy as np

from repro._version import __version__

__all__ = ["RunManifest", "capture_manifest"]

#: Types allowed verbatim inside manifest parameter dicts.
_JSON_SCALARS = (str, int, float, bool, type(None))


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of a config value to a JSON-safe form."""
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return None


def scheduler_params(scheduler: Any) -> dict[str, Any]:
    """JSON-safe public constructor parameters of a scheduler instance.

    Pulls everything out of ``vars(scheduler)`` that survives the
    JSON-safety filter; private attributes (leading underscore) and
    non-serialisable state (arrays, kernels) are dropped.
    """
    params: dict[str, Any] = {}
    for key, value in sorted(vars(scheduler).items()):
        if key.startswith("_"):
            continue
        safe = _json_safe(value)
        if safe is not None or value is None:
            params[key] = safe
    return params


@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one scheduling run or sweep artifact.

    All fields are JSON scalars or plain dicts, so ``to_dict`` output can
    be embedded directly in ``SimulationResult.info`` and survive the
    result's JSON save/load path.
    """

    package_version: str = __version__
    python_version: str = field(
        default_factory=lambda: _platform.python_version()
    )
    numpy_version: str = np.__version__
    platform: str = field(default_factory=_platform.platform)
    hostname: str = field(default_factory=socket.gethostname)
    seed: int | None = None
    engine: str | None = None
    scenario: dict[str, Any] | None = None
    scheduler: dict[str, Any] | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    #: ISO-8601 UTC timestamp; ``None`` (the default) keeps runs
    #: bit-comparable.  Only CLI-written sweep artifacts stamp it.
    captured_at: str | None = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunManifest):
            return NotImplemented
        return asdict(self) == asdict(other)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def capture_manifest(
    *,
    scenario: Any = None,
    scheduler: Any = None,
    seed: int | None = None,
    engine: str | None = None,
    timestamp: bool = False,
    **extra: Any,
) -> RunManifest:
    """Build a :class:`RunManifest` for the given run inputs.

    ``scenario`` may be a :class:`~repro.workloads.spec.ScenarioSpec` (its
    name, sizes and generation seed are summarised) and ``scheduler`` any
    scheduler instance (its name and JSON-safe constructor parameters are
    recorded via :func:`scheduler_params`).  Extra keyword arguments land
    in :attr:`RunManifest.extra`.

    ``timestamp=True`` stamps :attr:`RunManifest.captured_at` with the
    current UTC time; leave it off anywhere determinism matters.
    """
    scenario_summary = None
    if scenario is not None:
        scenario_summary = {
            "name": scenario.name,
            "num_vms": len(scenario.vms),
            "num_cloudlets": len(scenario.cloudlets),
            "num_datacenters": len(scenario.datacenters),
            "seed": scenario.seed,
        }
    scheduler_summary = None
    if scheduler is not None:
        scheduler_summary = {
            "name": getattr(scheduler, "name", type(scheduler).__name__),
            "class": type(scheduler).__name__,
            "params": scheduler_params(scheduler),
        }
    return RunManifest(
        seed=seed,
        engine=engine,
        scenario=scenario_summary,
        scheduler=scheduler_summary,
        extra={k: _json_safe(v) for k, v in extra.items()},
        captured_at=(
            datetime.now(timezone.utc).isoformat(timespec="seconds")
            if timestamp
            else None
        ),
    )
