"""Run manifests: everything needed to reproduce a result from its artifact.

A :class:`RunManifest` captures the four inputs that determine a run —
scenario, scheduler configuration, seed and engine — plus the software
environment (package/python/numpy versions, platform, hostname).  The
simulation façades attach one to every ``SimulationResult.info`` under
the ``"manifest"`` key, and sweep artifacts written by the CLI carry one
per figure, so any number in a report can be traced back to the exact
configuration that produced it.

Manifests are deterministic by default: ``captured_at`` stays ``None``
unless a caller opts in with ``timestamp=True``.  This keeps results
bit-comparable across reruns and across serial/parallel sweep paths —
the golden-assignment and zero-fault reproduction suites rely on it.

Manifests also carry the repository's content-addressing scheme:
:meth:`RunManifest.fingerprint` reduces the fields that determine a
run's *outputs* (scenario spec, scheduler params, seed, engine, package
version) to a stable SHA-256 hex digest.  Host identity, interpreter /
numpy versions, platform and timestamps are deliberately excluded, so
the same experiment fingerprints identically on every machine — this is
the key the :mod:`repro.cache` result store is addressed by.

Example::

    >>> from repro.obs.manifest import RunManifest
    >>> m = RunManifest.from_dict({"seed": 7, "engine": "fast"})
    >>> m.seed, m.engine
    (7, 'fast')
    >>> RunManifest.from_dict(m.to_dict()) == m
    True

Fingerprints ignore where and when the manifest was captured::

    >>> a = RunManifest(hostname="alpha", platform="Linux", seed=7)
    >>> b = RunManifest(hostname="beta", platform="Darwin", seed=7)
    >>> a.fingerprint() == b.fingerprint()
    True
    >>> a.fingerprint() == RunManifest(hostname="alpha", seed=8).fingerprint()
    False
    >>> len(a.fingerprint())
    64
"""

from __future__ import annotations

import hashlib
import json
import platform as _platform
import socket
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from typing import Any, Mapping

import numpy as np

from repro._version import __version__

__all__ = ["RunManifest", "capture_manifest", "FINGERPRINT_FIELDS"]

#: Manifest fields that determine a run's outputs and therefore feed the
#: fingerprint.  Everything else (host, interpreter, numpy, platform,
#: timestamp) is provenance about *where* a run happened, not *what* it
#: computes, and is excluded so fingerprints are portable across machines.
FINGERPRINT_FIELDS = (
    "package_version",
    "seed",
    "engine",
    "scenario",
    "scheduler",
    "extra",
)

#: Types allowed verbatim inside manifest parameter dicts.
_JSON_SCALARS = (str, int, float, bool, type(None))


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of a config value to a JSON-safe form."""
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return None


def scheduler_params(scheduler: Any) -> dict[str, Any]:
    """JSON-safe public constructor parameters of a scheduler instance.

    Pulls everything out of ``vars(scheduler)`` that survives the
    JSON-safety filter; private attributes (leading underscore) and
    non-serialisable state (arrays, kernels) are dropped.
    """
    params: dict[str, Any] = {}
    for key, value in sorted(vars(scheduler).items()):
        if key.startswith("_"):
            continue
        safe = _json_safe(value)
        if safe is not None or value is None:
            params[key] = safe
    return params


@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one scheduling run or sweep artifact.

    All fields are JSON scalars or plain dicts, so ``to_dict`` output can
    be embedded directly in ``SimulationResult.info`` and survive the
    result's JSON save/load path.
    """

    package_version: str = __version__
    python_version: str = field(
        default_factory=lambda: _platform.python_version()
    )
    numpy_version: str = np.__version__
    platform: str = field(default_factory=_platform.platform)
    hostname: str = field(default_factory=socket.gethostname)
    seed: int | None = None
    engine: str | None = None
    scenario: dict[str, Any] | None = None
    scheduler: dict[str, Any] | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    #: ISO-8601 UTC timestamp; ``None`` (the default) keeps runs
    #: bit-comparable.  Only CLI-written sweep artifacts stamp it.
    captured_at: str | None = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunManifest):
            return NotImplemented
        return asdict(self) == asdict(other)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    def fingerprint(self) -> str:
        """Stable SHA-256 hex digest of the run-determining fields.

        Hashes the canonical (sorted-key, compact) JSON encoding of
        :data:`FINGERPRINT_FIELDS` only — scenario spec, scheduler
        params, seed, engine and package version.  Hostname, platform,
        interpreter/numpy versions and ``captured_at`` never contribute,
        so two manifests of the same experiment agree across machines
        and reruns.  This is the content-address used by
        :class:`repro.cache.ResultCache`.
        """
        payload = {name: getattr(self, name) for name in FINGERPRINT_FIELDS}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def capture_manifest(
    *,
    scenario: Any = None,
    scheduler: Any = None,
    seed: int | None = None,
    engine: str | None = None,
    timestamp: bool = False,
    **extra: Any,
) -> RunManifest:
    """Build a :class:`RunManifest` for the given run inputs.

    ``scenario`` may be a :class:`~repro.workloads.spec.ScenarioSpec` (its
    name, sizes and generation seed are summarised) and ``scheduler`` any
    scheduler instance (its name and JSON-safe constructor parameters are
    recorded via :func:`scheduler_params`).  Extra keyword arguments land
    in :attr:`RunManifest.extra`.

    ``timestamp=True`` stamps :attr:`RunManifest.captured_at` with the
    current UTC time; leave it off anywhere determinism matters.
    """
    scenario_summary = None
    if scenario is not None:
        if hasattr(scenario, "manifest_summary"):
            # Chunked scenarios (repro.workloads.streaming.ScenarioChunks)
            # summarise themselves without materialising the workload.
            scenario_summary = dict(scenario.manifest_summary())
        else:
            scenario_summary = {
                "name": scenario.name,
                "num_vms": len(scenario.vms),
                "num_cloudlets": len(scenario.cloudlets),
                "num_datacenters": len(scenario.datacenters),
                "seed": scenario.seed,
            }
    scheduler_summary = None
    if scheduler is not None:
        scheduler_summary = {
            "name": getattr(scheduler, "name", type(scheduler).__name__),
            "class": type(scheduler).__name__,
            "params": scheduler_params(scheduler),
        }
    return RunManifest(
        seed=seed,
        engine=engine,
        scenario=scenario_summary,
        scheduler=scheduler_summary,
        extra={k: _json_safe(v) for k, v in extra.items()},
        captured_at=(
            datetime.now(timezone.utc).isoformat(timespec="seconds")
            if timestamp
            else None
        ),
    )
