"""Low-overhead structured telemetry: hierarchical spans, counters, gauges.

The module owns a single process-global :class:`Telemetry` registry,
exposed as :data:`TELEMETRY`.  Instrumented code calls :func:`span`,
:func:`count` and :func:`gauge`; all three are near-free while telemetry
is disabled (the default):

* :func:`span` returns a shared no-op context manager singleton — no
  allocation, no clock read.
* :func:`count` / :func:`gauge` return after a single attribute check.

Hot loops that emit many counters should batch locally and flush one
``count(name, n)`` after the loop, or guard with ``TELEMETRY.enabled``
so the disabled path stays a plain attribute test.

Spans nest: entering ``span("optim.run")`` and then ``span("aco.construct")``
records the inner time under the hierarchical path
``"optim.run/aco.construct"``, so one phase's cost can be read in the
context of its caller.  Aggregation is by path — per-call events are not
retained, only ``(count, total_s)`` per path — which keeps memory constant
regardless of run length and makes snapshots cheap to merge across
worker processes.

Example::

    >>> from repro.obs import telemetry
    >>> telemetry.reset()
    >>> with telemetry.enabled():
    ...     with telemetry.span("outer"):
    ...         with telemetry.span("inner"):
    ...             telemetry.count("widgets", 3)
    >>> snap = telemetry.snapshot()
    >>> sorted(snap.spans)
    ['outer', 'outer/inner']
    >>> snap.counters["widgets"]
    3
    >>> telemetry.is_enabled()
    False
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator

__all__ = [
    "SpanStat",
    "Telemetry",
    "TelemetrySnapshot",
    "TELEMETRY",
    "span",
    "count",
    "gauge",
    "enable",
    "disable",
    "is_enabled",
    "enabled",
    "snapshot",
    "reset",
]


@dataclass
class SpanStat:
    """Aggregate timing for one span path: call count and total seconds."""

    count: int = 0
    total_s: float = 0.0

    def add(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable copy of the registry, safe to ship between processes.

    Snapshots support set-algebra over runs: :meth:`diff` isolates what a
    region of code contributed on top of an earlier snapshot, and
    :meth:`merge` folds worker-process snapshots into a parent total.
    """

    spans: dict[str, SpanStat] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not (self.spans or self.counters or self.gauges)

    def diff(self, earlier: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Activity recorded after ``earlier`` was taken (self - earlier)."""
        spans = {}
        for path, stat in self.spans.items():
            base = earlier.spans.get(path)
            delta_count = stat.count - (base.count if base else 0)
            delta_total = stat.total_s - (base.total_s if base else 0.0)
            if delta_count > 0:
                spans[path] = SpanStat(delta_count, delta_total)
        counters = {}
        for name, value in self.counters.items():
            delta = value - earlier.counters.get(name, 0)
            if delta:
                counters[name] = delta
        gauges = {
            name: value
            for name, value in self.gauges.items()
            if earlier.gauges.get(name) != value
        }
        return TelemetrySnapshot(spans, counters, gauges)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Combined totals (span/counter sums; ``other``'s gauges win)."""
        spans = {path: SpanStat(s.count, s.total_s) for path, s in self.spans.items()}
        for path, stat in other.spans.items():
            if path in spans:
                spans[path].count += stat.count
                spans[path].total_s += stat.total_s
            else:
                spans[path] = SpanStat(stat.count, stat.total_s)
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = {**self.gauges, **other.gauges}
        return TelemetrySnapshot(spans, counters, gauges)

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "spans": {
                path: {"count": stat.count, "total_s": stat.total_s}
                for path, stat in sorted(self.spans.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySnapshot":
        return cls(
            spans={
                path: SpanStat(int(entry["count"]), float(entry["total_s"]))
                for path, entry in data.get("spans", {}).items()
            },
            counters={k: int(v) for k, v in data.get("counters", {}).items()},
            gauges={k: float(v) for k, v in data.get("gauges", {}).items()},
        )


class _NullSpan:
    """Shared do-nothing context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: pushes its hierarchical path, times the body on exit."""

    __slots__ = ("_telemetry", "_name", "_path", "_t0")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._telemetry._stack
        self._path = f"{stack[-1]}/{self._name}" if stack else self._name
        stack.append(self._path)
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        elapsed = perf_counter() - self._t0
        telemetry = self._telemetry
        telemetry._stack.pop()
        stat = telemetry._spans.get(self._path)
        if stat is None:
            telemetry._spans[self._path] = stat = SpanStat()
        stat.add(elapsed)
        return False


class Telemetry:
    """Process-global registry of spans, counters and gauges.

    ``enabled`` is a plain attribute so instrumented hot paths can guard
    with a single load (``if TELEMETRY.enabled: ...``).
    """

    __slots__ = ("enabled", "_spans", "_counters", "_gauges", "_stack")

    def __init__(self) -> None:
        self.enabled = False
        self._spans: dict[str, SpanStat] = {}
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._stack: list[str] = []

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded data (the enabled flag is left unchanged)."""
        self._spans.clear()
        self._counters.clear()
        self._gauges.clear()
        self._stack.clear()

    def span(self, name: str) -> "_Span | _NullSpan":
        """Context manager timing its body under the active span path."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named monotonic counter (no-op when disabled)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value; the latest write wins."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def snapshot(self) -> TelemetrySnapshot:
        """Deep-copied view of the current totals."""
        return TelemetrySnapshot(
            spans={p: SpanStat(s.count, s.total_s) for p, s in self._spans.items()},
            counters=dict(self._counters),
            gauges=dict(self._gauges),
        )

    def merge_snapshot(self, snap: TelemetrySnapshot) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        for path, stat in snap.spans.items():
            mine = self._spans.get(path)
            if mine is None:
                self._spans[path] = SpanStat(stat.count, stat.total_s)
            else:
                mine.count += stat.count
                mine.total_s += stat.total_s
        for name, value in snap.counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        self._gauges.update(snap.gauges)


#: The process-global registry used by all instrumented repro code.
TELEMETRY = Telemetry()


def span(name: str) -> "_Span | _NullSpan":
    """Module-level shortcut for ``TELEMETRY.span``."""
    if not TELEMETRY.enabled:
        return _NULL_SPAN
    return _Span(TELEMETRY, name)


def count(name: str, n: int = 1) -> None:
    """Module-level shortcut for ``TELEMETRY.count``."""
    TELEMETRY.count(name, n)


def gauge(name: str, value: float) -> None:
    """Module-level shortcut for ``TELEMETRY.gauge``."""
    TELEMETRY.gauge(name, value)


def enable() -> None:
    TELEMETRY.enable()


def disable() -> None:
    TELEMETRY.disable()


def is_enabled() -> bool:
    return TELEMETRY.enabled


def snapshot() -> TelemetrySnapshot:
    return TELEMETRY.snapshot()


def reset() -> None:
    TELEMETRY.reset()


@contextmanager
def enabled(flag: bool = True) -> Iterator[Telemetry]:
    """Temporarily force telemetry on (or off), restoring the prior state.

    >>> from repro.obs import telemetry
    >>> telemetry.is_enabled()
    False
    >>> with telemetry.enabled():
    ...     telemetry.is_enabled()
    True
    >>> telemetry.is_enabled()
    False
    """
    previous = TELEMETRY.enabled
    TELEMETRY.enabled = flag
    try:
        yield TELEMETRY
    finally:
        TELEMETRY.enabled = previous
