"""Unified iterative-optimizer subsystem.

The metaheuristic schedulers (ACO, PSO, GA, annealing, and the hybrid's
delegates) are one algorithm family differing only in their move/variation
operator.  This package factors out the two pieces they used to hand-roll
five times over:

* :mod:`repro.optim.kernel` — :class:`FitnessKernel`, the shared fitness
  substrate: memory-capped execution-time matrix (or per-row fallback),
  per-VM load accumulators, O(1)-amortised *incremental* makespan /
  imbalance delta-evaluation for single-assignment moves
  (:class:`IncrementalLoads`), and vectorised batch evaluation for whole
  populations.
* :mod:`repro.optim.loop` — :class:`IterativeOptimizer`, the shared
  iteration driver: pluggable :class:`MoveOperator`, evaluation budget,
  early-stop / stagnation policies, and a :class:`ConvergenceTrace`
  (best-so-far fitness, evaluations, wall-clock) surfaced through
  ``SchedulingResult.info["convergence"]``.

The execution layer — the process-pool sweep runner that fans the
(scheduler × vm_count × seed) grid across workers — lives in
:mod:`repro.experiments.runner`.
"""

from repro.optim.kernel import FitnessKernel, IncrementalLoads
from repro.optim.loop import (
    Candidate,
    ConvergenceTrace,
    IterativeOptimizer,
    MoveOperator,
    OptimizationOutcome,
)

__all__ = [
    "FitnessKernel",
    "IncrementalLoads",
    "Candidate",
    "ConvergenceTrace",
    "IterativeOptimizer",
    "MoveOperator",
    "OptimizationOutcome",
]
