"""Unified iterative-optimizer subsystem.

The metaheuristic schedulers (ACO, PSO, GA, annealing, and the hybrid's
delegates) are one algorithm family differing only in their move/variation
operator.  This package factors out the two pieces they used to hand-roll
five times over:

* :mod:`repro.optim.kernel` — :class:`FitnessKernel`, the shared fitness
  substrate: memory-capped execution-time matrix (or per-row fallback),
  per-VM load accumulators, O(1)-amortised *incremental* makespan /
  imbalance delta-evaluation for single-assignment moves
  (:class:`IncrementalLoads`), and vectorised batch evaluation for whole
  populations.
* :mod:`repro.optim.loop` — :class:`IterativeOptimizer`, the shared
  iteration driver: pluggable :class:`MoveOperator`, evaluation budget,
  early-stop / stagnation policies, and a :class:`ConvergenceTrace`
  (best-so-far fitness, evaluations, wall-clock) surfaced through
  ``SchedulingResult.info["convergence"]``.

The execution layer — the process-pool sweep runner that fans the
(scheduler × vm_count × seed) grid across workers — lives in
:mod:`repro.experiments.runner`.

Examples
--------
A tiny homogeneous scenario: four 250-MI cloudlets on two 1000-MIPS
single-PE VMs, so each cloudlet runs in 0.25 s and a balanced split has
an estimated makespan of 0.5 s:

>>> import numpy as np
>>> from repro.optim import FitnessKernel, IncrementalLoads
>>> from repro.workloads import homogeneous_scenario
>>> arrays = homogeneous_scenario(2, 4, seed=0).arrays()
>>> kernel = FitnessKernel(arrays, time_model="compute")
>>> balanced = np.array([0, 0, 1, 1])
>>> kernel.makespan(balanced)
0.5

Delta evaluation follows a strict propose → commit/reject contract:
:meth:`IncrementalLoads.propose` tentatively applies one single-assignment
move and returns the candidate makespan, and the caller must resolve the
pending move before proposing the next one.  Rejecting restores the two
touched load accumulators to their exact saved values (no ``+=``/``-=``
round-trip), so loads never drift from the true sums:

>>> inc = IncrementalLoads(kernel, balanced)
>>> inc.propose(1, 1)   # move cloudlet 1 onto VM 1: three 0.25 s tasks there
0.75
>>> inc.reject()        # worse — restore the saved loads exactly
>>> inc.makespan
0.5
>>> inc.propose(3, 0)   # the symmetric move the other way
0.75
>>> inc.commit()        # accept anyway (annealing-style uphill move)
>>> inc.makespan
0.75
>>> inc.assignment.tolist()
[0, 0, 1, 0]
"""

from repro.optim.kernel import FitnessKernel, IncrementalLoads
from repro.optim.loop import (
    Candidate,
    ConvergenceTrace,
    IterativeOptimizer,
    MoveOperator,
    OptimizationOutcome,
)

__all__ = [
    "FitnessKernel",
    "IncrementalLoads",
    "Candidate",
    "ConvergenceTrace",
    "IterativeOptimizer",
    "MoveOperator",
    "OptimizationOutcome",
]
