"""Shared fitness substrate for the metaheuristic schedulers.

:class:`FitnessKernel` owns the per-(cloudlet, VM) execution-time data and
every way the optimizers evaluate it:

* the full time matrix when ``num_cloudlets * num_vms`` fits under the
  memory cap, otherwise memoised per-cloudlet rows (rows collapse to a
  handful of cache entries for homogeneous batches);
* vectorised *batch* evaluation of whole populations (one ``bincount``
  over offset indices, the PSO/GA inner loop);
* per-VM load accumulators plus :class:`IncrementalLoads`, the
  O(1)-amortised *delta* evaluator for single-assignment moves (the
  annealing inner loop).

Two time models are supported, matching what the schedulers historically
optimised:

* ``"compute"`` — ``length_i / (mips_j * pes_j)``: pure compute time, the
  PSO/GA/annealing fitness.
* ``"eq6"`` — the paper's Eq. 6 expected completion time
  ``length_i / (pes_j * mips_j) + file_size_i / bw_j``: the ACO heuristic
  distance and tour-quality measure.

Numerical contract: every evaluation path reproduces, bit for bit, the
arithmetic the schedulers used before the refactor (division layout,
``bincount`` summation order, ``max`` reductions), so golden-seed
assignments are unchanged.  In particular the ``"eq6"`` *matrix* is built
with :meth:`ScenarioArrays.exec_time_matrix` (outer product with
reciprocals) while ``"eq6"`` *rows* use
:meth:`ScenarioArrays.expected_exec_time` (direct division) — the same
pair/vm-layout split ACO has always had.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.workloads.spec import ScenarioArrays

TimeModel = Literal["compute", "eq6"]

#: default cap on ``num_cloudlets * num_vms`` cells for the full matrix
#: (one float64 matrix at 1e7 cells = 80 MB).
DEFAULT_MAX_MATRIX_CELLS = 10_000_000


class FitnessKernel:
    """Execution-time store + makespan evaluation engine for one context.

    Parameters
    ----------
    arrays:
        The scenario's vectorised view.
    time_model:
        ``"compute"`` or ``"eq6"`` (see module docstring).
    max_matrix_cells:
        Build the full time matrix only when ``num_cloudlets * num_vms``
        does not exceed this; ``0`` forces the per-row fallback.
    """

    def __init__(
        self,
        arrays: ScenarioArrays,
        time_model: TimeModel = "compute",
        max_matrix_cells: int = DEFAULT_MAX_MATRIX_CELLS,
    ) -> None:
        if time_model not in ("compute", "eq6"):
            raise ValueError(f"time_model must be 'compute' or 'eq6', got {time_model!r}")
        if max_matrix_cells < 0:
            raise ValueError(f"max_matrix_cells must be >= 0, got {max_matrix_cells}")
        self.arrays = arrays
        self.time_model = time_model
        self.max_matrix_cells = max_matrix_cells
        self.num_cloudlets = arrays.num_cloudlets
        self.num_vms = arrays.num_vms
        #: per-VM compute capacity (MIPS summed over PEs).
        self.capacity = arrays.vm_mips * arrays.vm_pes
        with np.errstate(divide="ignore"):
            self._inv_bw = np.where(arrays.vm_bw > 0, 1.0 / arrays.vm_bw, 0.0)
        self._matrix: np.ndarray | None = None
        if 0 < self.num_cloudlets * self.num_vms <= max_matrix_cells:
            if time_model == "compute":
                self._matrix = arrays.cloudlet_length[:, None] / self.capacity[None, :]
            else:
                self._matrix = arrays.exec_time_matrix()
        #: memoised rows keyed by the cloudlet characteristics that enter
        #: the time model — one entry total for homogeneous batches.
        self._row_cache: dict[tuple[float, float], np.ndarray] = {}
        #: evaluations performed through this kernel (batch rows + deltas).
        self.evaluations = 0

    # -- element / row access ----------------------------------------------------

    @property
    def matrix(self) -> np.ndarray | None:
        """Full ``(num_cloudlets, num_vms)`` time matrix, or ``None`` if capped."""
        return self._matrix

    def _row_key(self, i: int) -> tuple[float, float]:
        arr = self.arrays
        if self.time_model == "compute":
            return (float(arr.cloudlet_length[i]), 0.0)
        return (float(arr.cloudlet_length[i]), float(arr.cloudlet_file_size[i]))

    def row(self, i: int) -> np.ndarray:
        """Per-VM time row for cloudlet ``i`` (matrix slice or memoised)."""
        if self._matrix is not None:
            if _TEL.enabled:
                _TEL.count("kernel.rows_requested")
                _TEL.count("kernel.rows_memoised")
            return self._matrix[i]
        key = self._row_key(i)
        row = self._row_cache.get(key)
        if _TEL.enabled:
            _TEL.count("kernel.rows_requested")
            _TEL.count("kernel.rows_computed" if row is None else "kernel.rows_memoised")
        if row is None:
            if self.time_model == "compute":
                row = self.arrays.cloudlet_length[i] / self.capacity
            else:
                row = self.arrays.expected_exec_time(i)
            self._row_cache[key] = row
        return row

    def time(self, i: int, j: int) -> float:
        """Time of cloudlet ``i`` on VM ``j``."""
        return float(self.row(i)[j])

    # -- whole-assignment evaluation ----------------------------------------------

    def assignment_times(self, assignment: np.ndarray) -> np.ndarray:
        """Per-cloudlet time on its assigned VM."""
        assignment = np.asarray(assignment, dtype=np.int64)
        arr = self.arrays
        if self._matrix is not None:
            return self._matrix[np.arange(self.num_cloudlets), assignment]
        times = arr.cloudlet_length / self.capacity[assignment]
        if self.time_model == "eq6":
            times = times + arr.cloudlet_file_size * self._inv_bw[assignment]
        return times

    def loads_of(self, assignment: np.ndarray) -> np.ndarray:
        """Per-VM load accumulators: summed times of the assigned cloudlets."""
        assignment = np.asarray(assignment, dtype=np.int64)
        return np.bincount(
            assignment, weights=self.assignment_times(assignment), minlength=self.num_vms
        )

    def makespan(self, assignment: np.ndarray) -> float:
        """Estimated makespan of one assignment (max VM load)."""
        self.evaluations += 1
        if _TEL.enabled:
            _TEL.count("kernel.evaluations")
        return float(self.loads_of(assignment).max())

    # -- batch (population) evaluation ---------------------------------------------

    def batch_loads(self, positions: np.ndarray) -> np.ndarray:
        """Per-member per-VM work of a ``(members, num_cloudlets)`` block.

        ``"compute"`` model returns *work in MI* (divide by :attr:`capacity`
        for time) so the PSO/GA arithmetic stays bit-identical to the
        pre-refactor implementations; ``"eq6"`` returns time directly.
        """
        positions = np.asarray(positions, dtype=np.int64)
        p, n = positions.shape
        m = self.num_vms
        offsets = (np.arange(p)[:, None] * m + positions).ravel()
        if self.time_model == "compute":
            weights = np.broadcast_to(self.arrays.cloudlet_length, (p, n)).ravel()
        else:
            if self._matrix is not None:
                weights = self._matrix[np.arange(n)[None, :], positions].ravel()
            else:
                arr = self.arrays
                weights = (
                    arr.cloudlet_length[None, :] / self.capacity[positions]
                    + arr.cloudlet_file_size[None, :] * self._inv_bw[positions]
                ).ravel()
        return np.bincount(offsets, weights=weights, minlength=p * m).reshape(p, m)

    def batch_makespans(self, positions: np.ndarray) -> np.ndarray:
        """Estimated makespan per member of a ``(members, n)`` position block."""
        positions = np.asarray(positions, dtype=np.int64)
        self.evaluations += int(positions.shape[0])
        if _TEL.enabled:
            _TEL.count("kernel.evaluations", int(positions.shape[0]))
        loads = self.batch_loads(positions)
        if self.time_model == "compute":
            return (loads / self.capacity).max(axis=1)
        return loads.max(axis=1)

    def uniform_batch_makespans(self, positions: np.ndarray) -> np.ndarray:
        """Tour quality for identical-cloudlet batches: ``(counts * d).max()``.

        Exact fast path used by ACO's homogeneous construction: when every
        cloudlet shares one time row ``d``, a member's makespan is the max
        of per-VM visit counts scaled by ``d`` — O(n) per member with no
        weighted bincount.
        """
        positions = np.asarray(positions, dtype=np.int64)
        self.evaluations += int(positions.shape[0])
        if _TEL.enabled:
            _TEL.count("kernel.evaluations", int(positions.shape[0]))
        d = self.row(0)
        lengths = np.empty(positions.shape[0])
        for a in range(positions.shape[0]):
            counts = np.bincount(positions[a], minlength=self.num_vms)
            lengths[a] = float((counts * d).max())
        return lengths

    # -- balance ------------------------------------------------------------------

    @staticmethod
    def imbalance_of_loads(loads: np.ndarray) -> float:
        """Degree of load imbalance ``(max - min) / mean`` over VM loads."""
        mean = float(loads.mean())
        if mean <= 0:
            return 0.0
        return float((loads.max() - loads.min()) / mean)


class IncrementalLoads:
    """Delta evaluation of single-assignment moves over a kernel's loads.

    Maintains the per-VM load vector, the current makespan and its argmax;
    a proposed move touches two accumulators and yields the candidate
    makespan in O(1) unless the move drains the current-max VM (probability
    ~1/num_vms for random moves), which triggers one O(num_vms) rescan —
    amortised O(1) against the full O(num_vms) recompute per move the
    schedulers used to pay.

    Protocol: :meth:`propose` tentatively applies one move and returns the
    candidate makespan; the caller then either :meth:`commit`\\ s or
    :meth:`reject`\\ s it before proposing the next.  Rejection restores
    the two saved accumulator values exactly (no ``-=``/``+=`` round-trip),
    so loads never drift from the true sums.
    """

    def __init__(self, kernel: FitnessKernel, assignment: np.ndarray) -> None:
        self.kernel = kernel
        self.assignment = np.array(assignment, dtype=np.int64)
        self.loads = kernel.loads_of(self.assignment)
        self._argmax = int(np.argmax(self.loads))
        self.makespan = float(self.loads[self._argmax])
        self._pending: tuple | None = None

    def propose(self, i: int, new_vm: int) -> float | None:
        """Tentatively move cloudlet ``i`` to ``new_vm``; candidate makespan.

        Returns ``None`` for a no-op move (``new_vm`` is already the
        cloudlet's VM).  The move stays pending until :meth:`commit` or
        :meth:`reject`.
        """
        if self._pending is not None:
            raise RuntimeError("previous proposal not resolved (commit/reject first)")
        old_vm = int(self.assignment[i])
        if new_vm == old_vm:
            return None
        loads = self.loads
        saved_old = float(loads[old_vm])
        saved_new = float(loads[new_vm])
        loads[old_vm] -= self.kernel.time(i, old_vm)
        loads[new_vm] += self.kernel.time(i, new_vm)
        if old_vm == self._argmax:
            # The max VM lost load: its successor is unknown — rescan.
            cand_argmax = int(np.argmax(loads))
        elif loads[new_vm] >= loads[self._argmax]:
            cand_argmax = int(new_vm)
        else:
            cand_argmax = self._argmax
        candidate = float(loads[cand_argmax])
        self.kernel.evaluations += 1
        if _TEL.enabled:
            _TEL.count("kernel.delta_proposed")
        self._pending = (i, old_vm, new_vm, saved_old, saved_new, cand_argmax, candidate)
        return candidate

    def commit(self) -> None:
        """Accept the pending move."""
        if self._pending is None:
            raise RuntimeError("no pending proposal to commit")
        i, _, new_vm, _, _, cand_argmax, candidate = self._pending
        self.assignment[i] = new_vm
        self._argmax = cand_argmax
        self.makespan = candidate
        self._pending = None
        if _TEL.enabled:
            _TEL.count("kernel.delta_committed")

    def reject(self) -> None:
        """Undo the pending move, restoring the exact prior accumulators."""
        if self._pending is None:
            raise RuntimeError("no pending proposal to reject")
        _, old_vm, new_vm, saved_old, saved_new, _, _ = self._pending
        self.loads[old_vm] = saved_old
        self.loads[new_vm] = saved_new
        self._pending = None
        if _TEL.enabled:
            _TEL.count("kernel.delta_rejected")

    def imbalance(self) -> float:
        """Current ``(max - min) / mean`` load imbalance."""
        return FitnessKernel.imbalance_of_loads(self.loads)


__all__ = [
    "FitnessKernel",
    "IncrementalLoads",
    "TimeModel",
    "DEFAULT_MAX_MATRIX_CELLS",
]
