"""Shared iteration driver for the metaheuristic schedulers.

:class:`IterativeOptimizer` owns what every population/trajectory
optimizer used to hand-roll: the iteration loop, best-so-far bookkeeping,
the evaluation budget, early-stop/stagnation policies, and the
:class:`ConvergenceTrace` that lets benches plot convergence curves
instead of endpoints.  Algorithms plug in as :class:`MoveOperator`
implementations that produce one candidate (the iteration's best) per
step.

Determinism contract: the driver itself draws no random numbers — all
randomness flows through the generator handed to the operator — and it
updates the incumbent with a *strict* ``<`` comparison, exactly the
tie-breaking the schedulers used before the refactor.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL


@dataclass
class ConvergenceTrace:
    """Best-so-far fitness over the course of one optimization run.

    Parallel lists, one entry per recorded iteration (entry 0 is the
    state after initialization): the iteration number, the incumbent
    fitness, cumulative fitness evaluations, and cumulative wall-clock
    seconds since the run started.
    """

    iteration: list[int] = field(default_factory=list)
    best_fitness: list[float] = field(default_factory=list)
    evaluations: list[int] = field(default_factory=list)
    wall_clock_s: list[float] = field(default_factory=list)

    def record(
        self, iteration: int, best_fitness: float, evaluations: int, wall_clock_s: float
    ) -> None:
        self.iteration.append(int(iteration))
        self.best_fitness.append(float(best_fitness))
        self.evaluations.append(int(evaluations))
        self.wall_clock_s.append(float(wall_clock_s))

    def __len__(self) -> int:
        return len(self.iteration)

    def is_monotone(self) -> bool:
        """True when best-so-far fitness never increases (elitist contract)."""
        fits = self.best_fitness
        return all(b <= a for a, b in zip(fits, fits[1:]))

    def as_dict(self) -> dict[str, list]:
        """JSON/CSV-friendly form for ``SchedulingResult.info``."""
        return {
            "iteration": list(self.iteration),
            "best_fitness": list(self.best_fitness),
            "evaluations": list(self.evaluations),
            "wall_clock_s": list(self.wall_clock_s),
        }


@dataclass
class Candidate:
    """One iteration's best proposal.

    ``assignment`` may be a live view into operator state — the driver
    copies it only on improvement.  A candidate whose fitness does not
    strictly improve the incumbent may set ``assignment=None``.
    """

    assignment: np.ndarray | None
    fitness: float
    evaluations: int = 0


class MoveOperator(abc.ABC):
    """Pluggable move/variation operator driven by :class:`IterativeOptimizer`.

    Lifecycle: :meth:`initialize` once (build state, optionally evaluate an
    initial population and return the starting incumbent), then
    :meth:`step` per iteration.  ``incumbent_assignment``/``incumbent_fitness``
    carry the driver's best-so-far into the step (PSO's global best, ACO's
    elitist deposit target); they are ``None``/``inf`` until a first
    candidate lands.
    """

    @abc.abstractmethod
    def initialize(self, rng: np.random.Generator) -> Candidate | None:
        """Set up operator state; optionally return the initial incumbent."""

    @abc.abstractmethod
    def step(
        self,
        iteration: int,
        rng: np.random.Generator,
        incumbent_assignment: np.ndarray | None,
        incumbent_fitness: float,
    ) -> Candidate | None:
        """Run one iteration; return its best candidate (or ``None``)."""

    def finalize(
        self, incumbent_assignment: np.ndarray | None, incumbent_fitness: float
    ) -> tuple[np.ndarray, float]:
        """Final (assignment, fitness) — defaults to the driver's incumbent.

        Operators whose historical semantics return something other than
        the all-time best (e.g. GA's final-population argmin) override
        this.
        """
        if incumbent_assignment is None:
            raise RuntimeError("optimizer produced no candidate")
        return incumbent_assignment, incumbent_fitness

    def info(self) -> dict[str, Any]:
        """Operator-specific diagnostics merged into the outcome info."""
        return {}


@dataclass
class OptimizationOutcome:
    """Result of one :meth:`IterativeOptimizer.run`."""

    assignment: np.ndarray
    fitness: float
    iterations: int
    evaluations: int
    #: why the loop ended: "max_iterations" | "stagnation" | "budget".
    stopped: str
    trace: ConvergenceTrace | None
    info: dict[str, Any] = field(default_factory=dict)


class IterativeOptimizer:
    """Drives a :class:`MoveOperator` under shared stopping policies.

    Parameters
    ----------
    operator:
        The algorithm's move/variation operator.
    max_iterations:
        Iteration cap.
    patience:
        Stop after this many consecutive iterations without a strict
        improvement of the incumbent (``None`` disables).
    max_evaluations:
        Stop once this many fitness evaluations have been consumed
        (``None`` disables; checked between iterations).
    record_trace:
        Collect a :class:`ConvergenceTrace` (entry 0 plus one entry per
        ``record_every`` iterations and always the final iteration).
    record_every:
        Trace granularity — record every k-th iteration (caps trace size
        for move-per-iteration algorithms like annealing).
    """

    def __init__(
        self,
        operator: MoveOperator,
        max_iterations: int,
        patience: int | None = None,
        max_evaluations: int | None = None,
        record_trace: bool = True,
        record_every: int = 1,
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1 or None, got {patience}")
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError(
                f"max_evaluations must be >= 1 or None, got {max_evaluations}"
            )
        if record_every < 1:
            raise ValueError(f"record_every must be >= 1, got {record_every}")
        self.operator = operator
        self.max_iterations = max_iterations
        self.patience = patience
        self.max_evaluations = max_evaluations
        self.record_trace = record_trace
        self.record_every = record_every

    def run(self, rng: np.random.Generator) -> OptimizationOutcome:
        with _TEL.span("optim.run"):
            outcome = self._run(rng)
        if _TEL.enabled:
            # Batched after the loop so the disabled path stays counter-free
            # and the enabled path costs two dict updates per run.
            _TEL.count("optim.iterations", outcome.iterations)
            _TEL.count("optim.evaluations", outcome.evaluations)
        return outcome

    def _run(self, rng: np.random.Generator) -> OptimizationOutcome:
        op = self.operator
        t0 = time.perf_counter()
        trace = ConvergenceTrace() if self.record_trace else None

        best_assignment: np.ndarray | None = None
        best_fitness = np.inf
        evaluations = 0

        init = op.initialize(rng)
        if init is not None:
            evaluations += init.evaluations
            if init.fitness < best_fitness:
                assert init.assignment is not None
                best_assignment = np.array(init.assignment, dtype=np.int64)
                best_fitness = float(init.fitness)
        if trace is not None:
            trace.record(0, best_fitness, evaluations, time.perf_counter() - t0)

        stale = 0
        stopped = "max_iterations"
        iterations_run = 0
        for k in range(self.max_iterations):
            candidate = op.step(k, rng, best_assignment, best_fitness)
            iterations_run += 1
            improved = candidate is not None and candidate.fitness < best_fitness
            if candidate is not None:
                evaluations += candidate.evaluations
            if improved:
                assert candidate.assignment is not None
                best_assignment = np.array(candidate.assignment, dtype=np.int64)
                best_fitness = float(candidate.fitness)
                stale = 0
            else:
                stale += 1
            stopping = False
            if self.patience is not None and stale >= self.patience:
                stopped = "stagnation"
                stopping = True
            if (
                not stopping
                and self.max_evaluations is not None
                and evaluations >= self.max_evaluations
            ):
                stopped = "budget"
                stopping = True
            if trace is not None and (
                stopping or k == self.max_iterations - 1 or (k + 1) % self.record_every == 0
            ):
                trace.record(k + 1, best_fitness, evaluations, time.perf_counter() - t0)
            if stopping:
                break

        assignment, fitness = op.finalize(best_assignment, best_fitness)
        return OptimizationOutcome(
            assignment=np.asarray(assignment, dtype=np.int64),
            fitness=float(fitness),
            iterations=iterations_run,
            evaluations=evaluations,
            stopped=stopped,
            trace=trace,
            info=op.info(),
        )


__all__ = [
    "Candidate",
    "ConvergenceTrace",
    "IterativeOptimizer",
    "MoveOperator",
    "OptimizationOutcome",
]
