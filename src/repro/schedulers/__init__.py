"""Cloudlet-to-VM scheduling policies.

The paper's four algorithms:

* :class:`RoundRobinScheduler` — the "Base Test": cyclic assignment,
  CloudSim's default broker behaviour;
* :class:`AntColonyScheduler` — ACO (Section IV, Eq. 5-11, Table II);
* :class:`HoneyBeeScheduler` — HBO (Section III, Eq. 1-4, Alg. 1);
* :class:`RandomBiasedSamplingScheduler` — RBS (Section V, Alg. 3);

plus related-work baselines and extensions used by the ablation benches:
Max-Min [4], Min-Min, greedy minimum-completion-time, uniform random,
priority-based [25], discrete PSO [18], GA [6], the future-work
:class:`HybridScheduler` sketched in the paper's conclusion, and the
optimizer-kernel zoo from PAPERS.md — gravitational search
(:class:`GravitationalSearchScheduler`), hybrid binary PSOGSA
(:class:`PsoGsaScheduler`) and cuckoo-assisted symbiotic organisms search
(:class:`CuckooSosScheduler`).

``streaming`` provides chunk-at-a-time counterparts (the
:class:`StreamingScheduler` protocol) for the four paper algorithms,
bit-identical to the batch implementations; :func:`as_streaming` adapts
any batch scheduler, falling back to in-memory materialisation for the
population metaheuristics.
"""

from repro.schedulers.aco import AntColonyScheduler
from repro.schedulers.annealing import SimulatedAnnealingScheduler
from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    SchedulingResult,
    validate_assignment,
)
from repro.schedulers.classics import (
    MinimumExecutionTimeScheduler,
    OpportunisticLoadBalancingScheduler,
)
from repro.schedulers.cuckoo_sos import CuckooSosScheduler
from repro.schedulers.deadline import DeadlineAwareScheduler
from repro.schedulers.ga import GeneticAlgorithmScheduler
from repro.schedulers.greedy import GreedyMinCompletionScheduler
from repro.schedulers.gsa import GravitationalSearchScheduler
from repro.schedulers.hbo import HoneyBeeScheduler
from repro.schedulers.hybrid import HybridObjective, HybridScheduler
from repro.schedulers.maxmin import MaxMinScheduler, MinMinScheduler
from repro.schedulers.priority import PriorityCostScheduler
from repro.schedulers.pso import ParticleSwarmScheduler
from repro.schedulers.psogsa import PsoGsaScheduler
from repro.schedulers.random_assign import RandomScheduler
from repro.schedulers.rbs import RandomBiasedSamplingScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.schedulers.streaming import (
    STREAMING_SCHEDULERS,
    ChunkAssigner,
    InMemoryFallback,
    StreamingGreedy,
    StreamingHoneyBee,
    StreamingRandomBiasedSampling,
    StreamingRoundRobin,
    StreamingScheduler,
    as_streaming,
    make_streaming_scheduler,
)

#: All scheduler classes keyed by their registry name.
SCHEDULER_REGISTRY: dict[str, type[Scheduler]] = {
    cls().name: cls  # type: ignore[abstract]
    for cls in (
        RoundRobinScheduler,
        AntColonyScheduler,
        HoneyBeeScheduler,
        RandomBiasedSamplingScheduler,
        MaxMinScheduler,
        MinMinScheduler,
        GreedyMinCompletionScheduler,
        RandomScheduler,
        PriorityCostScheduler,
        ParticleSwarmScheduler,
        GeneticAlgorithmScheduler,
        DeadlineAwareScheduler,
        MinimumExecutionTimeScheduler,
        OpportunisticLoadBalancingScheduler,
        SimulatedAnnealingScheduler,
        HybridScheduler,
        GravitationalSearchScheduler,
        PsoGsaScheduler,
        CuckooSosScheduler,
    )
}

#: The four schedulers compared in the paper, in its plotting order.
PAPER_SCHEDULERS = ("antcolony", "basetest", "honeybee", "rbs")


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler from the registry by name."""
    try:
        cls = SCHEDULER_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {sorted(SCHEDULER_REGISTRY)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "Scheduler",
    "SchedulingContext",
    "SchedulingResult",
    "validate_assignment",
    "RoundRobinScheduler",
    "AntColonyScheduler",
    "HoneyBeeScheduler",
    "RandomBiasedSamplingScheduler",
    "MaxMinScheduler",
    "MinMinScheduler",
    "GreedyMinCompletionScheduler",
    "RandomScheduler",
    "PriorityCostScheduler",
    "ParticleSwarmScheduler",
    "GeneticAlgorithmScheduler",
    "DeadlineAwareScheduler",
    "MinimumExecutionTimeScheduler",
    "OpportunisticLoadBalancingScheduler",
    "SimulatedAnnealingScheduler",
    "HybridScheduler",
    "HybridObjective",
    "GravitationalSearchScheduler",
    "PsoGsaScheduler",
    "CuckooSosScheduler",
    "SCHEDULER_REGISTRY",
    "PAPER_SCHEDULERS",
    "make_scheduler",
    "StreamingScheduler",
    "ChunkAssigner",
    "StreamingRoundRobin",
    "StreamingGreedy",
    "StreamingHoneyBee",
    "StreamingRandomBiasedSampling",
    "InMemoryFallback",
    "STREAMING_SCHEDULERS",
    "make_streaming_scheduler",
    "as_streaming",
]
