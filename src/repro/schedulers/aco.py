"""Ant Colony Optimization scheduler (paper Section IV).

Ants construct complete cloudlet→VM assignments guided by pheromone and
the heuristic desirability ``η[i, j] = 1 / d[i, j]``, where ``d`` is the
Eq. 6 expected execution time::

    d[i, j] = length_i / (pes_j * mips_j) + file_size_i / bw_j

Transition probability (Eq. 5)::

    p_k(i, j) ∝ τ[i, j]^α · η[i, j]^β      over j ∈ allowed_k

Heuristic variants
------------------
``load_aware=False`` (default) uses the static Eq. 6 heuristic verbatim,
as the paper describes: ants prefer fast VMs in proportion to ``η^β`` and
the pheromone feedback (tour quality = estimated makespan) suppresses
constructions that over-stack them.  This reproduces the paper's Fig. 6
behaviour: best makespan, worst time imbalance (fast VMs absorb most
tasks, dragging the mean per-task execution time down) and the longest
scheduling time.  ``load_aware=True`` switches to the completion-time
desirability of the load-balancing ACO the paper cites (Li et al.,
reference [13]): ``η = 1 / (d[i, j] + load_k[j])`` — a strictly stronger
makespan optimiser, exercised by the ablation benches.

Tabu variants
-------------
``tabu="pass"`` enforces the strict reading of "each ant is only allowed
to visit a VM once": a VM becomes unavailable to the ant until every VM
has been used, then the tabu resets (near-uniform visit counts).  This is
what makes ACO converge to the Base Test optimum in the homogeneous
scenario (Fig. 4).  ``tabu="off"`` (default) keeps the tabu only per
decision step — the reading consistent with [13]; the heterogeneous
figures (Fig. 6) need it so the heuristic preference can express itself.

Pheromone layouts
-----------------
``pheromone="pair"`` (default) keeps the full ``τ[i, j]`` matrix of
Algorithm 2.  ``pheromone="vm"`` collapses it to a per-VM vector — the
only layout that fits in memory at the paper's homogeneous scale
(10^6 cloudlets × 10^5 VMs ⇒ 10^11 pairs), and an exactly equivalent
model whenever cloudlets are statistically identical.

Tour quality ``L_k`` (Eq. 8) is the ant's estimated makespan — the
maximum over VMs of the summed ``d`` values assigned to that VM.
Pheromone update (Eq. 7, 9-11)::

    τ ← (1 - ρ) τ                      (evaporation)
    τ[i, a_k(i)] += Q / L_k            (per-ant deposit)
    τ[i, a*(i)]  += Q / L*             (elitist deposit on global best)

Defaults follow Table II: 50 ants, α=0.01, β=0.99, ρ=0.4, Q=100.

Vectorisation: the construction loop is O(num_cloudlets) Python steps.
When every ant faces the same distribution (static heuristic, no tabu)
one cumulative sum plus a batched ``searchsorted`` draws for the whole
colony; otherwise the (ants × VMs) probability block is sampled row-wise.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.optim import Candidate, FitnessKernel, IterativeOptimizer, MoveOperator
from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    SchedulingResult,
)

#: refuse to allocate per-pair pheromone/heuristic matrices bigger than
#: this many cells (two float64 matrices at 5e7 cells ≈ 800 MB).
DEFAULT_MAX_MATRIX_CELLS = 50_000_000

TabuMode = Literal["off", "pass"]
PheromoneLayout = Literal["pair", "vm"]


class AntColonyScheduler(Scheduler):
    """ACO cloudlet scheduler.

    Parameters
    ----------
    num_ants:
        Colony size per iteration (Table II: 50).
    alpha, beta:
        Pheromone and heuristic exponents (Table II: 0.01 / 0.99).
    rho:
        Pheromone evaporation rate (Table II: 0.4).
    q:
        Deposit numerator ``Q`` (Table II: 100).
    max_iterations:
        Number of colony iterations.
    initial_pheromone:
        ``τ(0)``, the constant C of Algorithm 2.
    elitist:
        Apply the global-best deposit of Eq. 11 after each iteration.
    load_aware:
        Use the completion-time heuristic of [13] (see module docstring).
    tabu:
        ``"off"`` or ``"pass"`` (see module docstring).
    pheromone:
        ``"pair"`` (Algorithm 2 verbatim) or ``"vm"`` (memory-scalable).
    patience:
        Stop early after this many iterations without improving the best
        tour (``None`` disables early stopping).
    seed:
        Extra seed decorrelating this instance from the context stream;
        ``None`` uses the context stream as-is.
    max_matrix_cells:
        Safety cap on ``num_cloudlets * num_vms`` in ``"pair"`` layout.
    """

    def __init__(
        self,
        num_ants: int = 50,
        alpha: float = 0.01,
        beta: float = 0.99,
        rho: float = 0.4,
        q: float = 100.0,
        max_iterations: int = 5,
        initial_pheromone: float = 0.1,
        elitist: bool = True,
        load_aware: bool = False,
        tabu: TabuMode = "off",
        pheromone: PheromoneLayout = "pair",
        patience: int | None = None,
        seed: int | None = None,
        max_matrix_cells: int = DEFAULT_MAX_MATRIX_CELLS,
    ) -> None:
        if num_ants < 1:
            raise ValueError(f"num_ants must be >= 1, got {num_ants}")
        if not 0 <= rho <= 1:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        if alpha < 0 or beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if q <= 0 or initial_pheromone <= 0:
            raise ValueError("q and initial_pheromone must be positive")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if tabu not in ("off", "pass"):
            raise ValueError(f"tabu must be 'off' or 'pass', got {tabu!r}")
        if pheromone not in ("pair", "vm"):
            raise ValueError(f"pheromone must be 'pair' or 'vm', got {pheromone!r}")
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1 or None, got {patience}")
        self.num_ants = num_ants
        self.alpha = alpha
        self.beta = beta
        self.rho = rho
        self.q = q
        self.max_iterations = max_iterations
        self.initial_pheromone = initial_pheromone
        self.elitist = elitist
        self.load_aware = load_aware
        self.tabu = tabu
        self.pheromone = pheromone
        self.patience = patience
        self.seed = seed
        self.max_matrix_cells = max_matrix_cells

    @property
    def name(self) -> str:
        return "antcolony"

    # -- scheduling ----------------------------------------------------------------

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        n, m = context.num_cloudlets, context.num_vms
        if self.pheromone == "pair" and n * m > self.max_matrix_cells:
            raise ValueError(
                f"ACO per-pair pheromone matrix would need {n * m} cells "
                f"(> max_matrix_cells={self.max_matrix_cells}); use "
                "pheromone='vm' or run a scaled-down sweep"
            )
        rng = context.rng if self.seed is None else np.random.default_rng(
            [self.seed, n, m]
        )

        operator = _ColonyOperator(self, context)
        with _TEL.span("aco.schedule"):
            outcome = IterativeOptimizer(
                operator, max_iterations=self.max_iterations, patience=self.patience
            ).run(rng)
        return SchedulingResult(
            assignment=outcome.assignment,
            scheduler_name=self.name,
            info={
                "iterations": outcome.iterations,
                "best_tour_length": outcome.fitness,
                "num_ants": self.num_ants,
                "pheromone_layout": self.pheromone,
                "evaluations": outcome.evaluations,
                "stopped": outcome.stopped,
                "convergence": outcome.trace.as_dict() if outcome.trace else None,
            },
        )


class _ColonyOperator(MoveOperator):
    """One colony iteration (construction + pheromone feedback) per step.

    The pheromone deposit for iteration ``k`` uses the incumbent best
    *after* iteration ``k`` was scored, so it is applied lazily at the
    start of step ``k + 1`` — the same evaporation/deposit sequence as the
    historical loop (whose final-iteration deposit was unobservable).
    """

    def __init__(self, cfg: AntColonyScheduler, context: SchedulingContext) -> None:
        self.cfg = cfg
        self.context = context

    def initialize(self, rng: np.random.Generator) -> None:
        cfg = self.cfg
        kernel = FitnessKernel(
            self.context.arrays,
            time_model="eq6",
            max_matrix_cells=cfg.max_matrix_cells if cfg.pheromone == "pair" else 0,
        )
        self.state = _ColonyState(cfg, self.context, kernel)
        self._last: tuple[np.ndarray, np.ndarray] | None = None
        return None

    def step(
        self,
        iteration: int,
        rng: np.random.Generator,
        incumbent_assignment: np.ndarray | None,
        incumbent_fitness: float,
    ) -> Candidate:
        if self._last is not None:
            with _TEL.span("aco.pheromone_update"):
                self.state.update_pheromone(
                    *self._last, incumbent_assignment, incumbent_fitness
                )
        with _TEL.span("aco.construct"):
            assignments, lengths = self.state.construct(rng)
        self._last = (assignments, lengths)
        idx = int(np.argmin(lengths))
        return Candidate(
            assignments[idx], float(lengths[idx]), evaluations=self.cfg.num_ants
        )


class _ColonyState:
    """Per-schedule working state: heuristic rows, pheromone, construction.

    Eq. 6 distances and tour-quality scoring are served by the shared
    :class:`FitnessKernel` (``"eq6"`` time model): the memory-capped
    per-pair matrix in ``pheromone="pair"`` layout, memoised per-VM rows
    otherwise.
    """

    def __init__(
        self, cfg: AntColonyScheduler, context: SchedulingContext, kernel: FitnessKernel
    ) -> None:
        self.cfg = cfg
        self.kernel = kernel
        self.arrays = context.arrays
        self.n = context.num_cloudlets
        self.m = context.num_vms
        if cfg.pheromone == "pair":
            self.tau = np.full((self.n, self.m), cfg.initial_pheromone)
            self.eta_pow = (
                None if cfg.load_aware else (1.0 / kernel.matrix) ** cfg.beta
            )
        else:
            self.tau = np.full(self.m, cfg.initial_pheromone)
            self.eta_pow = None
        #: memoised ``η^β`` rows keyed like the kernel's row cache.
        self._eta_cache: dict[tuple[float, float], np.ndarray] = {}

    # -- heuristic rows -----------------------------------------------------------

    def d_row(self, i: int) -> np.ndarray:
        """Eq. 6 row for cloudlet ``i`` (kernel matrix slice or memoised row)."""
        return self.kernel.row(i)

    def eta_pow_row(self, i: int) -> np.ndarray:
        """``η^β`` row for cloudlet ``i`` (static heuristic only)."""
        if self.eta_pow is not None:
            return self.eta_pow[i]
        key = (
            float(self.arrays.cloudlet_length[i]),
            float(self.arrays.cloudlet_file_size[i]),
        )
        row = self._eta_cache.get(key)
        if row is None:
            row = (1.0 / self.d_row(i)) ** self.cfg.beta
            self._eta_cache[key] = row
        return row

    def tau_pow_row(self, i: int, tau_pow: np.ndarray) -> np.ndarray:
        return tau_pow[i] if tau_pow.ndim == 2 else tau_pow

    # -- construction ----------------------------------------------------------------

    def _uniform_batch(self) -> bool:
        """True when every cloudlet has identical Eq. 6 characteristics."""
        arr = self.arrays
        return (
            float(np.ptp(arr.cloudlet_length)) == 0.0
            and float(np.ptp(arr.cloudlet_file_size)) == 0.0
        )

    def construct(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """One colony iteration: an assignment per ant plus tour lengths."""
        cfg = self.cfg
        n, m, ants = self.n, self.m, cfg.num_ants
        if (
            cfg.tabu == "pass"
            and not cfg.load_aware
            and self.tau.ndim == 1
            and self._uniform_batch()
        ):
            return self._construct_uniform_gumbel(rng)
        loads = np.zeros((ants, m))
        assignments = np.empty((ants, n), dtype=np.int64)
        ant_rows = np.arange(ants)
        tau_pow = self.tau ** cfg.alpha
        allowed = np.ones((ants, m), dtype=bool) if cfg.tabu == "pass" else None
        # All ants share one distribution when nothing ant-specific enters it.
        shared = allowed is None and not cfg.load_aware

        order = rng.permutation(n)
        for i in order:
            t_row = self.tau_pow_row(i, tau_pow)
            if shared:
                w1 = t_row * self.eta_pow_row(i)  # (m,)
                cum = np.cumsum(w1)
                u = rng.random(ants) * cum[-1]
                choice = np.minimum(
                    np.searchsorted(cum, u, side="right"), m - 1
                )
            else:
                d_row = self.d_row(i)
                if cfg.load_aware:
                    w = t_row * (d_row + loads) ** (-cfg.beta)  # (ants, m)
                else:
                    w = np.broadcast_to(t_row * self.eta_pow_row(i), (ants, m)).copy()
                if allowed is not None:
                    base = w[0] if cfg.load_aware is False else None
                    w = np.where(allowed, w, 0.0)
                    dead = w.sum(axis=1) <= 0
                    if dead.any():
                        # Full pass over the fleet completed: tabu resets.
                        allowed[dead] = True
                        if cfg.load_aware:
                            w[dead] = (t_row * (d_row + loads) ** (-cfg.beta))[dead]
                        else:
                            w[dead] = base
                cum = np.cumsum(w, axis=1)
                u = rng.random(ants) * cum[:, -1]
                choice = np.minimum((cum < u[:, None]).sum(axis=1), m - 1)
            assignments[:, i] = choice
            loads[ant_rows, choice] += self.d_row(i)[choice]
            if allowed is not None:
                allowed[ant_rows, choice] = False
        return assignments, loads.max(axis=1)

    def _construct_uniform_gumbel(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Exact fast path for identical-cloudlet batches under per-pass tabu.

        With a per-VM pheromone vector, a static heuristic and identical
        cloudlets, an ant's pass over the fleet is one weighted random
        permutation of the VMs (successive draws without replacement from
        fixed weights) — which the Gumbel-top-k identity samples as
        ``argsort(log w + Gumbel)`` in O(m log m).  This is what makes the
        paper's 10^6-cloudlet homogeneous sweeps runnable.
        """
        cfg = self.cfg
        n, m, ants = self.n, self.m, cfg.num_ants
        w = (self.tau ** cfg.alpha) * self.eta_pow_row(0)
        log_w = np.log(np.maximum(w, 1e-300))
        passes = -(-n // m)
        assignments = np.empty((ants, n), dtype=np.int64)
        for a in range(ants):
            slots = np.empty(passes * m, dtype=np.int64)
            for p in range(passes):
                gumbel = -np.log(-np.log(rng.random(m)))
                slots[p * m : (p + 1) * m] = np.argsort(-(log_w + gumbel))
            assignments[a] = slots[:n]
        lengths = self.kernel.uniform_batch_makespans(assignments)
        return assignments, lengths

    # -- pheromone update ---------------------------------------------------------------

    def update_pheromone(
        self,
        assignments: np.ndarray,
        lengths: np.ndarray,
        best_assignment: np.ndarray | None,
        best_length: float,
    ) -> None:
        """Evaporate and deposit (Eq. 7, 9-11) in either layout."""
        cfg = self.cfg
        n = assignments.shape[1]
        tau = self.tau
        tau *= 1.0 - cfg.rho
        deposits = cfg.q / lengths  # (ants,)
        if tau.ndim == 2:
            rows = np.tile(np.arange(n), cfg.num_ants)
            np.add.at(tau, (rows, assignments.ravel()), np.repeat(deposits, n))
            if cfg.elitist and best_assignment is not None and np.isfinite(best_length):
                tau[np.arange(n), best_assignment] += cfg.q / best_length
        else:
            np.add.at(tau, assignments.ravel(), np.repeat(deposits, n))
            if cfg.elitist and best_assignment is not None and np.isfinite(best_length):
                np.add.at(
                    tau,
                    best_assignment,
                    np.full(n, cfg.q / best_length),
                )
        np.clip(tau, 1e-12, None, out=tau)


__all__ = ["AntColonyScheduler"]
