"""Simulated annealing scheduler.

A further metaheuristic baseline (the evolutionary-computation survey the
paper cites [8] covers annealing alongside GA/PSO/ACO): start from a
balanced assignment, repeatedly move one random cloudlet to a random VM,
accept improving moves always and worsening moves with probability
``exp(-delta / T)`` under a geometric cooling schedule.

The makespan estimate is maintained incrementally (only two VM loads change
per move), so one schedule() call is O(iterations + n + m).
"""

from __future__ import annotations

import math

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class SimulatedAnnealingScheduler(Scheduler):
    """Simulated annealing over assignment vectors, minimising makespan.

    Parameters
    ----------
    iterations:
        Number of proposed moves.
    initial_temperature:
        Starting temperature, as a fraction of the initial makespan
        estimate (scale-free).
    cooling:
        Geometric cooling factor per move, in (0, 1).
    seed:
        Extra seed decorrelating this instance from the context stream.
    """

    def __init__(
        self,
        iterations: int = 5000,
        initial_temperature: float = 0.2,
        cooling: float = 0.999,
        seed: int | None = None,
    ) -> None:
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if initial_temperature <= 0:
            raise ValueError(
                f"initial_temperature must be positive, got {initial_temperature}"
            )
        if not 0 < cooling < 1:
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed

    @property
    def name(self) -> str:
        return "annealing"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        arr = context.arrays
        n, m = context.num_cloudlets, context.num_vms
        rng = context.rng if self.seed is None else np.random.default_rng(
            [self.seed, n, m]
        )
        exec_time = arr.cloudlet_length[:, None] / (
            (arr.vm_mips * arr.vm_pes)[None, :]
        ) if n * m <= 10_000_000 else None

        def exec_on(i: int, j: int) -> float:
            if exec_time is not None:
                return float(exec_time[i, j])
            return float(
                arr.cloudlet_length[i] / (arr.vm_mips[j] * arr.vm_pes[j])
            )

        # Start from round-robin (balanced counts).
        assignment = (np.arange(n, dtype=np.int64)) % m
        loads = np.zeros(m)
        for i in range(n):
            loads[assignment[i]] += exec_on(i, int(assignment[i]))
        current = float(loads.max())
        best_assignment = assignment.copy()
        best = current
        temperature = self.initial_temperature * max(current, 1e-12)

        accepted = 0
        moves_i = rng.integers(0, n, size=self.iterations)
        moves_j = rng.integers(0, m, size=self.iterations)
        uniforms = rng.random(self.iterations)
        for k in range(self.iterations):
            i = int(moves_i[k])
            new_vm = int(moves_j[k])
            old_vm = int(assignment[i])
            if new_vm == old_vm:
                temperature *= self.cooling
                continue
            loads[old_vm] -= exec_on(i, old_vm)
            loads[new_vm] += exec_on(i, new_vm)
            candidate = float(loads.max())
            delta = candidate - current
            if delta <= 0 or uniforms[k] < math.exp(-delta / max(temperature, 1e-300)):
                assignment[i] = new_vm
                current = candidate
                accepted += 1
                if current < best:
                    best = current
                    best_assignment = assignment.copy()
            else:
                loads[old_vm] += exec_on(i, old_vm)
                loads[new_vm] -= exec_on(i, new_vm)
            temperature *= self.cooling

        return SchedulingResult(
            assignment=best_assignment,
            scheduler_name=self.name,
            info={
                "best_makespan_estimate": best,
                "accepted_moves": accepted,
                "iterations": self.iterations,
            },
        )


__all__ = ["SimulatedAnnealingScheduler"]
