"""Simulated annealing scheduler.

A further metaheuristic baseline (the evolutionary-computation survey the
paper cites [8] covers annealing alongside GA/PSO/ACO): start from a
balanced assignment, repeatedly move one random cloudlet to a random VM,
accept improving moves always and worsening moves with probability
``exp(-delta / T)`` under a geometric cooling schedule.

The inner loop runs on the shared optimizer stack: the move is scored by
:class:`repro.optim.FitnessKernel` delta-evaluation (O(1) amortised — only
the two touched VM accumulators change per move) and the loop itself is
driven by :class:`repro.optim.IterativeOptimizer`, which also produces the
convergence trace in ``SchedulingResult.info["convergence"]``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.optim import Candidate, FitnessKernel, IncrementalLoads, IterativeOptimizer, MoveOperator
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class _AnnealingOperator(MoveOperator):
    """One proposed move per step over an :class:`IncrementalLoads` state."""

    def __init__(self, cfg: "SimulatedAnnealingScheduler", context: SchedulingContext) -> None:
        self.cfg = cfg
        self.context = context
        self.accepted = 0

    def initialize(self, rng: np.random.Generator) -> Candidate:
        cfg = self.cfg
        n, m = self.context.num_cloudlets, self.context.num_vms
        self.kernel = FitnessKernel(self.context.arrays, time_model="compute")
        # Start from round-robin (balanced counts).
        self.state = IncrementalLoads(
            self.kernel, np.arange(n, dtype=np.int64) % m
        )
        self.current = self.state.makespan
        self.temperature = cfg.initial_temperature * max(self.current, 1e-12)
        # Pre-drawn move stream: the whole trajectory is fixed by the seed
        # regardless of how the driver's budget/stop policies cut it short.
        self.moves_i = rng.integers(0, n, size=cfg.iterations)
        self.moves_j = rng.integers(0, m, size=cfg.iterations)
        self.uniforms = rng.random(cfg.iterations)
        return Candidate(self.state.assignment, self.current, evaluations=1)

    def step(
        self,
        iteration: int,
        rng: np.random.Generator,
        incumbent_assignment: np.ndarray | None,
        incumbent_fitness: float,
    ) -> Candidate | None:
        i = int(self.moves_i[iteration])
        new_vm = int(self.moves_j[iteration])
        candidate = self.state.propose(i, new_vm)
        if candidate is None:
            self.temperature *= self.cfg.cooling
            return None
        delta = candidate - self.current
        if delta <= 0 or self.uniforms[iteration] < math.exp(
            -delta / max(self.temperature, 1e-300)
        ):
            self.state.commit()
            self.current = candidate
            self.accepted += 1
            self.temperature *= self.cfg.cooling
            return Candidate(self.state.assignment, self.current, evaluations=1)
        self.state.reject()
        self.temperature *= self.cfg.cooling
        return Candidate(None, self.current, evaluations=1)

    def info(self) -> dict:
        return {"accepted_moves": self.accepted}


class SimulatedAnnealingScheduler(Scheduler):
    """Simulated annealing over assignment vectors, minimising makespan.

    Parameters
    ----------
    iterations:
        Number of proposed moves.
    initial_temperature:
        Starting temperature, as a fraction of the initial makespan
        estimate (scale-free).
    cooling:
        Geometric cooling factor per move, in (0, 1).
    max_evaluations:
        Optional shared evaluation budget — the driver stops once this
        many fitness evaluations have been consumed.
    seed:
        Extra seed decorrelating this instance from the context stream.
    """

    def __init__(
        self,
        iterations: int = 5000,
        initial_temperature: float = 0.2,
        cooling: float = 0.999,
        max_evaluations: int | None = None,
        seed: int | None = None,
    ) -> None:
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if initial_temperature <= 0:
            raise ValueError(
                f"initial_temperature must be positive, got {initial_temperature}"
            )
        if not 0 < cooling < 1:
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError(
                f"max_evaluations must be >= 1 or None, got {max_evaluations}"
            )
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.max_evaluations = max_evaluations
        self.seed = seed

    @property
    def name(self) -> str:
        return "annealing"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        n, m = context.num_cloudlets, context.num_vms
        rng = context.rng if self.seed is None else np.random.default_rng(
            [self.seed, n, m]
        )
        operator = _AnnealingOperator(self, context)
        # No per-move span: one move is ~µs-scale, so the anneal is timed as
        # a whole and the kernel's delta counters carry the per-move story.
        with _TEL.span("annealing.anneal"):
            outcome = IterativeOptimizer(
                operator,
                max_iterations=self.iterations,
                max_evaluations=self.max_evaluations,
                record_every=max(1, self.iterations // 200),
            ).run(rng)
        return SchedulingResult(
            assignment=outcome.assignment,
            scheduler_name=self.name,
            info={
                "best_makespan_estimate": outcome.fitness,
                "accepted_moves": outcome.info["accepted_moves"],
                "iterations": self.iterations,
                "evaluations": outcome.evaluations,
                "stopped": outcome.stopped,
                "convergence": outcome.trace.as_dict() if outcome.trace else None,
            },
        )


__all__ = ["SimulatedAnnealingScheduler"]
