"""Scheduler interface and shared machinery.

A scheduler is a *batch* decision procedure: it receives a
:class:`SchedulingContext` describing the cloudlets, VMs and datacenters,
and returns a cloudlet→VM assignment vector.  The simulation façade times
the call (the paper's "scheduling time" metric) and then executes the
assignment on the simulator.

Schedulers must be deterministic given ``(constructor args, context)``:
all randomness flows through the generator handed to
:meth:`Scheduler.schedule` inside the context.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.rng import spawn_rng
from repro.workloads.spec import ScenarioArrays, ScenarioSpec


@dataclass(frozen=True)
class SchedulingContext:
    """Everything a scheduler may look at.

    Wraps the scenario's array views plus a dedicated random generator.
    Construct via :meth:`from_scenario`.
    """

    arrays: ScenarioArrays
    rng: np.random.Generator
    scenario_name: str = ""

    @classmethod
    def from_scenario(
        cls, scenario: ScenarioSpec, seed: int | None = 0
    ) -> "SchedulingContext":
        """Create a context with an RNG derived from ``seed``."""
        return cls(
            arrays=scenario.arrays(),
            rng=spawn_rng(seed, f"scheduler/{scenario.name}"),
            scenario_name=scenario.name,
        )

    def restrict(self, cloudlet_indices, vm_indices) -> "SchedulingContext":
        """Sub-context over a subset of cloudlets and VMs.

        The restricted context shares this context's random generator (so a
        sequence of restricted calls stays deterministic under one seed) and
        renumbers both axes: a scheduler run on the result returns *local*
        VM indices — position ``j`` means global VM ``vm_indices[j]``.  This
        is how failure-aware rescheduling re-invokes a batch scheduler over
        only the surviving VMs.
        """
        return SchedulingContext(
            arrays=self.arrays.take(cloudlet_indices, vm_indices),
            rng=self.rng,
            scenario_name=f"{self.scenario_name}/sub",
        )

    # -- convenience passthroughs ------------------------------------------------

    @property
    def num_cloudlets(self) -> int:
        return self.arrays.num_cloudlets

    @property
    def num_vms(self) -> int:
        return self.arrays.num_vms

    @property
    def num_datacenters(self) -> int:
        return self.arrays.num_datacenters

    def expected_exec_time(self, cloudlet_idx: int) -> np.ndarray:
        """Eq. 6 row for one cloudlet over all VMs."""
        return self.arrays.expected_exec_time(cloudlet_idx)

    def exec_time_matrix(self) -> np.ndarray:
        """Full Eq. 6 matrix (memory permitting)."""
        return self.arrays.exec_time_matrix()


@dataclass
class SchedulingResult:
    """An assignment plus provenance/diagnostics.

    Attributes
    ----------
    assignment:
        ``int64`` array mapping cloudlet index → VM index.
    scheduler_name:
        Registry name of the producing scheduler.
    info:
        Free-form diagnostics (iterations, best tour quality, spills, ...).
    """

    assignment: np.ndarray
    scheduler_name: str
    info: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if self.assignment.ndim != 1:
            raise ValueError("assignment must be one-dimensional")


def validate_assignment(assignment: np.ndarray, num_cloudlets: int, num_vms: int) -> None:
    """Raise ``ValueError`` unless ``assignment`` is complete and in range."""
    arr = np.asarray(assignment)
    if arr.shape != (num_cloudlets,):
        raise ValueError(
            f"assignment shape {arr.shape} != ({num_cloudlets},)"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(f"assignment must be integral, got dtype {arr.dtype}")
    if arr.size and (arr.min() < 0 or arr.max() >= num_vms):
        raise ValueError(
            f"assignment values must be in [0, {num_vms}), got "
            f"[{arr.min()}, {arr.max()}]"
        )


class Scheduler(abc.ABC):
    """Base class for all scheduling policies."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Stable registry name (also the legend label in reports)."""

    @abc.abstractmethod
    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        """Produce a cloudlet→VM assignment for the given context."""

    def schedule_checked(self, context: SchedulingContext) -> SchedulingResult:
        """Run :meth:`schedule` and validate the result."""
        result = self.schedule(context)
        validate_assignment(result.assignment, context.num_cloudlets, context.num_vms)
        if result.scheduler_name != self.name:
            raise ValueError(
                f"scheduler {self.name!r} returned result labelled "
                f"{result.scheduler_name!r}"
            )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


def estimated_vm_finish_times(
    assignment: np.ndarray, exec_times: np.ndarray, num_vms: int
) -> np.ndarray:
    """Per-VM total of per-cloudlet execution-time estimates.

    With every cloudlet submitted at t=0 and space-shared execution, a VM's
    completion time is the sum of its cloudlets' execution times; the batch
    makespan estimate is the max over VMs.  Used as the fitness/tour-quality
    of the metaheuristic schedulers.
    """
    # bincount is the fused form of zeros + np.add.at: one C pass over the
    # batch instead of buffered fancy-index accumulation (~5-10x faster at
    # the paper's batch sizes), with identical left-to-right summation.
    return np.bincount(assignment, weights=exec_times, minlength=num_vms)


def estimate_makespan(
    assignment: np.ndarray,
    lengths: np.ndarray,
    vm_mips: np.ndarray,
    vm_pes: np.ndarray | None = None,
) -> float:
    """Makespan estimate of an assignment (all submissions at t=0).

    Accounts for multi-PE VMs by dividing a VM's total work across its PEs
    (a lower bound that is exact for single-PE VMs, the paper's setting).
    """
    num_vms = vm_mips.shape[0]
    work = np.bincount(assignment, weights=lengths, minlength=num_vms)
    capacity = vm_mips if vm_pes is None else vm_mips * vm_pes
    return float((work / capacity).max())


__all__ = [
    "Scheduler",
    "SchedulingContext",
    "SchedulingResult",
    "validate_assignment",
    "estimated_vm_finish_times",
    "estimate_makespan",
]
