"""Classic grid-scheduling heuristics: MET and OLB.

The two extremes that bracket the trade-off every scheduler in this
package navigates (Braun et al.'s classic taxonomy):

* **MET** (Minimum Execution Time) — each task to the VM that executes it
  fastest, ignoring load entirely.  Maximal per-task speed, catastrophic
  balance: on a heterogeneous fleet everything piles onto the fastest VM.
* **OLB** (Opportunistic Load Balancing) — each task to the VM expected to
  become idle soonest, ignoring execution speed.  Maximal utilisation of
  idle capacity, indifferent to whether the VM is any good for the task.

Useful as teaching baselines and as the endpoints the ablation plots span.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class MinimumExecutionTimeScheduler(Scheduler):
    """MET: always the fastest suitable VM (load-blind)."""

    @property
    def name(self) -> str:
        return "met"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        arr = context.arrays
        # Eq. 6 without load: the best VM is the same for every cloudlet
        # whenever bandwidth is uniform, so compute per-cloudlet argmins
        # in one vectorised pass.
        compute = np.outer(arr.cloudlet_length, 1.0 / (arr.vm_mips * arr.vm_pes))
        with np.errstate(divide="ignore"):
            inv_bw = np.where(arr.vm_bw > 0, 1.0 / arr.vm_bw, 0.0)
        d = compute + np.outer(arr.cloudlet_file_size, inv_bw)
        assignment = np.argmin(d, axis=1).astype(np.int64)
        return SchedulingResult(assignment=assignment, scheduler_name=self.name)


class OpportunisticLoadBalancingScheduler(Scheduler):
    """OLB: always the earliest-idle VM (speed-blind)."""

    @property
    def name(self) -> str:
        return "olb"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        arr = context.arrays
        n, m = context.num_cloudlets, context.num_vms
        ready = np.zeros(m)
        inv_capacity = 1.0 / (arr.vm_mips * arr.vm_pes)
        assignment = np.empty(n, dtype=np.int64)
        for i in range(n):
            j = int(np.argmin(ready))
            assignment[i] = j
            ready[j] += arr.cloudlet_length[i] * inv_capacity[j]
        return SchedulingResult(assignment=assignment, scheduler_name=self.name)


__all__ = ["MinimumExecutionTimeScheduler", "OpportunisticLoadBalancingScheduler"]
