"""Cuckoo-assisted discrete Symbiotic Organisms Search (SOS) scheduler.

Related-work extension (Sa'ad et al., arXiv:2311.15358): SOS evolves an
*ecosystem* of candidate assignments through three biological interaction
phases, and a cuckoo/Lévy-flight generation step replaces SOS's weakness
at escaping local optima with heavy-tailed long jumps.  One iteration is
four vectorised phases over the whole ecosystem, each generating a full
candidate block from the phase-start snapshot, batch-evaluating it with
:meth:`repro.optim.FitnessKernel.batch_makespans`, and greedily accepting
per organism (a candidate replaces its organism only on strict
improvement — the ecosystem's fitness is non-increasing within a phase):

* **mutualism** — organism ``i`` and a distinct partner ``j`` produce a
  mutual vector ``MV = (x_i + x_j) / 2``; ``i`` moves by
  ``rand ∘ (x_best - MV · BF)`` with benefit factor ``BF ∈ {1, 2}``;
* **commensalism** — ``i`` moves by ``rand[-1, 1] ∘ (x_best - x_j)``,
  benefiting from the partner without affecting it;
* **parasitism** — a parasite clone of ``i`` with a random fraction of
  its components re-randomised challenges ``i`` directly (the snapshot
  variant: each organism defends its own slot, which keeps the phase
  write-conflict-free and therefore fully vectorisable);
* **cuckoo generation** — Lévy flights ``x + alpha · levy(beta) ∘
  (x - x_best)`` (Mantegna's algorithm), then the ``abandon_fraction``
  worst nests — never the best — are rebuilt uniformly at random, the
  cuckoo host-abandonment move.

Continuous interaction arithmetic is rounded back to VM indices before
evaluation, exactly like the GSA/PSOGSA discretisation.  The loop,
incumbent bookkeeping and convergence trace come from
:class:`repro.optim.IterativeOptimizer`.

Examples
--------
>>> from repro.schedulers.cuckoo_sos import CuckooSosScheduler
>>> from repro.schedulers.base import SchedulingContext
>>> from repro.workloads.heterogeneous import heterogeneous_scenario
>>> scenario = heterogeneous_scenario(4, 10, seed=0)
>>> scheduler = CuckooSosScheduler(ecosystem_size=4, max_iterations=3)
>>> a = scheduler.schedule_checked(SchedulingContext.from_scenario(scenario, seed=2))
>>> b = scheduler.schedule_checked(SchedulingContext.from_scenario(scenario, seed=2))
>>> bool((a.assignment == b.assignment).all())
True
>>> trace = a.info["convergence"]["best_fitness"]
>>> all(later <= earlier for earlier, later in zip(trace, trace[1:]))
True
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.optim import Candidate, FitnessKernel, IterativeOptimizer, MoveOperator
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


def levy_sigma(beta: float) -> float:
    """Mantegna's ``sigma_u`` for Lévy exponent ``beta``."""
    num = math.gamma(1 + beta) * math.sin(math.pi * beta / 2)
    den = math.gamma((1 + beta) / 2) * beta * 2 ** ((beta - 1) / 2)
    return (num / den) ** (1 / beta)


def levy_steps(
    rng: np.random.Generator, shape: tuple[int, ...], beta: float
) -> np.ndarray:
    """Heavy-tailed Lévy step block via Mantegna: ``u / |v|^(1/beta)``."""
    u = rng.normal(0.0, levy_sigma(beta), size=shape)
    v = rng.normal(0.0, 1.0, size=shape)
    return u / np.maximum(np.abs(v), 1e-12) ** (1 / beta)


class _CuckooSosOperator(MoveOperator):
    """One four-phase SOS + cuckoo cycle over the ecosystem per step."""

    def __init__(self, cfg: "CuckooSosScheduler", context: SchedulingContext) -> None:
        self.cfg = cfg
        self.context = context

    def _discretise(self, positions: np.ndarray) -> np.ndarray:
        m = self.context.num_vms
        return np.clip(np.rint(positions), 0, m - 1).astype(np.int64)

    def _partners(self, rng: np.random.Generator) -> np.ndarray:
        """One distinct partner index per organism (j != i by shift)."""
        p = self.cfg.ecosystem_size
        if p < 2:
            return np.zeros(p, dtype=np.int64)
        shift = rng.integers(1, p, size=p)
        return (np.arange(p, dtype=np.int64) + shift) % p

    def _accept(self, candidates: np.ndarray) -> int:
        """Greedy per-organism acceptance of a candidate block; evals used."""
        fitness = self.kernel.batch_makespans(candidates)
        better = fitness < self.fitness
        self.population[better] = candidates[better]
        self.fitness[better] = fitness[better]
        return int(candidates.shape[0])

    def initialize(self, rng: np.random.Generator) -> Candidate:
        cfg = self.cfg
        n, m = self.context.num_cloudlets, self.context.num_vms
        p = cfg.ecosystem_size
        self.kernel = FitnessKernel(
            self.context.arrays, time_model="compute", max_matrix_cells=0
        )
        self.population = rng.integers(0, m, size=(p, n), dtype=np.int64)
        self.fitness = self.kernel.batch_makespans(self.population)
        g = int(np.argmin(self.fitness))
        return Candidate(self.population[g], float(self.fitness[g]), evaluations=p)

    def step(
        self,
        iteration: int,
        rng: np.random.Generator,
        incumbent_assignment: np.ndarray | None,
        incumbent_fitness: float,
    ) -> Candidate:
        cfg = self.cfg
        p, n = self.population.shape
        m = self.context.num_vms
        evaluations = 0

        best = self.population[int(np.argmin(self.fitness))].astype(np.float64)
        with _TEL.span("cuckoo_sos.mutualism"):
            partners = self._partners(rng)
            mutual = (self.population + self.population[partners]) / 2.0
            benefit = rng.integers(1, 3, size=(p, 1)).astype(np.float64)
            moved = self.population + rng.random((p, n)) * (
                best[None, :] - mutual * benefit
            )
            evaluations += self._accept(self._discretise(moved))

        best = self.population[int(np.argmin(self.fitness))].astype(np.float64)
        with _TEL.span("cuckoo_sos.commensalism"):
            partners = self._partners(rng)
            moved = self.population + (rng.random((p, n)) * 2.0 - 1.0) * (
                best[None, :] - self.population[partners]
            )
            evaluations += self._accept(self._discretise(moved))

        with _TEL.span("cuckoo_sos.parasitism"):
            parasites = self.population.copy()
            infect = rng.random((p, n)) < cfg.parasite_rate
            fresh = rng.integers(0, m, size=(p, n), dtype=np.int64)
            parasites[infect] = fresh[infect]
            evaluations += self._accept(parasites)

        best = self.population[int(np.argmin(self.fitness))].astype(np.float64)
        with _TEL.span("cuckoo_sos.cuckoo"):
            steps = levy_steps(rng, (p, n), cfg.levy_beta)
            flown = self.population + cfg.step_scale * steps * (
                self.population - best[None, :]
            )
            evaluations += self._accept(self._discretise(flown))
            abandon = int(cfg.abandon_fraction * p)
            if abandon:
                # Worst nests, by stable fitness order — never the best.
                worst = np.argsort(self.fitness, kind="stable")[::-1][:abandon]
                rebuilt = rng.integers(0, m, size=(abandon, n), dtype=np.int64)
                self.population[worst] = rebuilt
                self.fitness[worst] = self.kernel.batch_makespans(rebuilt)
                evaluations += abandon

        g = int(np.argmin(self.fitness))
        return Candidate(self.population[g], float(self.fitness[g]), evaluations=evaluations)


class CuckooSosScheduler(Scheduler):
    """Cuckoo-SOS cloudlet scheduler minimising estimated makespan.

    Parameters
    ----------
    ecosystem_size:
        Number of organisms (candidate assignments).
    max_iterations:
        Four-phase interaction cycles.
    parasite_rate:
        Per-component probability a parasite clone re-randomises that
        component.
    levy_beta:
        Lévy exponent of the cuckoo flight, in ``(1, 2]``.
    step_scale:
        Scale ``alpha`` of the Lévy step.
    abandon_fraction:
        Fraction of worst nests rebuilt at random each cycle, in
        ``[0, 1)``.
    patience:
        Stop early after this many cycles without improving the incumbent
        (``None`` disables early stopping).
    max_evaluations:
        Optional shared evaluation budget across the run.
    """

    def __init__(
        self,
        ecosystem_size: int = 30,
        max_iterations: int = 40,
        parasite_rate: float = 0.3,
        levy_beta: float = 1.5,
        step_scale: float = 1.0,
        abandon_fraction: float = 0.25,
        patience: int | None = None,
        max_evaluations: int | None = None,
    ) -> None:
        if ecosystem_size < 2:
            raise ValueError(f"ecosystem_size must be >= 2, got {ecosystem_size}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0 < parasite_rate <= 1:
            raise ValueError(f"parasite_rate must be in (0, 1], got {parasite_rate}")
        if not 1 < levy_beta <= 2:
            raise ValueError(f"levy_beta must be in (1, 2], got {levy_beta}")
        if step_scale <= 0:
            raise ValueError(f"step_scale must be positive, got {step_scale}")
        if not 0 <= abandon_fraction < 1:
            raise ValueError(
                f"abandon_fraction must be in [0, 1), got {abandon_fraction}"
            )
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1 or None, got {patience}")
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError(
                f"max_evaluations must be >= 1 or None, got {max_evaluations}"
            )
        self.ecosystem_size = ecosystem_size
        self.max_iterations = max_iterations
        self.parasite_rate = parasite_rate
        self.levy_beta = levy_beta
        self.step_scale = step_scale
        self.abandon_fraction = abandon_fraction
        self.patience = patience
        self.max_evaluations = max_evaluations

    @property
    def name(self) -> str:
        return "cuckoo-sos"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        operator = _CuckooSosOperator(self, context)
        outcome = IterativeOptimizer(
            operator,
            max_iterations=self.max_iterations,
            patience=self.patience,
            max_evaluations=self.max_evaluations,
        ).run(context.rng)
        return SchedulingResult(
            assignment=outcome.assignment,
            scheduler_name=self.name,
            info={
                "best_makespan_estimate": outcome.fitness,
                "iterations": outcome.iterations,
                "evaluations": outcome.evaluations,
                "stopped": outcome.stopped,
                "convergence": outcome.trace.as_dict() if outcome.trace else None,
            },
        )


__all__ = ["CuckooSosScheduler", "levy_sigma", "levy_steps"]
