"""Deadline-aware batch scheduler (EDF + minimum completion time).

Extension beyond the paper's four algorithms, motivated by its
introduction's "deadlines for hard real-time applications": cloudlets are
considered in earliest-deadline-first order, each placed on the VM whose
queue finishes it soonest.  A cloudlet that would still miss its deadline
is placed on the earliest-finishing VM anyway (work-conserving).

Deadlines come from the context extension (``deadlines=`` constructor
argument aligned with the scenario's cloudlets) or are synthesized with a
slack factor when none are given, so the scheduler composes with every
existing scenario generator.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.sla import relative_deadlines
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class DeadlineAwareScheduler(Scheduler):
    """EDF-ordered minimum-completion-time placement.

    Parameters
    ----------
    deadlines:
        Absolute per-cloudlet deadlines, index-aligned with the scenario.
        ``None`` synthesizes them via :func:`relative_deadlines`.
    slack_factor:
        Slack used when synthesizing deadlines.
    """

    def __init__(self, deadlines=None, slack_factor: float = 4.0) -> None:
        if slack_factor <= 0:
            raise ValueError(f"slack_factor must be positive, got {slack_factor}")
        self.deadlines = None if deadlines is None else np.asarray(deadlines, dtype=float)
        self.slack_factor = slack_factor

    @property
    def name(self) -> str:
        return "deadline-edf"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        arr = context.arrays
        n, m = context.num_cloudlets, context.num_vms
        if self.deadlines is not None:
            if self.deadlines.shape != (n,):
                raise ValueError(
                    f"deadlines shape {self.deadlines.shape} != ({n},)"
                )
            deadlines = self.deadlines
        else:
            deadlines = relative_deadlines(
                arr.cloudlet_length, float(arr.vm_mips.mean()), self.slack_factor
            )

        ready = np.zeros(m)
        inv_capacity = 1.0 / (arr.vm_mips * arr.vm_pes)
        assignment = np.empty(n, dtype=np.int64)
        predicted_misses = 0
        for i in np.argsort(deadlines, kind="stable"):
            completion = ready + arr.cloudlet_length[i] * inv_capacity
            j = int(np.argmin(completion))
            assignment[i] = j
            ready[j] = completion[j]
            if completion[j] > deadlines[i] + 1e-9:
                predicted_misses += 1
        return SchedulingResult(
            assignment=assignment,
            scheduler_name=self.name,
            info={
                "predicted_misses": predicted_misses,
                "slack_factor": self.slack_factor,
                "synthesized_deadlines": self.deadlines is None,
            },
        )


__all__ = ["DeadlineAwareScheduler"]
