"""Genetic Algorithm scheduler.

Related-work baseline (Ge & Wei 2010, reference [6] of the paper): a GA
that "scans the entire job queue" and evolves whole assignment vectors to
minimise batch makespan.

Chromosome: one VM index per cloudlet.  Operators: tournament selection,
uniform crossover, per-gene uniform mutation, elitist survival of the best
individual.  All operators are vectorised across the population, with the
per-generation fitness evaluated in one
:meth:`repro.optim.FitnessKernel.batch_makespans` call and the generation
loop driven by :class:`repro.optim.IterativeOptimizer`.

The paper notes GA converges too slowly for cloud scheduling [17]; keeping
this implementation around lets the ablation benches quantify exactly that
trade-off against ACO/HBO — now with per-generation convergence traces.
"""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.optim import Candidate, FitnessKernel, IterativeOptimizer, MoveOperator
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class _GaOperator(MoveOperator):
    """One generation (selection, crossover, mutation, elitism) per step."""

    def __init__(self, cfg: "GeneticAlgorithmScheduler", context: SchedulingContext) -> None:
        self.cfg = cfg
        self.context = context

    def initialize(self, rng: np.random.Generator) -> Candidate:
        cfg = self.cfg
        n, m = self.context.num_cloudlets, self.context.num_vms
        p = cfg.population_size
        self.kernel = FitnessKernel(
            self.context.arrays, time_model="compute", max_matrix_cells=0
        )
        self.population = rng.integers(0, m, size=(p, n), dtype=np.int64)
        # Seed one chromosome with round-robin: gives the GA a balanced
        # starting point, mirroring common practice.
        self.population[0] = np.arange(n, dtype=np.int64) % m
        self.fitness = self.kernel.batch_makespans(self.population)
        g = int(np.argmin(self.fitness))
        return Candidate(self.population[g], float(self.fitness[g]), evaluations=p)

    def step(
        self,
        iteration: int,
        rng: np.random.Generator,
        incumbent_assignment: np.ndarray | None,
        incumbent_fitness: float,
    ) -> Candidate:
        cfg = self.cfg
        population, fitness = self.population, self.fitness
        p, n = population.shape
        m = self.context.num_vms

        with _TEL.span("ga.variation"):
            # Tournament selection (vectorised): p tournaments of size k.
            entrants = rng.integers(0, p, size=(p, cfg.tournament_size))
            winners = entrants[np.arange(p), np.argmin(fitness[entrants], axis=1)]
            parents = population[winners]

            # Uniform crossover on consecutive pairs.
            children = parents.copy()
            pairs = p // 2
            do_cross = rng.random(pairs) < cfg.crossover_rate
            mask = rng.random((pairs, n)) < 0.5
            a = children[0::2]
            b = children[1::2]
            swap = mask & do_cross[:, None]
            a_swapped = np.where(swap, b, a)
            b_swapped = np.where(swap, a, b)
            children[0::2] = a_swapped
            children[1::2] = b_swapped

            # Mutation.
            mutate = rng.random((p, n)) < cfg.mutation_rate
            if mutate.any():
                children = np.where(
                    mutate, rng.integers(0, m, size=(p, n), dtype=np.int64), children
                )

        with _TEL.span("ga.fitness"):
            child_fitness = self.kernel.batch_makespans(children)

        # Elitism: keep the best `elitism` incumbents.
        if cfg.elitism:
            elite_idx = np.argsort(fitness)[: cfg.elitism]
            worst_children = np.argsort(child_fitness)[::-1][: cfg.elitism]
            children[worst_children] = population[elite_idx]
            child_fitness[worst_children] = fitness[elite_idx]

        self.population = children
        self.fitness = child_fitness
        g = int(np.argmin(child_fitness))
        return Candidate(children[g], float(child_fitness[g]), evaluations=p)

    def finalize(
        self, incumbent_assignment: np.ndarray | None, incumbent_fitness: float
    ) -> tuple[np.ndarray, float]:
        # Historical GA semantics: the answer is the best chromosome of the
        # *final* population (identical fitness to the incumbent under
        # elitism, but tie-breaking picks the lowest final index).
        best = int(np.argmin(self.fitness))
        return self.population[best], float(self.fitness[best])


class GeneticAlgorithmScheduler(Scheduler):
    """GA cloudlet scheduler minimising estimated makespan.

    Parameters
    ----------
    population_size:
        Number of chromosomes (must be even for pairwise crossover).
    generations:
        Evolution rounds.
    crossover_rate:
        Probability a pair undergoes uniform crossover.
    mutation_rate:
        Per-gene probability of a uniform random reset.
    tournament_size:
        Individuals per selection tournament.
    elitism:
        Copies of the best chromosome preserved each generation.
    patience:
        Stop early after this many generations without improving the best
        fitness (``None`` disables early stopping).
    max_evaluations:
        Optional shared evaluation budget across the run.
    """

    def __init__(
        self,
        population_size: int = 40,
        generations: int = 60,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.01,
        tournament_size: int = 3,
        elitism: int = 1,
        patience: int | None = None,
        max_evaluations: int | None = None,
    ) -> None:
        if population_size < 2 or population_size % 2:
            raise ValueError(
                f"population_size must be an even number >= 2, got {population_size}"
            )
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        if not 0 <= crossover_rate <= 1:
            raise ValueError(f"crossover_rate must be in [0, 1], got {crossover_rate}")
        if not 0 <= mutation_rate <= 1:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        if tournament_size < 1:
            raise ValueError(f"tournament_size must be >= 1, got {tournament_size}")
        if not 0 <= elitism < population_size:
            raise ValueError("elitism must be in [0, population_size)")
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1 or None, got {patience}")
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError(
                f"max_evaluations must be >= 1 or None, got {max_evaluations}"
            )
        self.population_size = population_size
        self.generations = generations
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.tournament_size = tournament_size
        self.elitism = elitism
        self.patience = patience
        self.max_evaluations = max_evaluations

    @property
    def name(self) -> str:
        return "ga"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        operator = _GaOperator(self, context)
        outcome = IterativeOptimizer(
            operator,
            max_iterations=self.generations,
            patience=self.patience,
            max_evaluations=self.max_evaluations,
        ).run(context.rng)
        return SchedulingResult(
            assignment=outcome.assignment,
            scheduler_name=self.name,
            info={
                "best_makespan_estimate": outcome.fitness,
                "generations": outcome.iterations,
                "evaluations": outcome.evaluations,
                "stopped": outcome.stopped,
                "convergence": outcome.trace.as_dict() if outcome.trace else None,
            },
        )


__all__ = ["GeneticAlgorithmScheduler"]
