"""Genetic Algorithm scheduler.

Related-work baseline (Ge & Wei 2010, reference [6] of the paper): a GA
that "scans the entire job queue" and evolves whole assignment vectors to
minimise batch makespan.

Chromosome: one VM index per cloudlet.  Operators: tournament selection,
uniform crossover, per-gene uniform mutation, elitist survival of the best
individual.  All operators are vectorised across the population.

The paper notes GA converges too slowly for cloud scheduling [17]; keeping
this implementation around lets the ablation benches quantify exactly that
trade-off against ACO/HBO.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class GeneticAlgorithmScheduler(Scheduler):
    """GA cloudlet scheduler minimising estimated makespan.

    Parameters
    ----------
    population_size:
        Number of chromosomes (must be even for pairwise crossover).
    generations:
        Evolution rounds.
    crossover_rate:
        Probability a pair undergoes uniform crossover.
    mutation_rate:
        Per-gene probability of a uniform random reset.
    tournament_size:
        Individuals per selection tournament.
    elitism:
        Copies of the best chromosome preserved each generation.
    """

    def __init__(
        self,
        population_size: int = 40,
        generations: int = 60,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.01,
        tournament_size: int = 3,
        elitism: int = 1,
    ) -> None:
        if population_size < 2 or population_size % 2:
            raise ValueError(
                f"population_size must be an even number >= 2, got {population_size}"
            )
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        if not 0 <= crossover_rate <= 1:
            raise ValueError(f"crossover_rate must be in [0, 1], got {crossover_rate}")
        if not 0 <= mutation_rate <= 1:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        if tournament_size < 1:
            raise ValueError(f"tournament_size must be >= 1, got {tournament_size}")
        if not 0 <= elitism < population_size:
            raise ValueError("elitism must be in [0, population_size)")
        self.population_size = population_size
        self.generations = generations
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.tournament_size = tournament_size
        self.elitism = elitism

    @property
    def name(self) -> str:
        return "ga"

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _makespans(population: np.ndarray, ctx: SchedulingContext) -> np.ndarray:
        """Estimated makespan per chromosome, vectorised via bincount."""
        arr = ctx.arrays
        p, n = population.shape
        m = ctx.num_vms
        offsets = (np.arange(p)[:, None] * m + population).ravel()
        lengths = np.broadcast_to(arr.cloudlet_length, (p, n)).ravel()
        work = np.bincount(offsets, weights=lengths, minlength=p * m).reshape(p, m)
        return (work / (arr.vm_mips * arr.vm_pes)).max(axis=1)

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        n, m = context.num_cloudlets, context.num_vms
        rng = context.rng
        p = self.population_size

        population = rng.integers(0, m, size=(p, n), dtype=np.int64)
        # Seed one chromosome with round-robin: gives the GA a balanced
        # starting point, mirroring common practice.
        population[0] = np.arange(n, dtype=np.int64) % m
        fitness = self._makespans(population, context)

        for _ in range(self.generations):
            # Tournament selection (vectorised): p tournaments of size k.
            entrants = rng.integers(0, p, size=(p, self.tournament_size))
            winners = entrants[
                np.arange(p), np.argmin(fitness[entrants], axis=1)
            ]
            parents = population[winners]

            # Uniform crossover on consecutive pairs.
            children = parents.copy()
            pairs = p // 2
            do_cross = rng.random(pairs) < self.crossover_rate
            mask = rng.random((pairs, n)) < 0.5
            a = children[0::2]
            b = children[1::2]
            swap = mask & do_cross[:, None]
            a_swapped = np.where(swap, b, a)
            b_swapped = np.where(swap, a, b)
            children[0::2] = a_swapped
            children[1::2] = b_swapped

            # Mutation.
            mutate = rng.random((p, n)) < self.mutation_rate
            if mutate.any():
                children = np.where(
                    mutate, rng.integers(0, m, size=(p, n), dtype=np.int64), children
                )

            child_fitness = self._makespans(children, context)

            # Elitism: keep the best `elitism` incumbents.
            if self.elitism:
                elite_idx = np.argsort(fitness)[: self.elitism]
                worst_children = np.argsort(child_fitness)[::-1][: self.elitism]
                children[worst_children] = population[elite_idx]
                child_fitness[worst_children] = fitness[elite_idx]

            population = children
            fitness = child_fitness

        best = int(np.argmin(fitness))
        return SchedulingResult(
            assignment=population[best],
            scheduler_name=self.name,
            info={
                "best_makespan_estimate": float(fitness[best]),
                "generations": self.generations,
            },
        )


__all__ = ["GeneticAlgorithmScheduler"]
