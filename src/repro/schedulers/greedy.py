"""Greedy minimum-completion-time (MCT) scheduler.

A classic grid baseline: cloudlets are taken in submission order and each
is placed on the VM whose *current* finish time plus the cloudlet's
expected execution time is smallest.  Equivalent to list scheduling on
unrelated machines; used as a sanity baseline in the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class GreedyMinCompletionScheduler(Scheduler):
    """Assign each cloudlet (in order) to the VM minimising completion time."""

    @property
    def name(self) -> str:
        return "greedy-mct"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        arr = context.arrays
        n, m = context.num_cloudlets, context.num_vms
        ready = np.zeros(m)
        assignment = np.empty(n, dtype=np.int64)
        inv_capacity = 1.0 / (arr.vm_mips * arr.vm_pes)
        for i in range(n):
            completion = ready + arr.cloudlet_length[i] * inv_capacity
            j = int(np.argmin(completion))
            assignment[i] = j
            ready[j] = completion[j]
        return SchedulingResult(
            assignment=assignment,
            scheduler_name=self.name,
            info={"estimated_makespan": float(ready.max())},
        )


__all__ = ["GreedyMinCompletionScheduler"]
