"""Gravitational Search Algorithm scheduler.

Related-work extension (Mamalis & Perlitis, arXiv:2311.07004, building on
Rashedi et al.'s GSA): a population of *agents* moves through the
continuous space ``[0, num_vms - 1]^num_cloudlets``; an agent's position,
rounded per component to the nearest integer, is a complete cloudlet→VM
assignment.  Physics of one iteration:

* **mass from fitness** — agent masses are the min-max normalised
  makespans ``m_a = (worst - fit_a) / (worst - best)`` (all-equal
  populations get uniform mass), normalised to sum to one;
* **force accumulation** — every agent is pulled toward the ``Kbest``
  fittest agents with force ``G(t) * M_b * (x_b - x_a) / (R_ab + eps)``
  per dimension, each pair weighted by one uniform draw.  The quadratic
  pairwise sum is folded into two matrix products (weights × elite
  positions), so the accumulation is O(p² + p·n) with no (p, p, n)
  intermediate;
* **velocity / position update** — ``v = rand ∘ v + a`` with a fresh
  per-component uniform, then ``x += v`` clipped back into the box;
  ``G(t) = G0 · exp(-alpha · t / T)`` decays the pull and ``Kbest``
  shrinks linearly from the whole population to a single elite, moving
  the swarm from exploration to exploitation.

Fitness is the estimated batch makespan, evaluated for the whole
discretised population at once by
:meth:`repro.optim.FitnessKernel.batch_makespans`; the iteration loop,
incumbent bookkeeping and convergence trace come from
:class:`repro.optim.IterativeOptimizer`.

Examples
--------
Deterministic given ``(constructor args, context)`` — all randomness flows
through the context's generator:

>>> from repro.schedulers.gsa import GravitationalSearchScheduler
>>> from repro.schedulers.base import SchedulingContext
>>> from repro.workloads.homogeneous import homogeneous_scenario
>>> scenario = homogeneous_scenario(2, 6, seed=0)
>>> scheduler = GravitationalSearchScheduler(num_agents=4, max_iterations=3)
>>> a = scheduler.schedule_checked(SchedulingContext.from_scenario(scenario, seed=1))
>>> b = scheduler.schedule_checked(SchedulingContext.from_scenario(scenario, seed=1))
>>> bool((a.assignment == b.assignment).all())
True
>>> a.assignment.shape == (6,) and set(a.assignment.tolist()) <= {0, 1}
True
>>> a.info["iterations"]
3
"""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.optim import Candidate, FitnessKernel, IterativeOptimizer, MoveOperator
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult

#: softening constant keeping the force finite at zero distance.
_EPS = 1e-12


def agent_masses(fitness: np.ndarray) -> np.ndarray:
    """GSA masses of a population: min-max normalised, summing to one.

    Lower makespan → heavier agent.  A population with identical fitness
    collapses the min-max span; every agent then gets equal mass.
    """
    best = float(fitness.min())
    worst = float(fitness.max())
    if worst > best:
        raw = (worst - fitness) / (worst - best)
    else:
        raw = np.ones_like(fitness)
    total = float(raw.sum())
    if total <= 0:
        # Only the worst agent(s) remain: give everything uniform mass so
        # the force field stays defined.
        return np.full_like(fitness, 1.0 / fitness.shape[0])
    return raw / total


def kbest_size(iteration: int, max_iterations: int, population: int) -> int:
    """Elite-set size at ``iteration``: linear decay population → 1."""
    if max_iterations <= 1:
        return population
    frac = iteration / (max_iterations - 1)
    return max(1, int(round(population - (population - 1) * frac)))


class _GsaOperator(MoveOperator):
    """One velocity/position update of the whole agent population per step."""

    def __init__(self, cfg: "GravitationalSearchScheduler", context: SchedulingContext) -> None:
        self.cfg = cfg
        self.context = context

    def _discretise(self, positions: np.ndarray) -> np.ndarray:
        m = self.context.num_vms
        return np.clip(np.rint(positions), 0, m - 1).astype(np.int64)

    def initialize(self, rng: np.random.Generator) -> Candidate:
        cfg = self.cfg
        n, m = self.context.num_cloudlets, self.context.num_vms
        p = cfg.num_agents
        self.kernel = FitnessKernel(
            self.context.arrays, time_model="compute", max_matrix_cells=0
        )
        self.positions = rng.uniform(0.0, float(m - 1), size=(p, n))
        self.velocities = np.zeros((p, n))
        ints = self._discretise(self.positions)
        self.fitness = self.kernel.batch_makespans(ints)
        g = int(np.argmin(self.fitness))
        return Candidate(ints[g], float(self.fitness[g]), evaluations=p)

    def _acceleration(
        self, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Mass-weighted pull toward the ``Kbest`` elite, G(t)-scaled.

        ``a_i = G · Σ_b w_ib · M_b · (x_b - x_i) / (R_ib + eps)`` — the
        agent's own mass cancels between force and acceleration, and the
        self-pair contributes nothing (``x_i - x_i = 0``).
        """
        cfg = self.cfg
        X = self.positions
        p = X.shape[0]
        G = cfg.g0 * float(np.exp(-cfg.alpha * iteration / cfg.max_iterations))
        k = kbest_size(iteration, cfg.max_iterations, p) if cfg.elite_decay else p
        elite = np.argsort(self.fitness, kind="stable")[:k]
        masses = agent_masses(self.fitness)
        # Euclidean distances to the elite via the Gram trick.
        sq = np.einsum("ij,ij->i", X, X)
        r2 = sq[:, None] + sq[elite][None, :] - 2.0 * (X @ X[elite].T)
        dist = np.sqrt(np.maximum(r2, 0.0))
        weights = rng.random((p, k)) * masses[elite][None, :] / (dist + _EPS)
        return G * (weights @ X[elite] - weights.sum(axis=1)[:, None] * X)

    def step(
        self,
        iteration: int,
        rng: np.random.Generator,
        incumbent_assignment: np.ndarray | None,
        incumbent_fitness: float,
    ) -> Candidate:
        cfg = self.cfg
        p, n = self.positions.shape
        m = self.context.num_vms
        with _TEL.span("gsa.position_update"):
            accel = self._acceleration(iteration, rng)
            self.velocities = rng.random((p, n)) * self.velocities + accel
            self.positions = np.clip(
                self.positions + self.velocities, 0.0, float(m - 1)
            )
        ints = self._discretise(self.positions)
        with _TEL.span("gsa.fitness"):
            self.fitness = self.kernel.batch_makespans(ints)
        g = int(np.argmin(self.fitness))
        return Candidate(ints[g], float(self.fitness[g]), evaluations=p)


class GravitationalSearchScheduler(Scheduler):
    """GSA cloudlet scheduler minimising estimated makespan.

    Parameters
    ----------
    num_agents:
        Population size.
    max_iterations:
        Velocity/position update rounds.
    g0:
        Initial gravitational constant ``G(0)``.
    alpha:
        Decay exponent of ``G(t) = G0 · exp(-alpha · t / T)``.
    elite_decay:
        Shrink the attracting elite (``Kbest``) linearly from the whole
        population to one agent; ``False`` keeps every agent attracting
        throughout (the original GSA ablation).
    patience:
        Stop early after this many iterations without improving the
        incumbent (``None`` disables early stopping).
    max_evaluations:
        Optional shared evaluation budget across the run.
    """

    def __init__(
        self,
        num_agents: int = 30,
        max_iterations: int = 50,
        g0: float = 1.0,
        alpha: float = 20.0,
        elite_decay: bool = True,
        patience: int | None = None,
        max_evaluations: int | None = None,
    ) -> None:
        if num_agents < 2:
            raise ValueError(f"num_agents must be >= 2, got {num_agents}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if g0 <= 0:
            raise ValueError(f"g0 must be positive, got {g0}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1 or None, got {patience}")
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError(
                f"max_evaluations must be >= 1 or None, got {max_evaluations}"
            )
        self.num_agents = num_agents
        self.max_iterations = max_iterations
        self.g0 = g0
        self.alpha = alpha
        self.elite_decay = elite_decay
        self.patience = patience
        self.max_evaluations = max_evaluations

    @property
    def name(self) -> str:
        return "gsa"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        operator = _GsaOperator(self, context)
        outcome = IterativeOptimizer(
            operator,
            max_iterations=self.max_iterations,
            patience=self.patience,
            max_evaluations=self.max_evaluations,
        ).run(context.rng)
        return SchedulingResult(
            assignment=outcome.assignment,
            scheduler_name=self.name,
            info={
                "best_makespan_estimate": outcome.fitness,
                "iterations": outcome.iterations,
                "evaluations": outcome.evaluations,
                "stopped": outcome.stopped,
                "convergence": outcome.trace.as_dict() if outcome.trace else None,
            },
        )


__all__ = ["GravitationalSearchScheduler", "agent_masses", "kbest_size"]
