"""Honey Bee Optimization scheduler (paper Section III).

The colony metaphor maps onto the cloud as follows (Fig. 1 of the paper):
cloudlets are split into groups (food sources); *forager* VMs — one per
datacenter — evaluate how profitable their datacenter is for a group via
the fitness/cost function of Eq. 1-4::

    DCcost(i, j) = (Size_i + M_i + BW_i) * TCL_j          (Eq. 1)
    Size_i = dchCPS * sizeVM_i                            (Eq. 2)
    M_i    = dchCPR * RAMVM_i                             (Eq. 3)
    BW_i   = dchCPB * BwVM_i                              (Eq. 4)

i.e. the datacenter's unit prices applied to the VM's storage, memory and
bandwidth footprint, scaled by the cloudlet length ``TCL``.  *Scout* VMs
then carry tasks to the best VM inside the winning (cheapest) datacenter.

Interpretation of Algorithm 1 (the paper's pseudocode is informal):

* cloudlets are divided into ``q`` groups, ``q`` = number of datacenters;
  groups are processed largest-total-length first (``max(Groups_k)``);
* for each cloudlet the cheapest *non-saturated* datacenter wins; the
  load-balance factor ``facLB`` caps the fraction of the whole batch any
  single datacenter may take (the ``facLB ≤ VMsAssigned(DC)`` test), and a
  saturated datacenter spills tasks to the next cheapest one;
* inside a datacenter the scout picks the least-loaded VM — backlog
  measured in expected seconds (Algorithm 1 line 11's ``VMleastLoad``),
  which is the reading under which HBO lands between ACO and the Base
  Test on makespan (Fig. 6a) while being driven by cost (Fig. 6d).  An
  optional ``scout_time_bias`` adds a fraction of the candidate's own
  execution time to the backlog key (``bias=1`` makes scouts
  completion-greedy — the ablation benches quantify how that collapses
  HBO into greedy-MCT and destroys the paper's ACO-vs-HBO gap).

For fleets whose per-datacenter VMs share one MIPS rating the scout rule
degenerates to least-backlog regardless of bias, handled with a heap in
O(n log m); the general heterogeneous case uses a vectorised argmin per
assignment.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class HoneyBeeScheduler(Scheduler):
    """HBO cloudlet scheduler.

    Parameters
    ----------
    load_balance_factor:
        ``facLB``: maximum fraction of the cloudlet batch a single
        datacenter may receive before spilling to the next cheapest.
        Must lie in ``(0, 1]``; 1 disables spilling.
    scout_time_bias:
        Weight of the candidate VM's own execution time in the scout's
        backlog key (0 = pure least-backlog, the paper reading; 1 =
        completion-greedy).  Must be non-negative.
    """

    def __init__(
        self, load_balance_factor: float = 0.5, scout_time_bias: float = 0.0
    ) -> None:
        if not 0 < load_balance_factor <= 1:
            raise ValueError(
                f"load_balance_factor must be in (0, 1], got {load_balance_factor}"
            )
        if scout_time_bias < 0:
            raise ValueError(f"scout_time_bias must be non-negative, got {scout_time_bias}")
        self.load_balance_factor = load_balance_factor
        self.scout_time_bias = scout_time_bias

    @property
    def name(self) -> str:
        return "honeybee"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        arr = context.arrays
        n, q = context.num_cloudlets, context.num_datacenters

        dc_vms: list[np.ndarray] = [
            np.flatnonzero(arr.vm_datacenter == dc) for dc in range(q)
        ]

        # Foragers: per-datacenter mean VM footprint priced with that
        # datacenter's unit costs — the (Size + M + BW) factor of Eq. 1.
        with _TEL.span("hbo.forage"):
            unit_cost = np.full(q, np.inf)
            for dc in range(q):
                members = dc_vms[dc]
                if members.size == 0:
                    continue
                unit_cost[dc] = (
                    arr.vm_size[members].mean() * arr.dc_cost_per_storage[dc]
                    + arr.vm_ram[members].mean() * arr.dc_cost_per_mem[dc]
                    + arr.vm_bw[members].mean() * arr.dc_cost_per_bw[dc]
                )
            dc_rank = np.argsort(unit_cost, kind="stable")

        # Scout state: per-datacenter backlog (expected seconds per VM).
        loads: list[np.ndarray] = [np.zeros(members.size) for members in dc_vms]
        inv_mips: list[np.ndarray] = [
            1.0 / (arr.vm_mips[members] * arr.vm_pes[members]) for members in dc_vms
        ]
        # Equal-MIPS datacenters admit an exact heap shortcut (least backlog
        # == earliest completion when execution times are identical per VM).
        uniform: list[bool] = [
            members.size > 0 and float(np.ptp(arr.vm_mips[members])) == 0.0
            for members in dc_vms
        ]
        heaps: list[list[tuple[float, int]]] = [
            [(0.0, pos) for pos in range(members.size)] if uniform[dc] else []
            for dc, members in enumerate(dc_vms)
        ]

        cap = max(1, int(np.ceil(self.load_balance_factor * n)))
        assigned_per_dc = np.zeros(q, dtype=np.int64)
        assignment = np.full(n, -1, dtype=np.int64)
        spills = 0

        # Foraging: process cloudlet groups largest first (Alg. 1 lines 1-6).
        with _TEL.span("hbo.scout"):
            groups = self._divide(n, q)
            group_order = sorted(
                range(len(groups)),
                key=lambda g: float(arr.cloudlet_length[groups[g]].sum()),
                reverse=True,
            )
            for g in group_order:
                for cloudlet_idx in groups[g]:
                    dc = self._pick_datacenter(dc_rank, assigned_per_dc, cap, dc_vms)
                    if dc != dc_rank[0]:
                        spills += 1
                    length = float(arr.cloudlet_length[cloudlet_idx])
                    if uniform[dc]:
                        # Equal MIPS: the scout key orders identically to pure
                        # backlog for every bias, so the heap stays exact.
                        backlog, pos = heapq.heappop(heaps[dc])
                        exec_seconds = length * inv_mips[dc][pos]
                        heapq.heappush(heaps[dc], (backlog + exec_seconds, pos))
                    else:
                        exec_seconds = length * inv_mips[dc]
                        key = loads[dc] + self.scout_time_bias * exec_seconds
                        pos = int(np.argmin(key))
                        loads[dc][pos] += exec_seconds[pos]
                    assignment[cloudlet_idx] = dc_vms[dc][pos]
                    assigned_per_dc[dc] += 1

        return SchedulingResult(
            assignment=assignment,
            scheduler_name=self.name,
            info={
                "dc_unit_cost": unit_cost.tolist(),
                "assigned_per_dc": assigned_per_dc.tolist(),
                "spills": spills,
                "cap_per_dc": cap,
            },
        )

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _divide(n: int, q: int) -> list[np.ndarray]:
        """Split cloudlet indices into ``q`` contiguous groups (Alg. 1 line 1)."""
        return [chunk for chunk in np.array_split(np.arange(n), q) if chunk.size]

    @staticmethod
    def _pick_datacenter(
        dc_rank: np.ndarray,
        assigned_per_dc: np.ndarray,
        cap: int,
        dc_vms: list[np.ndarray],
    ) -> int:
        """Cheapest datacenter with VMs that has not hit the facLB cap.

        Falls back to the cheapest datacenter with VMs when every
        datacenter is saturated (the batch must still be placed).
        """
        fallback = -1
        for dc in dc_rank:
            dc = int(dc)
            if dc_vms[dc].size == 0:
                continue
            if fallback < 0:
                fallback = dc
            if assigned_per_dc[dc] < cap:
                return dc
        if fallback < 0:
            raise ValueError("no datacenter has any VMs")
        return fallback


__all__ = ["HoneyBeeScheduler"]
