"""The paper's future-work hybrid scheduler.

Section VII sketches "a hybrid scheduling algorithm in which the
conditions of the system and environment against pre-selected requirements
function as key elements to select a specific behavior of the scheduling
algorithm", to be built as "a modular solution".

This module realises that sketch: the hybrid wraps the studied schedulers
as interchangeable modules and dispatches per batch:

* an explicit :class:`HybridObjective` forces the matching specialist —
  ``PERFORMANCE`` → ACO (best makespan in the paper's Fig. 6a),
  ``COST`` → HBO (best processing cost, Fig. 6d),
  ``BALANCE`` → RBS (best non-trivial imbalance, Fig. 6c);
* ``AUTO`` inspects the environment: a (near-)homogeneous fleet needs no
  advanced decision-making, so the Base Test wins on scheduling time
  (the paper's homogeneous conclusion); a heterogeneous fleet with widely
  spread datacenter prices favours HBO; otherwise ACO.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.schedulers.aco import AntColonyScheduler
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult
from repro.schedulers.hbo import HoneyBeeScheduler
from repro.schedulers.rbs import RandomBiasedSamplingScheduler
from repro.schedulers.round_robin import RoundRobinScheduler


class HybridObjective(enum.Enum):
    """Which requirement the hybrid should optimise for."""

    AUTO = "auto"
    PERFORMANCE = "performance"
    COST = "cost"
    BALANCE = "balance"


class HybridScheduler(Scheduler):
    """Objective-driven dispatch over the paper's schedulers.

    Parameters
    ----------
    objective:
        The pre-selected requirement; ``AUTO`` derives it from the
        environment (see module docstring).
    heterogeneity_threshold:
        Coefficient of variation of VM MIPS below which the fleet counts
        as homogeneous in ``AUTO`` mode.
    cost_spread_threshold:
        Relative spread (max/min) of datacenter composite unit prices
        above which ``AUTO`` prefers HBO.
    **scheduler_kwargs:
        ``aco=``, ``hbo=``, ``rbs=``, ``base=`` keyword overrides to
        inject configured module instances.
    """

    def __init__(
        self,
        objective: HybridObjective | str = HybridObjective.AUTO,
        heterogeneity_threshold: float = 0.05,
        cost_spread_threshold: float = 1.5,
        aco: AntColonyScheduler | None = None,
        hbo: HoneyBeeScheduler | None = None,
        rbs: RandomBiasedSamplingScheduler | None = None,
        base: RoundRobinScheduler | None = None,
    ) -> None:
        if isinstance(objective, str):
            objective = HybridObjective(objective)
        if heterogeneity_threshold < 0:
            raise ValueError("heterogeneity_threshold must be non-negative")
        if cost_spread_threshold < 1:
            raise ValueError("cost_spread_threshold must be >= 1")
        self.objective = objective
        self.heterogeneity_threshold = heterogeneity_threshold
        self.cost_spread_threshold = cost_spread_threshold
        self._aco = aco or AntColonyScheduler()
        self._hbo = hbo or HoneyBeeScheduler()
        self._rbs = rbs or RandomBiasedSamplingScheduler()
        self._base = base or RoundRobinScheduler()

    @property
    def name(self) -> str:
        return "hybrid"

    # -- dispatch ------------------------------------------------------------------

    def choose_module(self, context: SchedulingContext) -> Scheduler:
        """Resolve which module will handle this batch (exposed for tests)."""
        if self.objective is HybridObjective.PERFORMANCE:
            return self._aco
        if self.objective is HybridObjective.COST:
            return self._hbo
        if self.objective is HybridObjective.BALANCE:
            return self._rbs
        return self._auto_choice(context)

    def _auto_choice(self, context: SchedulingContext) -> Scheduler:
        arr = context.arrays
        mips = arr.vm_mips
        cv = float(mips.std() / mips.mean()) if mips.mean() > 0 else 0.0
        if cv <= self.heterogeneity_threshold:
            # Homogeneous fleet: cyclic assignment is optimal and cheapest
            # to compute (the paper's homogeneous-scenario conclusion).
            return self._base
        composite = (
            arr.dc_cost_per_mem + arr.dc_cost_per_storage + arr.dc_cost_per_bw
        )
        low = float(composite.min())
        spread = float(composite.max()) / low if low > 0 else np.inf
        if spread >= self.cost_spread_threshold:
            return self._hbo
        return self._aco

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        module = self.choose_module(context)
        result = module.schedule(context)
        info = {
            "delegated_to": module.name,
            "objective": self.objective.value,
            **{f"module_{k}": v for k, v in result.info.items()},
        }
        # Iterative delegates (ACO today) run on the shared optimizer stack;
        # surface their convergence trace under the uniform key so benches
        # can plot hybrid runs alongside the other metaheuristics.
        if "convergence" in result.info:
            info["convergence"] = result.info["convergence"]
        return SchedulingResult(
            assignment=result.assignment,
            scheduler_name=self.name,
            info=info,
        )


__all__ = ["HybridScheduler", "HybridObjective"]
