"""Max-Min and Min-Min heuristics.

The related-work section cites an improved Max-Min for cloud task
scheduling [Devipriya & Ramesh 2013].  Both heuristics repeatedly compute,
for every unscheduled cloudlet, its minimum completion time over all VMs:

* **Max-Min** schedules the cloudlet whose minimum completion time is
  *largest* (big tasks first, onto the machine that finishes them
  soonest);
* **Min-Min** schedules the cloudlet whose minimum completion time is
  *smallest* (small tasks first).

Implemented with an O(n·m) vectorised update per placement rather than the
textbook O(n²·m) rebuild: after placing a cloudlet only the chosen VM's
ready time changes, so only that column of the completion matrix is
refreshed.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class _MaxMinBase(Scheduler):
    """Shared machinery; subclasses pick the selection direction."""

    #: True for Max-Min (argmax over min completion), False for Min-Min.
    _select_max: bool

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        arr = context.arrays
        n, m = context.num_cloudlets, context.num_vms
        inv_capacity = 1.0 / (arr.vm_mips * arr.vm_pes)
        exec_times = np.outer(arr.cloudlet_length, inv_capacity)  # (n, m)
        ready = np.zeros(m)
        completion = exec_times + ready  # (n, m)
        unscheduled = np.ones(n, dtype=bool)
        assignment = np.empty(n, dtype=np.int64)

        best_vm = np.argmin(completion, axis=1)
        best_time = completion[np.arange(n), best_vm]

        for _ in range(n):
            masked = np.where(unscheduled, best_time, -np.inf if self._select_max else np.inf)
            i = int(np.argmax(masked) if self._select_max else np.argmin(masked))
            j = int(best_vm[i])
            assignment[i] = j
            unscheduled[i] = False
            ready[j] += exec_times[i, j]
            # Only column j changed; update the per-row minima incrementally.
            completion[:, j] = exec_times[:, j] + ready[j]
            affected = unscheduled & (best_vm == j)
            if affected.any():
                rows = np.nonzero(affected)[0]
                best_vm[rows] = np.argmin(completion[rows], axis=1)
                best_time[rows] = completion[rows, best_vm[rows]]
            # Rows whose previous best was elsewhere can only improve via
            # column j if it got *faster*, which never happens (ready grows),
            # so they stay valid.
        return SchedulingResult(
            assignment=assignment,
            scheduler_name=self.name,
            info={"estimated_makespan": float(ready.max())},
        )


class MaxMinScheduler(_MaxMinBase):
    """Largest-task-first minimum-completion-time heuristic."""

    _select_max = True

    @property
    def name(self) -> str:
        return "maxmin"


class MinMinScheduler(_MaxMinBase):
    """Smallest-task-first minimum-completion-time heuristic."""

    _select_max = False

    @property
    def name(self) -> str:
        return "minmin"


__all__ = ["MaxMinScheduler", "MinMinScheduler"]
