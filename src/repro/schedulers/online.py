"""Online (per-arrival) scheduling policies.

The paper's experiments are batch-mode, but its motivation is dynamic
demand; this module provides the policy interface for the online extension
(:mod:`repro.cloud.online`): cloudlets arrive over simulated time and the
policy places each one using only the information available *at that
moment* — the cloudlet's requirements plus the broker's live estimate of
each VM's outstanding work.

Two families:

* native online policies (:class:`OnlineRoundRobin`,
  :class:`OnlineLeastLoaded`, :class:`OnlineGreedyMCT`,
  :class:`OnlineRandom`), and
* :class:`BatchAdapter`, which replays any *batch* scheduler from this
  package one arrival wave at a time — demonstrating exactly what the
  batch formulations miss (they cannot see the backlog their earlier waves
  created).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioArrays


class OnlineScheduler(abc.ABC):
    """Places one cloudlet at a time as it arrives."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Registry-style policy name."""

    def start(self, context: SchedulingContext) -> None:
        """Hook called once before the first arrival (default: no-op)."""

    @abc.abstractmethod
    def assign(
        self,
        cloudlet_idx: int,
        now: float,
        backlog: np.ndarray,
        context: SchedulingContext,
    ) -> int:
        """Return the VM index for ``cloudlet_idx``.

        Parameters
        ----------
        now:
            Current simulation time.
        backlog:
            Per-VM estimated outstanding execution seconds, maintained by
            the broker (grows on submission, shrinks on completion).
        """


class OnlineRoundRobin(OnlineScheduler):
    """Cyclic placement, ignoring state — the online Base Test."""

    def __init__(self) -> None:
        self._next = 0

    @property
    def name(self) -> str:
        return "online-roundrobin"

    def start(self, context: SchedulingContext) -> None:
        self._next = 0

    def assign(self, cloudlet_idx, now, backlog, context) -> int:
        vm = self._next
        self._next = (self._next + 1) % context.num_vms
        return vm


class OnlineRandom(OnlineScheduler):
    """Uniform random placement."""

    @property
    def name(self) -> str:
        return "online-random"

    def assign(self, cloudlet_idx, now, backlog, context) -> int:
        return int(context.rng.integers(0, context.num_vms))


class OnlineLeastLoaded(OnlineScheduler):
    """Send each arrival to the VM with the smallest outstanding work."""

    @property
    def name(self) -> str:
        return "online-leastloaded"

    def assign(self, cloudlet_idx, now, backlog, context) -> int:
        return int(np.argmin(backlog))


class OnlineGreedyMCT(OnlineScheduler):
    """Minimum completion time: backlog plus this cloudlet's execution."""

    @property
    def name(self) -> str:
        return "online-greedy-mct"

    def assign(self, cloudlet_idx, now, backlog, context) -> int:
        arr = context.arrays
        exec_times = arr.cloudlet_length[cloudlet_idx] / (arr.vm_mips * arr.vm_pes)
        return int(np.argmin(backlog + exec_times))


def _subset_arrays(arrays: ScenarioArrays, cloudlet_indices: np.ndarray) -> ScenarioArrays:
    """Array view restricted to a subset of cloudlets (VMs/DCs unchanged)."""
    return ScenarioArrays(
        cloudlet_length=arrays.cloudlet_length[cloudlet_indices],
        cloudlet_pes=arrays.cloudlet_pes[cloudlet_indices],
        cloudlet_file_size=arrays.cloudlet_file_size[cloudlet_indices],
        cloudlet_output_size=arrays.cloudlet_output_size[cloudlet_indices],
        vm_mips=arrays.vm_mips,
        vm_pes=arrays.vm_pes,
        vm_ram=arrays.vm_ram,
        vm_bw=arrays.vm_bw,
        vm_size=arrays.vm_size,
        vm_datacenter=arrays.vm_datacenter,
        dc_cost_per_mem=arrays.dc_cost_per_mem,
        dc_cost_per_storage=arrays.dc_cost_per_storage,
        dc_cost_per_bw=arrays.dc_cost_per_bw,
        dc_cost_per_cpu=arrays.dc_cost_per_cpu,
    )


class BatchAdapter(OnlineScheduler):
    """Run a batch scheduler one arrival wave at a time.

    Arrivals sharing one simulation instant form a wave; the wrapped batch
    scheduler solves each wave as an independent batch problem (it never
    sees the live backlog — by design, so the adapter exposes the batch
    formulations' blind spot under sustained load).
    """

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler
        self._pending: list[int] = []
        self._wave_assignment: dict[int, int] = {}

    @property
    def name(self) -> str:
        return f"batch[{self.scheduler.name}]"

    def start(self, context: SchedulingContext) -> None:
        self._pending.clear()
        self._wave_assignment.clear()

    def begin_wave(self, cloudlet_indices: np.ndarray, context: SchedulingContext) -> None:
        """Solve one wave with the wrapped batch scheduler."""
        indices = np.asarray(cloudlet_indices, dtype=np.int64)
        sub_context = SchedulingContext(
            arrays=_subset_arrays(context.arrays, indices),
            rng=context.rng,
            scenario_name=context.scenario_name,
        )
        result = self.scheduler.schedule_checked(sub_context)
        self._wave_assignment = {
            int(ci): int(vm) for ci, vm in zip(indices, result.assignment)
        }

    def assign(self, cloudlet_idx, now, backlog, context) -> int:
        try:
            return self._wave_assignment[int(cloudlet_idx)]
        except KeyError:
            raise RuntimeError(
                f"cloudlet {cloudlet_idx} was not part of the current wave; "
                "the online broker must call begin_wave first"
            ) from None


__all__ = [
    "OnlineScheduler",
    "OnlineRoundRobin",
    "OnlineRandom",
    "OnlineLeastLoaded",
    "OnlineGreedyMCT",
    "BatchAdapter",
]
