"""Priority-based cost scheduler.

Reimplements the related-work baseline of Selvarani & Sadhasivam 2010
("Improved cost-based algorithm for task scheduling in cloud computing",
reference [25] of the paper): cloudlets are split into three priority
bands by their execution cost, and each band is scheduled onto the VM
tier with the matching price/performance profile — expensive tasks onto
cheap-but-capable VMs first.

Concretely:

1. price every (cloudlet, VM-tier) pair with the owning datacenter's unit
   costs;
2. sort cloudlets by standalone cost estimate and cut the list into
   ``high`` / ``medium`` / ``low`` priority thirds;
3. schedule bands in priority order; within a band, each cloudlet goes to
   the VM minimising ``cost + load_weight * current_load`` so cheap VMs
   are preferred but not swamped.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class PriorityCostScheduler(Scheduler):
    """Three-band cost-priority scheduler.

    Parameters
    ----------
    load_weight:
        Relative weight of a VM's accumulated load (expected seconds)
        against its monetary cost when placing a cloudlet.  0 reduces to
        pure cheapest-VM; larger values trade cost for balance.
    bands:
        Number of priority bands (the cited work uses 3).
    """

    def __init__(self, load_weight: float = 1.0, bands: int = 3) -> None:
        if load_weight < 0:
            raise ValueError(f"load_weight must be non-negative, got {load_weight}")
        if bands < 1:
            raise ValueError(f"bands must be >= 1, got {bands}")
        self.load_weight = load_weight
        self.bands = bands

    @property
    def name(self) -> str:
        return "priority-cost"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        arr = context.arrays
        n, m = context.num_cloudlets, context.num_vms

        dc = arr.vm_datacenter
        # $ per second of each VM and fixed per-cloudlet overheads.
        cpu_rate = arr.dc_cost_per_cpu[dc]  # (m,)
        fixed = (
            arr.dc_cost_per_mem[dc] * arr.vm_ram
            + arr.dc_cost_per_storage[dc] * arr.vm_size
        )
        inv_mips = 1.0 / (arr.vm_mips * arr.vm_pes)

        # Standalone cost estimate per cloudlet: price on the *average* VM.
        mean_rate = float((cpu_rate * inv_mips).mean())
        est_cost = arr.cloudlet_length * mean_rate + float(fixed.mean())
        order = np.argsort(est_cost, kind="stable")[::-1]  # most expensive first
        band_of = np.empty(n, dtype=np.int64)
        for b, chunk in enumerate(np.array_split(order, self.bands)):
            band_of[chunk] = b

        load = np.zeros(m)
        assignment = np.empty(n, dtype=np.int64)
        for b in range(self.bands):
            for i in np.nonzero(band_of == b)[0]:
                exec_secs = arr.cloudlet_length[i] * inv_mips
                bw_cost = arr.dc_cost_per_bw[dc] * (
                    arr.cloudlet_file_size[i] + arr.cloudlet_output_size[i]
                )
                cost = cpu_rate * exec_secs + fixed + bw_cost
                score = cost + self.load_weight * (load + exec_secs)
                j = int(np.argmin(score))
                assignment[i] = j
                load[j] += exec_secs[j]
        return SchedulingResult(
            assignment=assignment,
            scheduler_name=self.name,
            info={"bands": self.bands},
        )


__all__ = ["PriorityCostScheduler"]
