"""Discrete Particle Swarm Optimization scheduler.

Related-work baseline (references [18], [23], [30] of the paper): each
particle's *position* is a complete assignment vector (one VM index per
cloudlet, the integer encoding of Pandey et al.).  Velocity is modelled
probabilistically, as usual for discrete PSO: at every step each component
of a particle either keeps its value, jumps to the particle's personal
best, jumps to the global best, or re-randomises (exploration), with
probabilities derived from the inertia/cognitive/social coefficients.

Fitness combines the two objectives the cited PSO works optimise — expected
makespan and monetary cost — through ``cost_weight``.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    SchedulingResult,
)


class ParticleSwarmScheduler(Scheduler):
    """Discrete PSO cloudlet scheduler.

    Parameters
    ----------
    num_particles:
        Swarm size.
    max_iterations:
        Velocity/position update rounds.
    inertia:
        Probability a component keeps its current value.
    cognitive:
        Relative pull toward the particle's personal best.
    social:
        Relative pull toward the global best.
    mutation_rate:
        Per-component probability of a uniform random jump (keeps the
        swarm from collapsing).
    cost_weight:
        Weight of normalised monetary cost against normalised makespan in
        the fitness (0 = pure makespan).
    """

    def __init__(
        self,
        num_particles: int = 30,
        max_iterations: int = 50,
        inertia: float = 0.5,
        cognitive: float = 1.5,
        social: float = 1.5,
        mutation_rate: float = 0.02,
        cost_weight: float = 0.0,
    ) -> None:
        if num_particles < 2:
            raise ValueError(f"num_particles must be >= 2, got {num_particles}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0 <= inertia <= 1:
            raise ValueError(f"inertia must be in [0, 1], got {inertia}")
        if cognitive < 0 or social < 0:
            raise ValueError("cognitive and social must be non-negative")
        if cognitive + social == 0:
            raise ValueError("cognitive + social must be positive")
        if not 0 <= mutation_rate <= 1:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        if cost_weight < 0:
            raise ValueError(f"cost_weight must be non-negative, got {cost_weight}")
        self.num_particles = num_particles
        self.max_iterations = max_iterations
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self.mutation_rate = mutation_rate
        self.cost_weight = cost_weight

    @property
    def name(self) -> str:
        return "pso"

    # -- fitness -----------------------------------------------------------------

    def _fitness(self, positions: np.ndarray, ctx: SchedulingContext) -> np.ndarray:
        """Vectorised fitness of a (particles, n) position block (lower = better)."""
        arr = ctx.arrays
        p, n = positions.shape
        m = ctx.num_vms
        capacity = arr.vm_mips * arr.vm_pes
        # Per-particle per-VM work via one bincount over offset indices.
        offsets = (np.arange(p)[:, None] * m + positions).ravel()
        lengths = np.broadcast_to(arr.cloudlet_length, (p, n)).ravel()
        work = np.bincount(offsets, weights=lengths, minlength=p * m).reshape(p, m)
        makespan = (work / capacity).max(axis=1)
        if self.cost_weight == 0:
            return makespan
        dc = arr.vm_datacenter[positions]  # (p, n)
        exec_secs = np.broadcast_to(arr.cloudlet_length, (p, n)) / (
            arr.vm_mips[positions] * arr.vm_pes[positions]
        )
        cost = (
            arr.dc_cost_per_cpu[dc] * exec_secs
            + arr.dc_cost_per_mem[dc] * arr.vm_ram[positions]
            + arr.dc_cost_per_storage[dc] * arr.vm_size[positions]
            + arr.dc_cost_per_bw[dc]
            * (arr.cloudlet_file_size + arr.cloudlet_output_size)
        ).sum(axis=1)
        # Normalise each objective by its swarm mean so the weight is scale-free.
        mk = makespan / max(makespan.mean(), 1e-12)
        co = cost / max(cost.mean(), 1e-12)
        return mk + self.cost_weight * co

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        n, m = context.num_cloudlets, context.num_vms
        rng = context.rng
        p = self.num_particles

        positions = rng.integers(0, m, size=(p, n), dtype=np.int64)
        fitness = self._fitness(positions, context)
        pbest = positions.copy()
        pbest_fit = fitness.copy()
        g = int(np.argmin(fitness))
        gbest = positions[g].copy()
        gbest_fit = float(fitness[g])

        pull = self.cognitive + self.social
        p_pbest = (1 - self.inertia) * self.cognitive / pull
        p_gbest = (1 - self.inertia) * self.social / pull

        for _ in range(self.max_iterations):
            u = rng.random((p, n))
            take_pbest = u < p_pbest
            take_gbest = (u >= p_pbest) & (u < p_pbest + p_gbest)
            positions = np.where(take_pbest, pbest, positions)
            positions = np.where(take_gbest, np.broadcast_to(gbest, (p, n)), positions)
            mutate = rng.random((p, n)) < self.mutation_rate
            if mutate.any():
                positions = np.where(
                    mutate, rng.integers(0, m, size=(p, n), dtype=np.int64), positions
                )
            fitness = self._fitness(positions, context)
            improved = fitness < pbest_fit
            pbest[improved] = positions[improved]
            pbest_fit[improved] = fitness[improved]
            g = int(np.argmin(pbest_fit))
            if pbest_fit[g] < gbest_fit:
                gbest = pbest[g].copy()
                gbest_fit = float(pbest_fit[g])

        return SchedulingResult(
            assignment=gbest,
            scheduler_name=self.name,
            info={"best_fitness": gbest_fit, "iterations": self.max_iterations},
        )


__all__ = ["ParticleSwarmScheduler"]
