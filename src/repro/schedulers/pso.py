"""Discrete Particle Swarm Optimization scheduler.

Related-work baseline (references [18], [23], [30] of the paper): each
particle's *position* is a complete assignment vector (one VM index per
cloudlet, the integer encoding of Pandey et al.).  Velocity is modelled
probabilistically, as usual for discrete PSO: at every step each component
of a particle either keeps its value, jumps to the particle's personal
best, jumps to the global best, or re-randomises (exploration), with
probabilities derived from the inertia/cognitive/social coefficients.

Fitness combines the two objectives the cited PSO works optimise — expected
makespan and monetary cost — through ``cost_weight``.  The makespan term is
evaluated for the whole swarm at once by
:meth:`repro.optim.FitnessKernel.batch_makespans`; the iteration loop,
global-best bookkeeping and convergence trace come from
:class:`repro.optim.IterativeOptimizer`.
"""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.optim import Candidate, FitnessKernel, IterativeOptimizer, MoveOperator
from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    SchedulingResult,
)


class _PsoOperator(MoveOperator):
    """Probabilistic position update over the whole swarm per step."""

    def __init__(self, cfg: "ParticleSwarmScheduler", context: SchedulingContext) -> None:
        self.cfg = cfg
        self.context = context

    # -- fitness -----------------------------------------------------------------

    def _fitness(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised fitness of a (particles, n) position block (lower = better)."""
        with _TEL.span("pso.fitness"):
            return self._fitness_inner(positions)

    def _fitness_inner(self, positions: np.ndarray) -> np.ndarray:
        cfg = self.cfg
        arr = self.context.arrays
        makespan = self.kernel.batch_makespans(positions)
        if cfg.cost_weight == 0:
            return makespan
        p, n = positions.shape
        dc = arr.vm_datacenter[positions]  # (p, n)
        exec_secs = np.broadcast_to(arr.cloudlet_length, (p, n)) / (
            arr.vm_mips[positions] * arr.vm_pes[positions]
        )
        cost = (
            arr.dc_cost_per_cpu[dc] * exec_secs
            + arr.dc_cost_per_mem[dc] * arr.vm_ram[positions]
            + arr.dc_cost_per_storage[dc] * arr.vm_size[positions]
            + arr.dc_cost_per_bw[dc]
            * (arr.cloudlet_file_size + arr.cloudlet_output_size)
        ).sum(axis=1)
        # Normalise each objective by its swarm mean so the weight is scale-free.
        mk = makespan / max(makespan.mean(), 1e-12)
        co = cost / max(cost.mean(), 1e-12)
        return mk + cfg.cost_weight * co

    # -- lifecycle ----------------------------------------------------------------

    def initialize(self, rng: np.random.Generator) -> Candidate:
        cfg = self.cfg
        n, m = self.context.num_cloudlets, self.context.num_vms
        p = cfg.num_particles
        # Batch evaluation only — no per-pair matrix needed.
        self.kernel = FitnessKernel(
            self.context.arrays, time_model="compute", max_matrix_cells=0
        )
        self.positions = rng.integers(0, m, size=(p, n), dtype=np.int64)
        fitness = self._fitness(self.positions)
        self.pbest = self.positions.copy()
        self.pbest_fit = fitness.copy()
        pull = cfg.cognitive + cfg.social
        self._p_pbest = (1 - cfg.inertia) * cfg.cognitive / pull
        self._p_gbest = (1 - cfg.inertia) * cfg.social / pull
        g = int(np.argmin(fitness))
        return Candidate(self.positions[g], float(fitness[g]), evaluations=p)

    def step(
        self,
        iteration: int,
        rng: np.random.Generator,
        incumbent_assignment: np.ndarray | None,
        incumbent_fitness: float,
    ) -> Candidate:
        cfg = self.cfg
        p, n = self.positions.shape
        m = self.context.num_vms
        with _TEL.span("pso.position_update"):
            u = rng.random((p, n))
            take_pbest = u < self._p_pbest
            take_gbest = (u >= self._p_pbest) & (u < self._p_pbest + self._p_gbest)
            positions = np.where(take_pbest, self.pbest, self.positions)
            positions = np.where(
                take_gbest, np.broadcast_to(incumbent_assignment, (p, n)), positions
            )
            mutate = rng.random((p, n)) < cfg.mutation_rate
            if mutate.any():
                positions = np.where(
                    mutate, rng.integers(0, m, size=(p, n), dtype=np.int64), positions
                )
        fitness = self._fitness(positions)
        improved = fitness < self.pbest_fit
        self.pbest[improved] = positions[improved]
        self.pbest_fit[improved] = fitness[improved]
        self.positions = positions
        g = int(np.argmin(self.pbest_fit))
        return Candidate(self.pbest[g], float(self.pbest_fit[g]), evaluations=p)


class ParticleSwarmScheduler(Scheduler):
    """Discrete PSO cloudlet scheduler.

    Parameters
    ----------
    num_particles:
        Swarm size.
    max_iterations:
        Velocity/position update rounds.
    inertia:
        Probability a component keeps its current value.
    cognitive:
        Relative pull toward the particle's personal best.
    social:
        Relative pull toward the global best.
    mutation_rate:
        Per-component probability of a uniform random jump (keeps the
        swarm from collapsing).
    cost_weight:
        Weight of normalised monetary cost against normalised makespan in
        the fitness (0 = pure makespan).
    patience:
        Stop early after this many iterations without improving the global
        best (``None`` disables early stopping).
    max_evaluations:
        Optional shared evaluation budget across the run.
    """

    def __init__(
        self,
        num_particles: int = 30,
        max_iterations: int = 50,
        inertia: float = 0.5,
        cognitive: float = 1.5,
        social: float = 1.5,
        mutation_rate: float = 0.02,
        cost_weight: float = 0.0,
        patience: int | None = None,
        max_evaluations: int | None = None,
    ) -> None:
        if num_particles < 2:
            raise ValueError(f"num_particles must be >= 2, got {num_particles}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0 <= inertia <= 1:
            raise ValueError(f"inertia must be in [0, 1], got {inertia}")
        if cognitive < 0 or social < 0:
            raise ValueError("cognitive and social must be non-negative")
        if cognitive + social == 0:
            raise ValueError("cognitive + social must be positive")
        if not 0 <= mutation_rate <= 1:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        if cost_weight < 0:
            raise ValueError(f"cost_weight must be non-negative, got {cost_weight}")
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1 or None, got {patience}")
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError(
                f"max_evaluations must be >= 1 or None, got {max_evaluations}"
            )
        self.num_particles = num_particles
        self.max_iterations = max_iterations
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self.mutation_rate = mutation_rate
        self.cost_weight = cost_weight
        self.patience = patience
        self.max_evaluations = max_evaluations

    @property
    def name(self) -> str:
        return "pso"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        operator = _PsoOperator(self, context)
        outcome = IterativeOptimizer(
            operator,
            max_iterations=self.max_iterations,
            patience=self.patience,
            max_evaluations=self.max_evaluations,
        ).run(context.rng)
        return SchedulingResult(
            assignment=outcome.assignment,
            scheduler_name=self.name,
            info={
                "best_fitness": outcome.fitness,
                "iterations": outcome.iterations,
                "evaluations": outcome.evaluations,
                "stopped": outcome.stopped,
                "convergence": outcome.trace.as_dict() if outcome.trace else None,
            },
        )


__all__ = ["ParticleSwarmScheduler"]
