"""Hybrid PSO + gravitational-search (PSOGSA) scheduler.

Related-work extension (Alnusairi, Shahin & Daadaa, arXiv:1806.00329,
after Mirjalili & Hashim's PSOGSA): the exploitation memory of PSO is
grafted onto the exploration physics of GSA.  Each particle keeps a
continuous position in ``[0, num_vms - 1]^num_cloudlets`` (rounded per
component to a VM index for evaluation) and blends two pulls in one
velocity update::

    v = rand ∘ w·v + c1·rand ∘ a_gsa + c2·rand ∘ (gbest - x)

where ``a_gsa`` is the GSA mass-weighted force accumulation over the
whole population (see :mod:`repro.schedulers.gsa` — the same folded
matrix-product form, no (p, p, n) intermediate) and ``gbest`` is the
driver's incumbent, i.e. the social memory GSA itself lacks.  The cited
work is *binary* PSOGSA: positions are bit strings and a transfer
function maps velocity magnitude to a flip probability.  This integer
encoding keeps that discretisation pressure as a per-component
re-randomisation with probability ``mutation_rate`` (the same device the
discrete PSO baseline uses), which plays the bit-flip's role of keeping
the swarm from collapsing onto ``gbest``.

Fitness is the estimated batch makespan via
:meth:`repro.optim.FitnessKernel.batch_makespans`; the loop, incumbent
bookkeeping and convergence trace come from
:class:`repro.optim.IterativeOptimizer`.

Examples
--------
>>> from repro.schedulers.psogsa import PsoGsaScheduler
>>> from repro.schedulers.base import SchedulingContext
>>> from repro.workloads.heterogeneous import heterogeneous_scenario
>>> scenario = heterogeneous_scenario(4, 8, seed=0)
>>> scheduler = PsoGsaScheduler(num_particles=4, max_iterations=3)
>>> a = scheduler.schedule_checked(SchedulingContext.from_scenario(scenario, seed=5))
>>> b = scheduler.schedule_checked(SchedulingContext.from_scenario(scenario, seed=5))
>>> bool((a.assignment == b.assignment).all())
True
>>> a.assignment.shape == (8,) and int(a.assignment.max()) <= 3
True
>>> a.info["stopped"]
'max_iterations'
"""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.optim import Candidate, FitnessKernel, IterativeOptimizer, MoveOperator
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult
from repro.schedulers.gsa import _EPS, agent_masses


class _PsoGsaOperator(MoveOperator):
    """One blended velocity/position update of the whole swarm per step."""

    def __init__(self, cfg: "PsoGsaScheduler", context: SchedulingContext) -> None:
        self.cfg = cfg
        self.context = context

    def _discretise(self, positions: np.ndarray) -> np.ndarray:
        m = self.context.num_vms
        return np.clip(np.rint(positions), 0, m - 1).astype(np.int64)

    def initialize(self, rng: np.random.Generator) -> Candidate:
        cfg = self.cfg
        n, m = self.context.num_cloudlets, self.context.num_vms
        p = cfg.num_particles
        self.kernel = FitnessKernel(
            self.context.arrays, time_model="compute", max_matrix_cells=0
        )
        self.positions = rng.uniform(0.0, float(m - 1), size=(p, n))
        self.velocities = np.zeros((p, n))
        ints = self._discretise(self.positions)
        self.fitness = self.kernel.batch_makespans(ints)
        g = int(np.argmin(self.fitness))
        return Candidate(ints[g], float(self.fitness[g]), evaluations=p)

    def _gsa_acceleration(self, iteration: int, rng: np.random.Generator) -> np.ndarray:
        """Whole-population GSA pull (PSOGSA uses no elite shrinkage)."""
        cfg = self.cfg
        X = self.positions
        p = X.shape[0]
        G = cfg.g0 * float(np.exp(-cfg.alpha * iteration / cfg.max_iterations))
        masses = agent_masses(self.fitness)
        sq = np.einsum("ij,ij->i", X, X)
        r2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
        dist = np.sqrt(np.maximum(r2, 0.0))
        weights = rng.random((p, p)) * masses[None, :] / (dist + _EPS)
        return G * (weights @ X - weights.sum(axis=1)[:, None] * X)

    def step(
        self,
        iteration: int,
        rng: np.random.Generator,
        incumbent_assignment: np.ndarray | None,
        incumbent_fitness: float,
    ) -> Candidate:
        cfg = self.cfg
        p, n = self.positions.shape
        m = self.context.num_vms
        with _TEL.span("psogsa.position_update"):
            accel = self._gsa_acceleration(iteration, rng)
            gbest = np.asarray(incumbent_assignment, dtype=np.float64)
            self.velocities = (
                rng.random((p, n)) * cfg.inertia * self.velocities
                + cfg.accel_coeff * rng.random((p, n)) * accel
                + cfg.social_coeff
                * rng.random((p, n))
                * (gbest[None, :] - self.positions)
            )
            self.positions = np.clip(
                self.positions + self.velocities, 0.0, float(m - 1)
            )
            mutate = rng.random((p, n)) < cfg.mutation_rate
            if mutate.any():
                self.positions = np.where(
                    mutate,
                    rng.uniform(0.0, float(m - 1), size=(p, n)),
                    self.positions,
                )
        ints = self._discretise(self.positions)
        with _TEL.span("psogsa.fitness"):
            self.fitness = self.kernel.batch_makespans(ints)
        g = int(np.argmin(self.fitness))
        return Candidate(ints[g], float(self.fitness[g]), evaluations=p)


class PsoGsaScheduler(Scheduler):
    """Hybrid binary-PSOGSA cloudlet scheduler (integer encoding).

    Parameters
    ----------
    num_particles:
        Swarm size.
    max_iterations:
        Velocity/position update rounds.
    inertia:
        Weight of the previous velocity (``w``).
    accel_coeff:
        Weight of the GSA acceleration term (``c1``).
    social_coeff:
        Weight of the pull toward the incumbent/global best (``c2``).
    g0, alpha:
        Gravitational constant scale and decay exponent of the GSA term.
    mutation_rate:
        Per-component probability of a uniform re-randomisation — the
        integer-encoding stand-in for the binary transfer function.
    patience:
        Stop early after this many iterations without improving the
        incumbent (``None`` disables early stopping).
    max_evaluations:
        Optional shared evaluation budget across the run.
    """

    def __init__(
        self,
        num_particles: int = 30,
        max_iterations: int = 50,
        inertia: float = 0.6,
        accel_coeff: float = 1.0,
        social_coeff: float = 1.5,
        g0: float = 1.0,
        alpha: float = 20.0,
        mutation_rate: float = 0.02,
        patience: int | None = None,
        max_evaluations: int | None = None,
    ) -> None:
        if num_particles < 2:
            raise ValueError(f"num_particles must be >= 2, got {num_particles}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0 <= inertia <= 1:
            raise ValueError(f"inertia must be in [0, 1], got {inertia}")
        if accel_coeff < 0 or social_coeff < 0:
            raise ValueError("accel_coeff and social_coeff must be non-negative")
        if accel_coeff + social_coeff == 0:
            raise ValueError("accel_coeff + social_coeff must be positive")
        if g0 <= 0:
            raise ValueError(f"g0 must be positive, got {g0}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if not 0 <= mutation_rate <= 1:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1 or None, got {patience}")
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError(
                f"max_evaluations must be >= 1 or None, got {max_evaluations}"
            )
        self.num_particles = num_particles
        self.max_iterations = max_iterations
        self.inertia = inertia
        self.accel_coeff = accel_coeff
        self.social_coeff = social_coeff
        self.g0 = g0
        self.alpha = alpha
        self.mutation_rate = mutation_rate
        self.patience = patience
        self.max_evaluations = max_evaluations

    @property
    def name(self) -> str:
        return "psogsa"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        operator = _PsoGsaOperator(self, context)
        outcome = IterativeOptimizer(
            operator,
            max_iterations=self.max_iterations,
            patience=self.patience,
            max_evaluations=self.max_evaluations,
        ).run(context.rng)
        return SchedulingResult(
            assignment=outcome.assignment,
            scheduler_name=self.name,
            info={
                "best_makespan_estimate": outcome.fitness,
                "iterations": outcome.iterations,
                "evaluations": outcome.evaluations,
                "stopped": outcome.stopped,
                "convergence": outcome.trace.as_dict() if outcome.trace else None,
            },
        )


__all__ = ["PsoGsaScheduler"]
