"""Uniform random assignment — the weakest sensible baseline.

Every cloudlet draws a VM uniformly at random.  Useful to anchor the
metric scales: any scheduler worth running should beat this on makespan in
heterogeneous scenarios.
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class RandomScheduler(Scheduler):
    """Assign each cloudlet to a uniformly random VM."""

    @property
    def name(self) -> str:
        return "random"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        assignment = context.rng.integers(
            0, context.num_vms, size=context.num_cloudlets, dtype="int64"
        )
        return SchedulingResult(assignment=assignment, scheduler_name=self.name)


__all__ = ["RandomScheduler"]
