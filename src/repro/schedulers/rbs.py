"""Random Biased Sampling scheduler (paper Section V).

RBS organises the VMs into groups, each carrying a *walk-in-length*
threshold ``υ`` (WIL) and a *node-in-degree* ``NID`` equal to the number of
free VMs in the group.  Every cloudlet draws a random walk length ``ω``;
the execution test ``ω ≥ υ`` admits the cloudlet into the group, otherwise
``ω`` is incremented and the walk moves to the next group (Algorithm 3 /
Fig. 3).

Interpretation of the under-specified parts:

* groups get thresholds ``υ = 1 .. q`` (the figure's "WIL = 1 .. n");
* the walk starts at a *random* group — this is the "random" in RBS and is
  what the paper blames for the fluctuations in Fig. 4/6 ("the randomness
  in assigning tasks a WIL value caused only some of the virtual machines
  to be available and not all of them");
* ``NID`` is a per-round capacity: assigning to a group decrements it, and
  when every group is depleted all NIDs replenish (a new sampling round),
  so batches larger than the fleet remain schedulable;
* inside a group the VMs are used cyclically (Step 6: "the assignment
  inside the VMs groups is done in a cyclic way").

The result is a nearly-balanced randomised spread: better balanced than
the metaheuristics (RBS originates as a network load balancer) but noisier
than plain round-robin.
"""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class RandomBiasedSamplingScheduler(Scheduler):
    """RBS cloudlet scheduler.

    Parameters
    ----------
    num_groups:
        Number of VM groups ``q``.  ``None`` (default) uses
        ``min(4, num_vms)``, the smallest grouping that exhibits the
        walk-length dynamics at every paper scale.
    """

    def __init__(self, num_groups: int | None = None) -> None:
        if num_groups is not None and num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {num_groups}")
        self.num_groups = num_groups

    @property
    def name(self) -> str:
        return "rbs"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        n, m = context.num_cloudlets, context.num_vms
        rng = context.rng
        q = self.num_groups if self.num_groups is not None else min(4, m)
        q = min(q, m)

        # Step 1-2: split VMs into q groups with thresholds 1..q and
        # NID = group size.  The walk loop runs on plain Python lists —
        # per-element numpy scalar access would dominate the runtime.
        groups = [chunk.tolist() for chunk in np.array_split(np.arange(m), q) if chunk.size]
        q = len(groups)
        group_sizes = [len(g) for g in groups]
        nid = list(group_sizes)
        free_total = sum(group_sizes)
        cursor = [0] * q  # cyclic per-group VM pointer

        assignment = np.empty(n, dtype=np.int64)
        walks_total = 0

        # Steps 3-7 per cloudlet.
        omegas = rng.integers(1, q + 1, size=n).tolist()
        starts = rng.integers(0, q, size=n).tolist()
        with _TEL.span("rbs.walk"):
            for i in range(n):
                omega = omegas[i]
                g = starts[i]
                # Walk until the execution test passes on a group with capacity.
                # The threshold of group g is g+1; after at most q hops omega
                # exceeds every threshold, so only capacity forces further hops,
                # and NIDs replenish when the whole fleet is drained.
                if free_total == 0:
                    nid = list(group_sizes)
                    free_total = sum(group_sizes)
                while not (omega > g and nid[g] > 0):  # omega >= threshold == g+1
                    omega += 1
                    g += 1
                    if g == q:
                        g = 0
                    walks_total += 1
                members = groups[g]
                c = cursor[g]
                vm_idx = members[c]
                cursor[g] = c + 1 if c + 1 < len(members) else 0
                nid[g] -= 1
                free_total -= 1
                assignment[i] = vm_idx
        if _TEL.enabled:
            _TEL.count("rbs.walk_hops", walks_total)

        return SchedulingResult(
            assignment=assignment,
            scheduler_name=self.name,
            info={
                "num_groups": q,
                "mean_walk_length": walks_total / n if n else 0.0,
            },
        )


__all__ = ["RandomBiasedSamplingScheduler"]
