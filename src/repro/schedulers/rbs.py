"""Random Biased Sampling scheduler (paper Section V).

RBS organises the VMs into groups, each carrying a *walk-in-length*
threshold ``υ`` (WIL) and a *node-in-degree* ``NID`` equal to the number of
free VMs in the group.  Every cloudlet draws a random walk length ``ω``;
the execution test ``ω ≥ υ`` admits the cloudlet into the group, otherwise
``ω`` is incremented and the walk moves to the next group (Algorithm 3 /
Fig. 3).

Interpretation of the under-specified parts:

* groups get thresholds ``υ = 1 .. q`` (the figure's "WIL = 1 .. n");
* the walk starts at a *random* group — this is the "random" in RBS and is
  what the paper blames for the fluctuations in Fig. 4/6 ("the randomness
  in assigning tasks a WIL value caused only some of the virtual machines
  to be available and not all of them");
* ``NID`` is a per-round capacity: assigning to a group decrements it, and
  when every group is depleted all NIDs replenish (a new sampling round),
  so batches larger than the fleet remain schedulable;
* inside a group the VMs are used cyclically (Step 6: "the assignment
  inside the VMs groups is done in a cyclic way").

The result is a nearly-balanced randomised spread: better balanced than
the metaheuristics (RBS originates as a network load balancer) but noisier
than plain round-robin.
"""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class BiasedWalk:
    """Vectorised Algorithm-3 walk, bit-identical to the per-item loop.

    The scalar walk has closed structure the vector form exploits:

    * ``omega - g`` is invariant along a walk (both increment per hop), so
      the execution test ``omega > g`` either holds from the start — the
      walk is a cyclic scan from the start group for the first group with
      capacity — or it cannot hold until ``g`` wraps to 0, after which
      ``omega - g >= 1`` forever, so the walk is ``q - g0`` forced hops
      followed by a cyclic scan from group 0.
    * Between capacity events the scan target is a pure lookup of the
      start group (first open group cyclically at-or-after it), so whole
      runs of cloudlets resolve with one table indexing; the table is
      only rebuilt when a group depletes or the round replenishes.

    State (per-group NID, free total, cyclic cursors, hop count) persists
    across :meth:`walk` calls, so chunked walks concatenate to the
    monolithic walk exactly — the batch scheduler and the streaming
    assigner share this one implementation.
    """

    def __init__(self, groups: "list[np.ndarray]") -> None:
        self.groups = [np.asarray(g, dtype=np.int64) for g in groups]
        self.q = len(self.groups)
        self.sizes = np.array([g.size for g in self.groups], dtype=np.int64)
        self.total = int(self.sizes.sum())
        self.nid = self.sizes.copy()
        self.free_total = self.total
        self.cursor = np.zeros(self.q, dtype=np.int64)
        self.walks_total = 0

    def _first_open_lut(self) -> np.ndarray:
        """``lut[s]`` = first group with capacity cyclically at-or-after ``s``."""
        open_idx = np.flatnonzero(self.nid > 0)
        pos = np.searchsorted(open_idx, np.arange(self.q))
        return open_idx[np.where(pos < open_idx.size, pos, 0)]

    def walk(self, omegas: np.ndarray, starts: np.ndarray) -> tuple[np.ndarray, int]:
        """Assign one slice of cloudlets; returns ``(vm_indices, hops)``."""
        omegas = np.asarray(omegas, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        k = omegas.shape[0]
        out = np.empty(k, dtype=np.int64)
        if k == 0:
            return out, 0
        q, nid, sizes = self.q, self.nid, self.sizes
        wrapped = omegas <= starts
        s = np.where(wrapped, 0, starts)
        hops = int(np.where(wrapped, q - starts, 0).sum())
        choice = np.empty(k, dtype=np.int64)
        free_total = self.free_total
        i = 0
        while i < k:
            if free_total == 0:
                nid[:] = sizes
                free_total = self.total
            lut = self._first_open_lut()
            j = min(k, i + free_total)
            cand = lut[s[i:j]]
            counts = np.bincount(cand, minlength=q)
            accept = j - i
            # A group can deplete mid-segment, invalidating the table for
            # later items; truncate at the earliest depleting assignment.
            for g in np.flatnonzero((nid > 0) & (counts >= nid)):
                t = int(np.flatnonzero(cand == g)[nid[g] - 1])
                accept = min(accept, t + 1)
            acc = cand[:accept]
            choice[i : i + accept] = acc
            if accept != j - i:
                counts = np.bincount(acc, minlength=q)
            nid -= counts
            free_total -= accept
            hops += int(((acc - s[i : i + accept]) % q).sum())
            i += accept
        # Step 6: inside a group the VMs are used cyclically.
        for g in range(q):
            idx = np.flatnonzero(choice == g)
            if idx.size == 0:
                continue
            size = int(sizes[g])
            start = int(self.cursor[g])
            out[idx] = self.groups[g][(start + np.arange(idx.size)) % size]
            self.cursor[g] = (start + idx.size) % size
        self.free_total = free_total
        self.walks_total += hops
        return out, hops

    def state_dict(self) -> "dict[str, object]":
        """Picklable snapshot of the mutable walk state (O(q) sized).

        The group tables are derivable from the fleet, so only the
        per-round capacities, cyclic cursors and hop counter travel —
        restoring them via :meth:`load_state` resumes the walk exactly
        where a serial walk would stand (the shard-carry contract).
        """
        return {
            "nid": self.nid.copy(),
            "free_total": int(self.free_total),
            "cursor": self.cursor.copy(),
            "walks_total": int(self.walks_total),
        }

    def load_state(self, state: "dict[str, object]") -> None:
        """Restore a :meth:`state_dict` snapshot onto this walk."""
        self.nid[:] = np.asarray(state["nid"], dtype=np.int64)
        self.free_total = int(state["free_total"])  # type: ignore[arg-type]
        self.cursor[:] = np.asarray(state["cursor"], dtype=np.int64)
        self.walks_total = int(state["walks_total"])  # type: ignore[arg-type]


class RandomBiasedSamplingScheduler(Scheduler):
    """RBS cloudlet scheduler.

    Parameters
    ----------
    num_groups:
        Number of VM groups ``q``.  ``None`` (default) uses
        ``min(4, num_vms)``, the smallest grouping that exhibits the
        walk-length dynamics at every paper scale.
    """

    def __init__(self, num_groups: int | None = None) -> None:
        if num_groups is not None and num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {num_groups}")
        self.num_groups = num_groups

    @property
    def name(self) -> str:
        return "rbs"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        n, m = context.num_cloudlets, context.num_vms
        rng = context.rng
        q = self.num_groups if self.num_groups is not None else min(4, m)
        q = min(q, m)

        # Step 1-2: split VMs into q groups with thresholds 1..q and
        # NID = group size.  Steps 3-7 run through the shared vectorised
        # walk (identical hop-for-hop to the per-cloudlet loop).
        groups = [chunk for chunk in np.array_split(np.arange(m), q) if chunk.size]
        q = len(groups)
        state = BiasedWalk(groups)

        omegas = rng.integers(1, q + 1, size=n)
        starts = rng.integers(0, q, size=n)
        with _TEL.span("rbs.walk"):
            assignment, walks_total = state.walk(omegas, starts)
        if _TEL.enabled:
            _TEL.count("rbs.walk_hops", walks_total)

        return SchedulingResult(
            assignment=assignment,
            scheduler_name=self.name,
            info={
                "num_groups": q,
                "mean_walk_length": walks_total / n if n else 0.0,
            },
        )


__all__ = ["BiasedWalk", "RandomBiasedSamplingScheduler"]
