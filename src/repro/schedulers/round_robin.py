"""The paper's "Base Test": CloudSim's default cyclic broker.

Assigns cloudlet ``i`` to VM ``i mod num_vms`` — "vm1 to c1, vm2 to c2,
vm1 to c3 and so forth" (Section VI-A).  In the homogeneous scenario this
is the optimal schedule, which is exactly why the paper uses it as the
reference.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingResult


class RoundRobinScheduler(Scheduler):
    """Cyclic cloudlet→VM assignment (zero decision cost).

    Parameters
    ----------
    start_offset:
        Index of the VM that receives the first cloudlet; the paper starts
        at VM 0.
    """

    def __init__(self, start_offset: int = 0) -> None:
        if start_offset < 0:
            raise ValueError(f"start_offset must be non-negative, got {start_offset}")
        self.start_offset = start_offset

    @property
    def name(self) -> str:
        return "basetest"

    def schedule(self, context: SchedulingContext) -> SchedulingResult:
        n, m = context.num_cloudlets, context.num_vms
        assignment = (np.arange(n, dtype=np.int64) + self.start_offset) % m
        return SchedulingResult(assignment=assignment, scheduler_name=self.name)


__all__ = ["RoundRobinScheduler"]
