"""Streaming scheduler protocol: batch admission over scenario chunks.

A :class:`StreamingScheduler` consumes a
:class:`~repro.workloads.streaming.ScenarioChunks` without materialising
the full workload: :meth:`StreamingScheduler.open` creates a fresh
:class:`ChunkAssigner` whose :meth:`ChunkAssigner.assign` maps each
cloudlet chunk to VM indices, carrying per-VM accumulator state across
chunks.  Because every ``open()`` builds its state from scratch, two runs
of one scheduler instance can never leak accumulators into each other —
the property suite pins this for the in-memory schedulers too.

Every streaming implementation is **assignment-bit-equal** to its
in-memory counterpart for any chunk size (pinned in ``tests/properties``):

* round-robin and greedy replicate the monolithic per-index arithmetic
  exactly (greedy additionally has an exact heap fast path for uniform
  fleets, making the paper's 10^6-cloudlet points feasible);
* HBO needs the *global* group ordering of Algorithm 1, so its assigner
  buffers one O(n) length column and one O(n) assignment buffer during
  ``open()`` — the documented exception to O(chunk) memory (~16 MB at the
  paper's 10^6 cloudlets, still far below the in-memory path);
* RBS pre-draws its per-cloudlet walk lengths and start groups in one
  monolithic-order pass (interleaving bounded-integer draws per chunk
  would diverge from the monolithic stream because of rejection
  sampling), stores them as int32, and walks chunk by chunk.

Schedulers without a streaming form (the metaheuristics) are explicitly
in-memory-only: :func:`as_streaming` wraps them in
:class:`InMemoryFallback`, which materialises the stream via
``ScenarioChunks.to_spec()`` and schedules once.

Example::

    >>> import numpy as np
    >>> from repro.core.rng import spawn_rng
    >>> from repro.workloads.streaming import homogeneous_stream
    >>> from repro.schedulers.streaming import make_streaming_scheduler
    >>> stream = homogeneous_stream(3, 8, chunk_size=5, seed=0)
    >>> assigner = make_streaming_scheduler("basetest").open(
    ...     stream, spawn_rng(0, f"scheduler/{stream.name}"))
    >>> [assigner.assign(chunk, off).tolist() for off, chunk in stream]
    [[0, 1, 2, 0, 1], [2, 0, 1]]
"""

from __future__ import annotations

import abc
import heapq
from typing import Any

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.workloads.spec import ScenarioArrays
from repro.workloads.streaming import ScenarioChunks


class ChunkAssigner(abc.ABC):
    """Per-run assignment state; produced by :meth:`StreamingScheduler.open`.

    ``assign`` is called once per chunk, in index order, and must return
    the chunk's cloudlet→VM mapping.  All cross-chunk state lives on the
    assigner, never on the scheduler, so reusing a scheduler instance is
    always safe.
    """

    @abc.abstractmethod
    def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
        """VM indices (int64, one per chunk cloudlet) for this chunk."""

    def info(self) -> dict[str, Any]:
        """Diagnostics mirroring ``SchedulingResult.info`` (after the run)."""
        return {}

    def carry_out(self) -> "dict[str, Any] | None":
        """Snapshot of the cross-chunk state at the current position.

        Feeding the snapshot back through ``open(stream, rng, carry=...)``
        resumes assignment exactly where this assigner stands — the hook
        the shard planner uses to make a shard boundary semantically
        identical to a chunk boundary.  ``None`` means "no state needed"
        (offset-pure assigners).  Assigners that cannot be resumed raise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support carried state; "
            "its scheduler must override plan_carries() to shard"
        )


class StreamingScheduler(abc.ABC):
    """A scheduling policy that admits cloudlets chunk by chunk."""

    #: True for native chunk-wise policies; the in-memory fallback says False.
    streaming_native = True

    #: True when ``open()`` derives all state from the resident fleet
    #: arrays — no pre-scan of the cloudlet stream, no monolithic RNG
    #: draws sized by ``num_cloudlets`` — so the assigner can admit
    #: batches whose total count is unknown in advance.  This is the
    #: property the serving layer (``repro.serve``) needs to answer live
    #: submissions bit-identically to an offline replay; HBO and RBS
    #: stay False because their first decision depends on the whole
    #: workload (global group ordering / one monolithic draw pass).
    admits_online = False

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Registry name — identical to the in-memory counterpart's."""

    @abc.abstractmethod
    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        """Create per-run state (may pre-scan the re-iterable stream).

        ``carry=None`` starts from scratch (the serial path).  A carry
        produced by :meth:`plan_carries` / :meth:`ChunkAssigner.carry_out`
        starts mid-stream instead, with the accumulator state a serial run
        would have at that point — assignments from the carried position
        onward are then bit-identical to the serial run's.
        """

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        """One carried-in state per :class:`~repro.workloads.streaming.ShardPlan`.

        Generic fallback: replay the serial assignment pass in the caller
        and snapshot ``carry_out()`` at every shard boundary — exact for
        any scheduler whose assigner supports ``carry_out``, at the cost
        of scheduling serially (the execution fold still parallelises).
        Offset-pure and precomputing schedulers override this with O(1)
        or slicing plans.
        """
        assigner = self.open(stream, rng)
        carries: "list[dict[str, Any] | None]" = []
        for i, plan in enumerate(plans):
            carries.append(assigner.carry_out())
            if i == len(plans) - 1:
                break
            for offset, chunk in stream.iter_range(plan.chunk_start, plan.chunk_stop):
                assigner.assign(chunk, offset)
        return carries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


# -- round robin ------------------------------------------------------------


class StreamingRoundRobin(StreamingScheduler):
    """Chunked Base Test: cloudlet ``i`` → VM ``(i + start_offset) % m``."""

    admits_online = True

    def __init__(self, start_offset: int = 0) -> None:
        if start_offset < 0:
            raise ValueError(f"start_offset must be non-negative, got {start_offset}")
        self.start_offset = start_offset

    @property
    def name(self) -> str:
        return "basetest"

    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        m = stream.num_vms
        start = self.start_offset

        class Assigner(ChunkAssigner):
            def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
                k = chunk.num_cloudlets
                return (np.arange(offset, offset + k, dtype=np.int64) + start) % m

            def carry_out(self) -> None:
                return None  # offset-pure: any chunk is computable in isolation

        return Assigner()

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        return [None] * len(plans)


# -- greedy MCT -------------------------------------------------------------


def _sequential_repeated_add(step: float, times: int) -> float:
    """``times`` left-to-right additions of ``step`` onto 0.0.

    Matches a per-item accumulator (``r += step`` in a loop) bit-for-bit:
    ``np.add.accumulate`` folds strictly sequentially, unlike ``np.sum``'s
    pairwise reduction.
    """
    if times <= 0:
        return 0.0
    return float(np.add.accumulate(np.full(times, step))[-1])


class StreamingGreedy(StreamingScheduler):
    """Chunked greedy-MCT carrying the per-VM ``ready`` vector across chunks.

    The general path repeats the monolithic per-index arithmetic verbatim
    (same expression, same ``argmin`` tie-breaking), so assignments are
    bit-equal for every chunk size.  Uniform fleets (equal MIPS and PEs)
    use a heap of ``(ready, vm)`` pairs: with a constant execution time the
    argmin over ``ready + c`` is the lexicographically smallest pair, so
    the heap is exact while dropping the O(n·m) scan to O(n log m).
    Uniform fleets with *constant* cloudlet lengths collapse further: the
    heap starts as ``[(0.0, 0), ..., (0.0, m-1)]`` and every push adds the
    same increment, so pops cycle ``0, 1, ..., m-1`` forever and cloudlet
    ``i`` lands on VM ``i % m`` — a pure-numpy, offset-pure expression.

    Sharding: the cyclic fast path needs no carry; the heap and general
    paths carry the literal heap list / ``ready`` vector, reproduced at
    each shard boundary by the generic serial pre-pass in
    :meth:`StreamingScheduler.plan_carries`.
    """

    admits_online = True

    @property
    def name(self) -> str:
        return "greedy-mct"

    @staticmethod
    def _cyclic(stream: ScenarioChunks) -> bool:
        from repro.workloads.streaming import ConstantCloudlets

        uniform = (
            float(np.ptp(stream.vm_mips)) == 0.0
            and float(np.ptp(stream.vm_pes)) == 0.0
        )
        return uniform and isinstance(stream.cloudlets, ConstantCloudlets)

    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        m = stream.num_vms
        inv_capacity = 1.0 / (stream.vm_mips * stream.vm_pes)
        uniform = float(np.ptp(stream.vm_mips)) == 0.0 and float(np.ptp(stream.vm_pes)) == 0.0

        if self._cyclic(stream):
            inv = float(inv_capacity[0])
            # One heap increment, computed with the exact expression the
            # heap path uses (length * inv) so the info diagnostics agree.
            step = float(stream.cloudlets.length * inv)

            class Assigner(ChunkAssigner):
                def __init__(self) -> None:
                    self._end = 0

                def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
                    k = chunk.num_cloudlets
                    self._end = max(self._end, offset + k)
                    return np.arange(offset, offset + k, dtype=np.int64) % m

                def info(self) -> dict[str, Any]:
                    # VM 0 is first served each cycle, so it holds the max
                    # backlog: ceil(end / m) sequential heap increments.
                    return {
                        "estimated_makespan": _sequential_repeated_add(
                            step, -(-self._end // m)
                        )
                    }

                def carry_out(self) -> None:
                    return None  # offset-pure

            return Assigner()

        if uniform:
            inv = float(inv_capacity[0])
            if carry is None:
                heap = [(0.0, vm) for vm in range(m)]
            else:
                heap = [(float(r), int(vm)) for r, vm in carry["heap"]]

            class Assigner(ChunkAssigner):
                def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
                    lengths = chunk.cloudlet_length
                    out = np.empty(lengths.shape[0], dtype=np.int64)
                    for i in range(lengths.shape[0]):
                        ready, vm = heapq.heappop(heap)
                        heapq.heappush(heap, (ready + lengths[i] * inv, vm))
                        out[i] = vm
                    return out

                def info(self) -> dict[str, Any]:
                    return {"estimated_makespan": float(max(r for r, _ in heap))}

                def carry_out(self) -> dict[str, Any]:
                    # The literal list order matters to heapq, so carry it
                    # verbatim, not as a sorted multiset.
                    return {"heap": [(float(r), int(vm)) for r, vm in heap]}

            return Assigner()

        if carry is None:
            ready = np.zeros(m)
        else:
            ready = np.array(carry["ready"], dtype=float, copy=True)

        class Assigner(ChunkAssigner):
            def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
                lengths = chunk.cloudlet_length
                out = np.empty(lengths.shape[0], dtype=np.int64)
                for i in range(lengths.shape[0]):
                    completion = ready + lengths[i] * inv_capacity
                    j = int(np.argmin(completion))
                    out[i] = j
                    ready[j] = completion[j]
                return out

            def info(self) -> dict[str, Any]:
                return {"estimated_makespan": float(ready.max())}

            def carry_out(self) -> dict[str, Any]:
                return {"ready": ready.copy()}

        return Assigner()

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        if self._cyclic(stream):
            return [None] * len(plans)
        return super().plan_carries(stream, rng, plans)


# -- HBO --------------------------------------------------------------------


class _PrecomputedAssigner(ChunkAssigner):
    """Serves index-ordered slices of a fully precomputed assignment.

    ``base`` is the absolute cloudlet offset of ``assignment[0]`` — shard
    executors hand workers just their slice, so a worker's chunk offsets
    are rebased into the slice here.
    """

    def __init__(
        self, assignment: np.ndarray, info: dict[str, Any], base: int = 0
    ) -> None:
        self.assignment = assignment
        self.base = base
        self._info = info

    def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
        lo = offset - self.base
        return self.assignment[lo : lo + chunk.num_cloudlets]

    def info(self) -> dict[str, Any]:
        return dict(self._info)


def _sliced_carries(
    assignment: np.ndarray, info: dict[str, Any], plans
) -> "list[dict[str, Any] | None]":
    """Shard carries for precomputing schedulers: one assignment slice each."""
    return [
        {"assignment": assignment[plan.start : plan.stop], "base": plan.start,
         "info": dict(info)}
        for plan in plans
    ]


def _precomputed_from_carry(carry: dict[str, Any]) -> _PrecomputedAssigner:
    return _PrecomputedAssigner(
        np.asarray(carry["assignment"], dtype=np.int64),
        dict(carry["info"]),
        base=int(carry["base"]),
    )


class StreamingHoneyBee(StreamingScheduler):
    """Chunked HBO (Algorithm 1), bit-equal to the in-memory scheduler.

    Algorithm 1 orders cloudlet *groups* by descending total length before
    any assignment happens, so the decision for the first chunk depends on
    the whole workload.  ``open()`` therefore streams the length column
    once into an O(n) buffer (float64), replays the monolithic algorithm
    over it — including the pairwise group sums, so the ordering matches
    ``HoneyBeeScheduler`` bit-for-bit — and serves the resulting O(n)
    int64 assignment chunk by chunk.  These two buffers are the documented
    exception to the O(chunk_size) memory model (~16 MB at 10^6
    cloudlets); every other column stays chunked.
    """

    def __init__(
        self, load_balance_factor: float = 0.5, scout_time_bias: float = 0.0
    ) -> None:
        if not 0 < load_balance_factor <= 1:
            raise ValueError(
                f"load_balance_factor must be in (0, 1], got {load_balance_factor}"
            )
        if scout_time_bias < 0:
            raise ValueError(f"scout_time_bias must be non-negative, got {scout_time_bias}")
        self.load_balance_factor = load_balance_factor
        self.scout_time_bias = scout_time_bias

    @property
    def name(self) -> str:
        return "honeybee"

    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        from repro.schedulers.hbo import HoneyBeeScheduler
        from repro.workloads.streaming import ConstantCloudlets

        if carry is not None:
            return _precomputed_from_carry(carry)

        n, q = stream.num_cloudlets, stream.num_datacenters

        dc_vms: list[np.ndarray] = [
            np.flatnonzero(stream.vm_datacenter == dc) for dc in range(q)
        ]
        with _TEL.span("hbo.forage"):
            unit_cost = np.full(q, np.inf)
            for dc in range(q):
                members = dc_vms[dc]
                if members.size == 0:
                    continue
                unit_cost[dc] = (
                    stream.vm_size[members].mean() * stream.dc_cost_per_storage[dc]
                    + stream.vm_ram[members].mean() * stream.dc_cost_per_mem[dc]
                    + stream.vm_bw[members].mean() * stream.dc_cost_per_bw[dc]
                )
            dc_rank = np.argsort(unit_cost, kind="stable")

        cap = max(1, int(np.ceil(self.load_balance_factor * n)))
        cyclic_dcs = all(
            members.size == 0
            or (
                float(np.ptp(stream.vm_mips[members])) == 0.0
                and float(np.ptp(stream.vm_pes[members])) == 0.0
            )
            for members in dc_vms
        )
        if isinstance(stream.cloudlets, ConstantCloudlets) and cyclic_dcs:
            with _TEL.span("hbo.scout"):
                assignment, assigned_per_dc, spills = self._scout_constant(
                    stream, dc_vms, dc_rank, cap
                )
            return _PrecomputedAssigner(
                assignment,
                {
                    "dc_unit_cost": unit_cost.tolist(),
                    "assigned_per_dc": assigned_per_dc.tolist(),
                    "spills": spills,
                    "cap_per_dc": cap,
                },
            )

        cloudlet_length = np.empty(n)
        for offset, chunk in stream:
            cloudlet_length[offset : offset + chunk.num_cloudlets] = chunk.cloudlet_length

        loads: list[np.ndarray] = [np.zeros(members.size) for members in dc_vms]
        inv_mips: list[np.ndarray] = [
            1.0 / (stream.vm_mips[members] * stream.vm_pes[members])
            for members in dc_vms
        ]
        uniform: list[bool] = [
            members.size > 0 and float(np.ptp(stream.vm_mips[members])) == 0.0
            for members in dc_vms
        ]
        heaps: list[list[tuple[float, int]]] = [
            [(0.0, pos) for pos in range(members.size)] if uniform[dc] else []
            for dc, members in enumerate(dc_vms)
        ]

        assigned_per_dc = np.zeros(q, dtype=np.int64)
        assignment = np.full(n, -1, dtype=np.int64)
        spills = 0

        with _TEL.span("hbo.scout"):
            groups = HoneyBeeScheduler._divide(n, q)
            group_order = sorted(
                range(len(groups)),
                key=lambda g: float(cloudlet_length[groups[g]].sum()),
                reverse=True,
            )
            for g in group_order:
                for cloudlet_idx in groups[g]:
                    dc = HoneyBeeScheduler._pick_datacenter(
                        dc_rank, assigned_per_dc, cap, dc_vms
                    )
                    if dc != dc_rank[0]:
                        spills += 1
                    length = float(cloudlet_length[cloudlet_idx])
                    if uniform[dc]:
                        backlog, pos = heapq.heappop(heaps[dc])
                        exec_seconds = length * inv_mips[dc][pos]
                        heapq.heappush(heaps[dc], (backlog + exec_seconds, pos))
                    else:
                        exec_seconds = length * inv_mips[dc]
                        key = loads[dc] + self.scout_time_bias * exec_seconds
                        pos = int(np.argmin(key))
                        loads[dc][pos] += exec_seconds[pos]
                    assignment[cloudlet_idx] = dc_vms[dc][pos]
                    assigned_per_dc[dc] += 1

        return _PrecomputedAssigner(
            assignment,
            {
                "dc_unit_cost": unit_cost.tolist(),
                "assigned_per_dc": assigned_per_dc.tolist(),
                "spills": spills,
                "cap_per_dc": cap,
            },
        )

    @staticmethod
    def _scout_constant(
        stream: ScenarioChunks,
        dc_vms: "list[np.ndarray]",
        dc_rank: np.ndarray,
        cap: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Vectorised Algorithm-1 scout for the constant-length case.

        The per-cloudlet loop has closed structure when every cloudlet is
        identical and every datacenter's VMs are identical:

        * ``_pick_datacenter`` depends only on running counts, so the
          ``t``-th scheduled cloudlet lands on ranked datacenter
          ``t // cap`` while under cap, then falls back to the cheapest —
          the datacenter sequence is blockwise by construction;
        * within a uniform datacenter the ``(backlog, pos)`` heap receives
          equal increments, so pops cycle through positions — the ``r``-th
          cloudlet a datacenter receives goes to VM slot ``r % size``.

        Group ordering still uses the loop path's float sums (constant
        slices), so ties and ordering match bit-for-bit.
        """
        n, q = stream.num_cloudlets, stream.num_datacenters
        c = float(stream.cloudlets.length)

        # Cloudlet groups: contiguous array_split ranges, ordered by the
        # same descending float-sum key the loop path computes.
        base, extra = divmod(n, q)
        g_sizes = [base + 1 if g < extra else base for g in range(q)]
        g_starts = np.zeros(q + 1, dtype=np.int64)
        g_starts[1:] = np.cumsum(g_sizes)
        group_order = sorted(
            range(q),
            key=lambda g: float(np.full(g_sizes[g], c).sum()),
            reverse=True,
        )

        eff = np.array(
            [dc for dc in dc_rank if dc_vms[dc].size > 0], dtype=np.int64
        )
        num_eff = eff.size
        sizes_dc = np.array([members.size for members in dc_vms], dtype=np.int64)
        members_concat = np.concatenate(dc_vms)
        member_off = np.zeros(q, dtype=np.int64)
        member_off[1:] = np.cumsum(sizes_dc)[:-1]

        # t-th scheduled cloudlet -> datacenter, then -> cyclic VM slot.
        t = np.arange(n, dtype=np.int64)
        block = t // cap
        under_cap = block < num_eff
        d = np.where(under_cap, eff[np.minimum(block, num_eff - 1)], eff[0])
        r = np.where(under_cap, t - block * cap, t - cap * num_eff + cap)
        vm_by_t = members_concat[member_off[d] + r % sizes_dc[d]]

        spills = int(np.count_nonzero(d != int(dc_rank[0])))
        assigned_per_dc = np.bincount(d, minlength=q)

        assignment = np.empty(n, dtype=np.int64)
        proc = 0
        for g in group_order:
            size = g_sizes[g]
            assignment[g_starts[g] : g_starts[g] + size] = vm_by_t[proc : proc + size]
            proc += size
        return assignment, assigned_per_dc, spills

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        assigner = self.open(stream, rng)
        return _sliced_carries(assigner.assignment, assigner.info(), plans)


# -- RBS --------------------------------------------------------------------


class StreamingRandomBiasedSampling(StreamingScheduler):
    """Chunked RBS (Algorithm 3), bit-equal to the in-memory scheduler.

    The monolithic scheduler draws all ``n`` walk lengths and then all
    ``n`` start groups from one generator; bounded-integer draws use
    rejection sampling, so interleaving per-chunk draws would consume the
    stream differently and diverge.  ``open()`` therefore pre-draws both
    sequences in monolithic order and keeps them as int32 (8 bytes per
    cloudlet — the RBS exception to O(chunk) memory); the walk state
    (per-group NID, free total, cyclic cursors) carries across chunks.
    """

    def __init__(self, num_groups: int | None = None) -> None:
        if num_groups is not None and num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {num_groups}")
        self.num_groups = num_groups

    @property
    def name(self) -> str:
        return "rbs"

    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        from repro.schedulers.rbs import BiasedWalk

        if carry is not None:
            return _precomputed_from_carry(carry)

        n, m = stream.num_cloudlets, stream.num_vms
        q = self.num_groups if self.num_groups is not None else min(4, m)
        q = min(q, m)
        groups = [
            chunk for chunk in np.array_split(np.arange(m), q) if chunk.size
        ]
        q = len(groups)

        omegas = rng.integers(1, q + 1, size=n).astype(np.int32)
        starts = rng.integers(0, q, size=n).astype(np.int32)
        state = BiasedWalk(groups)

        class Assigner(ChunkAssigner):
            def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
                return self.assign_range(offset, chunk.num_cloudlets)

            def assign_range(self, offset: int, k: int) -> np.ndarray:
                # The walk needs only the pre-drawn slices, never the
                # cloudlet columns — plan_carries exploits this to walk
                # the whole horizon without generating any chunk.
                with _TEL.span("rbs.walk"):
                    out, walks = state.walk(
                        omegas[offset : offset + k], starts[offset : offset + k]
                    )
                if _TEL.enabled:
                    _TEL.count("rbs.walk_hops", walks)
                return out

            def info(self) -> dict[str, Any]:
                return {
                    "num_groups": q,
                    "mean_walk_length": state.walks_total / n if n else 0.0,
                }

        return Assigner()

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        assigner = self.open(stream, rng)
        assignment = assigner.assign_range(0, stream.num_cloudlets)
        return _sliced_carries(assignment, assigner.info(), plans)


# -- fallback for in-memory-only schedulers ---------------------------------


class InMemoryFallback(StreamingScheduler):
    """Adapter declaring a policy in-memory-only.

    ``open()`` materialises the stream via ``ScenarioChunks.to_spec()``
    (O(n) memory — the point of the declaration), runs the wrapped
    scheduler once over the full context, and serves the assignment in
    chunk slices.  The scheduler sees the same RNG the streaming engine
    derived, so results match ``FastSimulation`` on the equivalent spec.
    """

    streaming_native = False

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    @property
    def name(self) -> str:
        return self.scheduler.name

    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        if carry is not None:
            return _precomputed_from_carry(carry)
        spec = stream.to_spec()
        context = SchedulingContext(
            arrays=spec.arrays(), rng=rng, scenario_name=spec.name
        )
        decision = self.scheduler.schedule_checked(context)
        return _PrecomputedAssigner(decision.assignment, dict(decision.info))

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        assigner = self.open(stream, rng)
        return _sliced_carries(assigner.assignment, assigner.info(), plans)


#: Native streaming implementations keyed by registry name.
STREAMING_SCHEDULERS: dict[str, type[StreamingScheduler]] = {
    "basetest": StreamingRoundRobin,
    "greedy-mct": StreamingGreedy,
    "honeybee": StreamingHoneyBee,
    "rbs": StreamingRandomBiasedSampling,
}


def make_streaming_scheduler(name: str, **kwargs) -> StreamingScheduler:
    """Instantiate a native streaming scheduler by registry name."""
    try:
        cls = STREAMING_SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"no native streaming scheduler {name!r}; "
            f"available: {sorted(STREAMING_SCHEDULERS)} "
            "(others run through as_streaming()'s in-memory fallback)"
        ) from None
    return cls(**kwargs)


def as_streaming(scheduler: "Scheduler | StreamingScheduler") -> StreamingScheduler:
    """The streaming counterpart of an in-memory scheduler.

    Native implementations (round-robin, greedy, HBO, RBS) are constructed
    with the wrapped scheduler's own parameters; anything else — the
    metaheuristics in particular — is wrapped in :class:`InMemoryFallback`,
    which materialises the workload before scheduling.
    """
    if isinstance(scheduler, StreamingScheduler):
        return scheduler
    name = scheduler.name
    if name == "basetest":
        return StreamingRoundRobin(start_offset=scheduler.start_offset)
    if name == "greedy-mct":
        return StreamingGreedy()
    if name == "honeybee":
        return StreamingHoneyBee(
            load_balance_factor=scheduler.load_balance_factor,
            scout_time_bias=scheduler.scout_time_bias,
        )
    if name == "rbs":
        return StreamingRandomBiasedSampling(num_groups=scheduler.num_groups)
    return InMemoryFallback(scheduler)


__all__ = [
    "ChunkAssigner",
    "StreamingScheduler",
    "StreamingRoundRobin",
    "StreamingGreedy",
    "StreamingHoneyBee",
    "StreamingRandomBiasedSampling",
    "InMemoryFallback",
    "STREAMING_SCHEDULERS",
    "make_streaming_scheduler",
    "as_streaming",
]
