"""Streaming scheduler protocol: batch admission over scenario chunks.

A :class:`StreamingScheduler` consumes a
:class:`~repro.workloads.streaming.ScenarioChunks` without materialising
the full workload: :meth:`StreamingScheduler.open` creates a fresh
:class:`ChunkAssigner` whose :meth:`ChunkAssigner.assign` maps each
cloudlet chunk to VM indices, carrying per-VM accumulator state across
chunks.  Because every ``open()`` builds its state from scratch, two runs
of one scheduler instance can never leak accumulators into each other —
the property suite pins this for the in-memory schedulers too.

Every streaming implementation is **assignment-bit-equal** to its
in-memory counterpart for any chunk size (pinned in ``tests/properties``):

* round-robin and greedy replicate the monolithic per-index arithmetic
  exactly (greedy additionally has an exact heap fast path for uniform
  fleets, making the paper's 10^6-cloudlet points feasible);
* HBO needs the *global* group ordering of Algorithm 1, so ``open()``
  pre-scans the stream — but never holds O(n): group length sums fold
  through a streaming replica of numpy's pairwise summation
  (:class:`_PairwiseStreamSum`), and a scheduled-order pre-pass leaves
  one O(num_vms) scout snapshot per group from which the index-order
  serving pass replays Algorithm 1 exactly;
* RBS draws its walk lengths and start groups lazily per chunk from two
  cloned generators — one parked at the monolithic ω position, one
  fast-forwarded past all ``n`` ω draws to the monolithic start
  position — so each chunk's draws land exactly where the monolithic
  pre-draw would (bounded-integer rejection sampling consumes the
  underlying bit stream per element, so chunked draws concatenate
  bit-identically), and the walk state carries across chunks.

Both pre-scans are why HBO/RBS keep ``admits_online = False`` — their
first decision still depends on ``num_cloudlets`` — but every assigner
now holds strictly O(num_vms + chunk_size) state, which is what unlocks
the 100M-cloudlet benchmark point (pinned by the bounded-state property
test in ``tests/properties``).

Schedulers without a streaming form (the metaheuristics) are explicitly
in-memory-only: :func:`as_streaming` wraps them in
:class:`InMemoryFallback`, which materialises the stream via
``ScenarioChunks.to_spec()`` and schedules once.

Example::

    >>> import numpy as np
    >>> from repro.core.rng import spawn_rng
    >>> from repro.workloads.streaming import homogeneous_stream
    >>> from repro.schedulers.streaming import make_streaming_scheduler
    >>> stream = homogeneous_stream(3, 8, chunk_size=5, seed=0)
    >>> assigner = make_streaming_scheduler("basetest").open(
    ...     stream, spawn_rng(0, f"scheduler/{stream.name}"))
    >>> [assigner.assign(chunk, off).tolist() for off, chunk in stream]
    [[0, 1, 2, 0, 1], [2, 0, 1]]
"""

from __future__ import annotations

import abc
import heapq
from typing import Any

import numpy as np

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.schedulers.hbo import HoneyBeeScheduler
from repro.workloads.spec import ScenarioArrays
from repro.workloads.streaming import ScenarioChunks


class ChunkAssigner(abc.ABC):
    """Per-run assignment state; produced by :meth:`StreamingScheduler.open`.

    ``assign`` is called once per chunk, in index order, and must return
    the chunk's cloudlet→VM mapping.  All cross-chunk state lives on the
    assigner, never on the scheduler, so reusing a scheduler instance is
    always safe.
    """

    @abc.abstractmethod
    def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
        """VM indices (int64, one per chunk cloudlet) for this chunk."""

    def info(self) -> dict[str, Any]:
        """Diagnostics mirroring ``SchedulingResult.info`` (after the run)."""
        return {}

    def carry_out(self) -> "dict[str, Any] | None":
        """Snapshot of the cross-chunk state at the current position.

        Feeding the snapshot back through ``open(stream, rng, carry=...)``
        resumes assignment exactly where this assigner stands — the hook
        the shard planner uses to make a shard boundary semantically
        identical to a chunk boundary.  ``None`` means "no state needed"
        (offset-pure assigners).  Assigners that cannot be resumed raise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support carried state; "
            "its scheduler must override plan_carries() to shard"
        )


class StreamingScheduler(abc.ABC):
    """A scheduling policy that admits cloudlets chunk by chunk."""

    #: True for native chunk-wise policies; the in-memory fallback says False.
    streaming_native = True

    #: True when ``open()`` derives all state from the resident fleet
    #: arrays — no pre-scan of the cloudlet stream, no monolithic RNG
    #: draws sized by ``num_cloudlets`` — so the assigner can admit
    #: batches whose total count is unknown in advance.  This is the
    #: property the serving layer (``repro.serve``) needs to answer live
    #: submissions bit-identically to an offline replay; HBO and RBS
    #: stay False because their first decision depends on the whole
    #: workload (global group ordering / one monolithic draw pass).
    admits_online = False

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Registry name — identical to the in-memory counterpart's."""

    @abc.abstractmethod
    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        """Create per-run state (may pre-scan the re-iterable stream).

        ``carry=None`` starts from scratch (the serial path).  A carry
        produced by :meth:`plan_carries` / :meth:`ChunkAssigner.carry_out`
        starts mid-stream instead, with the accumulator state a serial run
        would have at that point — assignments from the carried position
        onward are then bit-identical to the serial run's.
        """

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        """One carried-in state per :class:`~repro.workloads.streaming.ShardPlan`.

        Generic fallback: replay the serial assignment pass in the caller
        and snapshot ``carry_out()`` at every shard boundary — exact for
        any scheduler whose assigner supports ``carry_out``, at the cost
        of scheduling serially (the execution fold still parallelises).
        Offset-pure and precomputing schedulers override this with O(1)
        or slicing plans.
        """
        assigner = self.open(stream, rng)
        carries: "list[dict[str, Any] | None]" = []
        for i, plan in enumerate(plans):
            carries.append(assigner.carry_out())
            if i == len(plans) - 1:
                break
            for offset, chunk in stream.iter_range(plan.chunk_start, plan.chunk_stop):
                assigner.assign(chunk, offset)
        return carries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


# -- round robin ------------------------------------------------------------


class StreamingRoundRobin(StreamingScheduler):
    """Chunked Base Test: cloudlet ``i`` → VM ``(i + start_offset) % m``."""

    admits_online = True

    def __init__(self, start_offset: int = 0) -> None:
        if start_offset < 0:
            raise ValueError(f"start_offset must be non-negative, got {start_offset}")
        self.start_offset = start_offset

    @property
    def name(self) -> str:
        return "basetest"

    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        m = stream.num_vms
        start = self.start_offset

        class Assigner(ChunkAssigner):
            def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
                k = chunk.num_cloudlets
                return (np.arange(offset, offset + k, dtype=np.int64) + start) % m

            def carry_out(self) -> None:
                return None  # offset-pure: any chunk is computable in isolation

        return Assigner()

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        return [None] * len(plans)


# -- greedy MCT -------------------------------------------------------------


def _sequential_repeated_add(step: float, times: int) -> float:
    """``times`` left-to-right additions of ``step`` onto 0.0.

    Matches a per-item accumulator (``r += step`` in a loop) bit-for-bit:
    ``np.add.accumulate`` folds strictly sequentially, unlike ``np.sum``'s
    pairwise reduction.
    """
    if times <= 0:
        return 0.0
    return float(np.add.accumulate(np.full(times, step))[-1])


class StreamingGreedy(StreamingScheduler):
    """Chunked greedy-MCT carrying the per-VM ``ready`` vector across chunks.

    The general path repeats the monolithic per-index arithmetic verbatim
    (same expression, same ``argmin`` tie-breaking), so assignments are
    bit-equal for every chunk size.  Uniform fleets (equal MIPS and PEs)
    use a heap of ``(ready, vm)`` pairs: with a constant execution time the
    argmin over ``ready + c`` is the lexicographically smallest pair, so
    the heap is exact while dropping the O(n·m) scan to O(n log m).
    Uniform fleets with *constant* cloudlet lengths collapse further: the
    heap starts as ``[(0.0, 0), ..., (0.0, m-1)]`` and every push adds the
    same increment, so pops cycle ``0, 1, ..., m-1`` forever and cloudlet
    ``i`` lands on VM ``i % m`` — a pure-numpy, offset-pure expression.

    Sharding: the cyclic fast path needs no carry; the heap and general
    paths carry the literal heap list / ``ready`` vector, reproduced at
    each shard boundary by the generic serial pre-pass in
    :meth:`StreamingScheduler.plan_carries`.
    """

    admits_online = True

    @property
    def name(self) -> str:
        return "greedy-mct"

    @staticmethod
    def _cyclic(stream: ScenarioChunks) -> bool:
        from repro.workloads.streaming import ConstantCloudlets

        uniform = (
            float(np.ptp(stream.vm_mips)) == 0.0
            and float(np.ptp(stream.vm_pes)) == 0.0
        )
        return uniform and isinstance(stream.cloudlets, ConstantCloudlets)

    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        m = stream.num_vms
        inv_capacity = 1.0 / (stream.vm_mips * stream.vm_pes)
        uniform = float(np.ptp(stream.vm_mips)) == 0.0 and float(np.ptp(stream.vm_pes)) == 0.0

        if self._cyclic(stream):
            inv = float(inv_capacity[0])
            # One heap increment, computed with the exact expression the
            # heap path uses (length * inv) so the info diagnostics agree.
            step = float(stream.cloudlets.length * inv)

            class Assigner(ChunkAssigner):
                def __init__(self) -> None:
                    self._end = 0

                def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
                    k = chunk.num_cloudlets
                    self._end = max(self._end, offset + k)
                    return np.arange(offset, offset + k, dtype=np.int64) % m

                def info(self) -> dict[str, Any]:
                    # VM 0 is first served each cycle, so it holds the max
                    # backlog: ceil(end / m) sequential heap increments.
                    return {
                        "estimated_makespan": _sequential_repeated_add(
                            step, -(-self._end // m)
                        )
                    }

                def carry_out(self) -> None:
                    return None  # offset-pure

            return Assigner()

        if uniform:
            inv = float(inv_capacity[0])
            if carry is None:
                heap = [(0.0, vm) for vm in range(m)]
            else:
                heap = [(float(r), int(vm)) for r, vm in carry["heap"]]

            class Assigner(ChunkAssigner):
                def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
                    lengths = chunk.cloudlet_length
                    out = np.empty(lengths.shape[0], dtype=np.int64)
                    for i in range(lengths.shape[0]):
                        ready, vm = heapq.heappop(heap)
                        heapq.heappush(heap, (ready + lengths[i] * inv, vm))
                        out[i] = vm
                    return out

                def info(self) -> dict[str, Any]:
                    return {"estimated_makespan": float(max(r for r, _ in heap))}

                def carry_out(self) -> dict[str, Any]:
                    # The literal list order matters to heapq, so carry it
                    # verbatim, not as a sorted multiset.
                    return {"heap": [(float(r), int(vm)) for r, vm in heap]}

            return Assigner()

        if carry is None:
            ready = np.zeros(m)
        else:
            ready = np.array(carry["ready"], dtype=float, copy=True)

        class Assigner(ChunkAssigner):
            def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
                lengths = chunk.cloudlet_length
                out = np.empty(lengths.shape[0], dtype=np.int64)
                for i in range(lengths.shape[0]):
                    completion = ready + lengths[i] * inv_capacity
                    j = int(np.argmin(completion))
                    out[i] = j
                    ready[j] = completion[j]
                return out

            def info(self) -> dict[str, Any]:
                return {"estimated_makespan": float(ready.max())}

            def carry_out(self) -> dict[str, Any]:
                return {"ready": ready.copy()}

        return Assigner()

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        if self._cyclic(stream):
            return [None] * len(plans)
        return super().plan_carries(stream, rng, plans)


# -- in-memory fallback plumbing --------------------------------------------


class _PrecomputedAssigner(ChunkAssigner):
    """Serves index-ordered slices of a fully precomputed assignment.

    ``base`` is the absolute cloudlet offset of ``assignment[0]`` — shard
    executors hand workers just their slice, so a worker's chunk offsets
    are rebased into the slice here.
    """

    def __init__(
        self, assignment: np.ndarray, info: dict[str, Any], base: int = 0
    ) -> None:
        self.assignment = assignment
        self.base = base
        self._info = info

    def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
        lo = offset - self.base
        return self.assignment[lo : lo + chunk.num_cloudlets]

    def info(self) -> dict[str, Any]:
        return dict(self._info)


def _sliced_carries(
    assignment: np.ndarray, info: dict[str, Any], plans
) -> "list[dict[str, Any] | None]":
    """Shard carries for precomputing schedulers: one assignment slice each."""
    return [
        {"assignment": assignment[plan.start : plan.stop], "base": plan.start,
         "info": dict(info)}
        for plan in plans
    ]


def _precomputed_from_carry(carry: dict[str, Any]) -> _PrecomputedAssigner:
    return _PrecomputedAssigner(
        np.asarray(carry["assignment"], dtype=np.int64),
        dict(carry["info"]),
        base=int(carry["base"]),
    )


# -- HBO --------------------------------------------------------------------


class _PairwiseStreamSum:
    """Replicates ``float(np.sum(column))`` over a streamed float column.

    ``np.sum`` reduces pairwise: blocks of at most 128 elements are summed
    directly, then partials combine along a fixed binary tree whose split
    is ``half = n // 2`` rounded down to a multiple of 8.  The tree shape
    depends only on ``n``, so feeding the column left to right, buffering
    at most one leaf and folding partials as subtrees close reproduces
    the monolithic result bit-for-bit while holding O(leaf + log n) state
    (pinned against ``np.sum`` in the scheduler unit tests).  HBO uses
    this for Algorithm 1's group-ordering sums, which the batch scheduler
    computes as one ``np.sum`` per contiguous group.
    """

    def __init__(self, total: int) -> None:
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        self.total = int(total)
        self._fed = 0
        # Work stack: ("sum", k) either is a leaf (k <= 128) or expands
        # into its two halves below a ("combine",) marker that folds the
        # top two partials once both halves resolve.
        self._jobs: "list[tuple]" = [("sum", self.total)] if self.total else []
        self._partials: "list[float]" = []
        self._buffer: "list[np.ndarray]" = []
        self._buffered = 0
        self._need = self._advance()

    def _advance(self) -> int:
        """Run combines until the next leaf size surfaces (0 when done)."""
        while self._jobs:
            job = self._jobs.pop()
            if job[0] == "combine":
                right = self._partials.pop()
                left = self._partials.pop()
                self._partials.append(left + right)
                continue
            size = job[1]
            if size <= 128:
                return size
            half = size // 2
            half -= half % 8
            self._jobs.append(("combine",))
            self._jobs.append(("sum", size - half))
            self._jobs.append(("sum", half))
        return 0

    def feed(self, values: np.ndarray) -> None:
        k = int(values.shape[0])
        if self._fed + k > self.total:
            raise ValueError(
                f"fed {self._fed + k} values into a sum over {self.total}"
            )
        self._fed += k
        i = 0
        while i < k:
            take = min(self._need - self._buffered, k - i)
            self._buffer.append(values[i : i + take])
            self._buffered += take
            i += take
            if self._need and self._buffered == self._need:
                leaf = (
                    self._buffer[0]
                    if len(self._buffer) == 1
                    else np.concatenate(self._buffer)
                )
                self._partials.append(float(leaf.sum()))
                self._buffer = []
                self._buffered = 0
                self._need = self._advance()

    def value(self) -> float:
        if self._fed != self.total:
            raise ValueError(f"sum over {self.total} values got only {self._fed}")
        return self._partials[0] if self.total else 0.0


def _pairwise_const_sum(value: float, count: int) -> float:
    """``float(np.full(count, value).sum())`` in O(log count) time and memory.

    Summing a constant array still reassociates pairwise, so the result
    is not ``value * count`` in general; but the reduction tree depends
    only on ``count``, so equal-sized subtrees have equal partials and
    the whole sum memoises over the O(log count) distinct subtree sizes.
    """
    cache: "dict[int, float]" = {}

    def subtree(k: int) -> float:
        if k in cache:
            return cache[k]
        if k <= 128:
            out = float(np.full(k, value).sum())
        else:
            half = k // 2
            half -= half % 8
            out = subtree(half) + subtree(k - half)
        cache[k] = out
        return out

    return subtree(count) if count else 0.0


class _ScoutState:
    """Mutable Algorithm-1 scout state: per-DC backlogs, heaps and counts.

    O(num_vms) sized, cloneable and picklable — this is what streaming
    HBO carries across chunks and ships across shard boundaries instead
    of an O(n) assignment buffer.
    """

    __slots__ = ("loads", "heaps", "assigned_per_dc", "spills")

    def __init__(self, loads, heaps, assigned_per_dc, spills: int) -> None:
        self.loads = loads
        self.heaps = heaps
        self.assigned_per_dc = assigned_per_dc
        self.spills = spills

    @classmethod
    def fresh(cls, dc_vms: "list[np.ndarray]", uniform: "list[bool]") -> "_ScoutState":
        return cls(
            loads=[np.zeros(members.size) for members in dc_vms],
            heaps=[
                [(0.0, pos) for pos in range(members.size)] if uniform[dc] else []
                for dc, members in enumerate(dc_vms)
            ],
            assigned_per_dc=np.zeros(len(dc_vms), dtype=np.int64),
            spills=0,
        )

    def clone(self) -> "_ScoutState":
        return _ScoutState(
            loads=[arr.copy() for arr in self.loads],
            heaps=[list(heap) for heap in self.heaps],
            assigned_per_dc=self.assigned_per_dc.copy(),
            spills=self.spills,
        )

    def __getstate__(self):
        return (self.loads, self.heaps, self.assigned_per_dc, self.spills)

    def __setstate__(self, state) -> None:
        self.loads, self.heaps, self.assigned_per_dc, self.spills = state


class _HoneyBeeConstAssigner(ChunkAssigner):
    """Offset-pure closed-form Algorithm 1 for constant cloudlets on
    per-datacenter-uniform fleets (the paper-scale homogeneous path).

    The per-cloudlet loop has closed structure when every cloudlet is
    identical and every datacenter's VMs are identical:

    * ``_pick_datacenter`` depends only on running counts, so the ``t``-th
      scheduled cloudlet lands on ranked datacenter ``t // cap`` while
      under cap, then falls back to the cheapest;
    * within a uniform datacenter the ``(backlog, pos)`` heap receives
      equal increments, so pops cycle through positions — the ``r``-th
      cloudlet a datacenter receives goes to VM slot ``r % size``.

    Index ``i`` maps to its scheduled position ``t`` through the group
    tables (``proc_start``), so any chunk is computable in isolation:
    no carry, no pre-pass, O(num_vms) tables only.
    """

    def __init__(
        self,
        g_starts: np.ndarray,
        proc_start: np.ndarray,
        eff: np.ndarray,
        sizes_dc: np.ndarray,
        members_concat: np.ndarray,
        member_off: np.ndarray,
        cap: int,
        info: "dict[str, Any]",
    ) -> None:
        self._g_starts = g_starts
        self._proc_start = proc_start
        self._eff = eff
        self._num_eff = int(eff.size)
        self._sizes_dc = sizes_dc
        self._members_concat = members_concat
        self._member_off = member_off
        self._cap = cap
        self._info = info

    def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
        k = chunk.num_cloudlets
        i = np.arange(offset, offset + k, dtype=np.int64)
        g = np.searchsorted(self._g_starts, i, side="right") - 1
        # Scheduled position of index i: its group's scheduled start plus
        # the in-group rank (groups are contiguous index ranges, and
        # within a group scheduled order == index order).
        t = self._proc_start[g] + (i - self._g_starts[g])
        block = t // self._cap
        under_cap = block < self._num_eff
        d = np.where(
            under_cap, self._eff[np.minimum(block, self._num_eff - 1)], self._eff[0]
        )
        r = np.where(
            under_cap, t - block * self._cap, t - self._cap * self._num_eff + self._cap
        )
        return self._members_concat[self._member_off[d] + r % self._sizes_dc[d]]

    def info(self) -> "dict[str, Any]":
        return dict(self._info)

    def carry_out(self) -> None:
        return None  # offset-pure


class _HoneyBeeGeneralAssigner(ChunkAssigner):
    """Serves Algorithm-1 assignments in index order from O(q·num_vms) state.

    ``entry`` maps each not-yet-entered group to the scout state a serial
    Algorithm-1 run holds when that group's first cloudlet is scheduled
    (computed by the scheduled-order pre-pass); ``state`` is the live
    state for the group currently being served.  Groups are contiguous
    index ranges and within a group scheduled order equals index order,
    so replaying each group from its entry snapshot reproduces the batch
    assignment bit-for-bit.
    """

    def __init__(
        self,
        params: "dict[str, Any]",
        g_starts: np.ndarray,
        state: _ScoutState,
        entry: "dict[int, _ScoutState]",
        info: "dict[str, Any]",
        start: int,
    ) -> None:
        self._params = params
        self._bounds = [int(b) for b in g_starts]
        self._state = state
        self._entry = entry
        self._info = info
        self._g = int(np.searchsorted(g_starts, start, side="right") - 1)

    def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
        params = self._params
        bounds = self._bounds
        lengths = chunk.cloudlet_length
        k = int(lengths.shape[0])
        out = np.empty(k, dtype=np.int64)
        state, g = self._state, self._g
        step = StreamingHoneyBee._scout_step
        next_bound = bounds[g + 1]
        for j in range(k):
            if offset + j == next_bound:
                g += 1
                state = self._entry.pop(g)
                next_bound = bounds[g + 1]
            out[j] = step(params, state, float(lengths[j]))
        self._state, self._g = state, g
        return out

    def info(self) -> "dict[str, Any]":
        return dict(self._info)


class StreamingHoneyBee(StreamingScheduler):
    """Chunked HBO (Algorithm 1), bit-equal to the in-memory scheduler.

    Algorithm 1 orders cloudlet *groups* by descending total length before
    any assignment happens, so the decision for the first chunk depends on
    the whole workload.  ``open()`` therefore pre-scans the re-iterable
    stream, but holds strictly O(num_vms + chunk_size) state throughout:

    * constant cloudlets on per-DC-uniform fleets (the paper-scale
      homogeneous path) collapse to the offset-pure closed form of
      :class:`_HoneyBeeConstAssigner` — no pre-pass at all;
    * otherwise a first pass folds each group's length sum through
      :class:`_PairwiseStreamSum` (bit-equal to the batch ``np.sum``
      keys), a second pass replays the scout in scheduled order,
      snapshotting one O(num_vms) :class:`_ScoutState` at each group
      entry, and the serving pass replays groups from those snapshots in
      index order.  The per-item scout work runs twice (pre-pass +
      serve) — the documented price of dropping the O(n) assignment
      buffer.

    Shard carries ship the boundary scout state plus the entry snapshots
    for groups starting inside the shard: O(q · num_vms) per shard
    instead of the old O(n / shards) assignment slices.
    """

    def __init__(
        self, load_balance_factor: float = 0.5, scout_time_bias: float = 0.0
    ) -> None:
        if not 0 < load_balance_factor <= 1:
            raise ValueError(
                f"load_balance_factor must be in (0, 1], got {load_balance_factor}"
            )
        if scout_time_bias < 0:
            raise ValueError(f"scout_time_bias must be non-negative, got {scout_time_bias}")
        self.load_balance_factor = load_balance_factor
        self.scout_time_bias = scout_time_bias

    @property
    def name(self) -> str:
        return "honeybee"

    # -- shared fleet-derived parameters ------------------------------------

    def _fleet_params(self, stream: ScenarioChunks) -> "dict[str, Any]":
        """O(num_vms) per-run constants shared by every path and shard."""
        q = stream.num_datacenters
        dc_vms: "list[np.ndarray]" = [
            np.flatnonzero(stream.vm_datacenter == dc) for dc in range(q)
        ]
        with _TEL.span("hbo.forage"):
            unit_cost = np.full(q, np.inf)
            for dc in range(q):
                members = dc_vms[dc]
                if members.size == 0:
                    continue
                unit_cost[dc] = (
                    stream.vm_size[members].mean() * stream.dc_cost_per_storage[dc]
                    + stream.vm_ram[members].mean() * stream.dc_cost_per_mem[dc]
                    + stream.vm_bw[members].mean() * stream.dc_cost_per_bw[dc]
                )
            dc_rank = np.argsort(unit_cost, kind="stable")
        return {
            "dc_vms": dc_vms,
            "unit_cost": unit_cost,
            "dc_rank": dc_rank,
            "rank0": int(dc_rank[0]),
            "cap": max(1, int(np.ceil(self.load_balance_factor * stream.num_cloudlets))),
            "bias": self.scout_time_bias,
            "inv_mips": [
                1.0 / (stream.vm_mips[members] * stream.vm_pes[members])
                for members in dc_vms
            ],
            "uniform": [
                members.size > 0 and float(np.ptp(stream.vm_mips[members])) == 0.0
                for members in dc_vms
            ],
            "cyclic_dcs": all(
                members.size == 0
                or (
                    float(np.ptp(stream.vm_mips[members])) == 0.0
                    and float(np.ptp(stream.vm_pes[members])) == 0.0
                )
                for members in dc_vms
            ),
        }

    @staticmethod
    def _group_starts(n: int, q: int) -> np.ndarray:
        """Boundaries of ``HoneyBeeScheduler._divide`` without the O(n) arrays.

        ``np.array_split`` gives the first ``n % q`` groups one extra
        element and drops empties, so the boundaries are arithmetic.
        """
        base, extra = divmod(n, q)
        sizes = [base + 1 if g < extra else base for g in range(q)]
        sizes = [size for size in sizes if size]
        g_starts = np.zeros(len(sizes) + 1, dtype=np.int64)
        g_starts[1:] = np.cumsum(sizes)
        return g_starts

    @staticmethod
    def _scout_step(params: "dict[str, Any]", state: _ScoutState, length: float) -> int:
        """One Algorithm-1 placement, verbatim from the batch loop body."""
        dc = HoneyBeeScheduler._pick_datacenter(
            params["dc_rank"], state.assigned_per_dc, params["cap"], params["dc_vms"]
        )
        if dc != params["rank0"]:
            state.spills += 1
        inv_mips = params["inv_mips"]
        if params["uniform"][dc]:
            backlog, pos = heapq.heappop(state.heaps[dc])
            exec_seconds = length * inv_mips[dc][pos]
            heapq.heappush(state.heaps[dc], (backlog + exec_seconds, pos))
        else:
            exec_seconds = length * inv_mips[dc]
            key = state.loads[dc] + params["bias"] * exec_seconds
            pos = int(np.argmin(key))
            state.loads[dc][pos] += exec_seconds[pos]
        state.assigned_per_dc[dc] += 1
        return int(params["dc_vms"][dc][pos])

    # -- constant fast path ---------------------------------------------------

    def _open_constant(
        self, stream: ScenarioChunks, params: "dict[str, Any]"
    ) -> _HoneyBeeConstAssigner:
        n, q = stream.num_cloudlets, stream.num_datacenters
        c = float(stream.cloudlets.length)
        cap = params["cap"]
        dc_vms, dc_rank = params["dc_vms"], params["dc_rank"]

        g_starts = self._group_starts(n, q)
        q_eff = int(g_starts.size - 1)
        sizes = np.diff(g_starts)
        # Same descending float-sum keys the batch loop computes — via the
        # constant-array pairwise replica, so ties and order match exactly.
        group_order = sorted(
            range(q_eff),
            key=lambda g: _pairwise_const_sum(c, int(sizes[g])),
            reverse=True,
        )
        proc_start = np.zeros(q_eff, dtype=np.int64)
        scheduled = 0
        for g in group_order:
            proc_start[g] = scheduled
            scheduled += int(sizes[g])

        eff = np.array(
            [dc for dc in dc_rank if dc_vms[dc].size > 0], dtype=np.int64
        )
        num_eff = int(eff.size)
        sizes_dc = np.array([members.size for members in dc_vms], dtype=np.int64)
        members_concat = np.concatenate(dc_vms)
        member_off = np.zeros(q, dtype=np.int64)
        member_off[1:] = np.cumsum(sizes_dc)[:-1]

        # Closed-form diagnostics: ranked block b takes min(cap, n - b*cap)
        # cloudlets, the post-cap overflow lands on the cheapest with VMs.
        overflow = max(0, n - cap * num_eff)
        assigned_per_dc = np.zeros(q, dtype=np.int64)
        for b in range(num_eff):
            assigned_per_dc[eff[b]] += min(cap, max(0, n - b * cap))
        assigned_per_dc[eff[0]] += overflow
        on_cheapest = (
            min(cap, n) + overflow if int(eff[0]) == params["rank0"] else 0
        )
        info = {
            "dc_unit_cost": params["unit_cost"].tolist(),
            "assigned_per_dc": assigned_per_dc.tolist(),
            "spills": n - on_cheapest,
            "cap_per_dc": cap,
        }
        return _HoneyBeeConstAssigner(
            g_starts, proc_start, eff, sizes_dc, members_concat, member_off, cap, info
        )

    # -- general path ---------------------------------------------------------

    def _prepass(
        self,
        stream: ScenarioChunks,
        params: "dict[str, Any]",
        boundaries: "tuple[int, ...]",
    ):
        """Group ordering + scheduled-order scout replay, O(q·num_vms) state.

        Returns ``(g_starts, entry, boundary, info)`` where ``entry[g]``
        is the scout state when group ``g``'s first cloudlet is scheduled
        and ``boundary[b]`` the state when cloudlet index ``b`` is
        scheduled (for each requested shard boundary ``b``).
        """
        n, q = stream.num_cloudlets, stream.num_datacenters
        g_starts = self._group_starts(n, q)
        q_eff = int(g_starts.size - 1)

        # Pass 1: per-group length sums, bit-equal to the batch
        # float(cloudlet_length[group].sum()) keys.
        sums = [
            _PairwiseStreamSum(int(g_starts[g + 1] - g_starts[g]))
            for g in range(q_eff)
        ]
        for offset, chunk in stream:
            lengths = chunk.cloudlet_length
            pos = offset
            end = offset + int(lengths.shape[0])
            while pos < end:
                g = int(np.searchsorted(g_starts, pos, side="right") - 1)
                take = int(min(end, g_starts[g + 1])) - pos
                sums[g].feed(lengths[pos - offset : pos - offset + take])
                pos += take
        group_order = sorted(
            range(q_eff), key=lambda g: sums[g].value(), reverse=True
        )

        # Pass 2: replay the scout in scheduled order, snapshotting the
        # state at each group entry and each requested index boundary.
        wanted = set(boundaries)
        state = _ScoutState.fresh(params["dc_vms"], params["uniform"])
        entry: "dict[int, _ScoutState]" = {}
        boundary: "dict[int, _ScoutState]" = {}
        for g in group_order:
            entry[g] = state.clone()
            lo, hi = int(g_starts[g]), int(g_starts[g + 1])
            has_boundary = any(lo < b < hi for b in wanted)
            for offset, chunk in stream.iter_cloudlet_range(lo, hi):
                lengths = chunk.cloudlet_length
                for j in range(int(lengths.shape[0])):
                    if has_boundary and offset + j in wanted:
                        boundary[offset + j] = state.clone()
                    self._scout_step(params, state, float(lengths[j]))
        info = {
            "dc_unit_cost": params["unit_cost"].tolist(),
            "assigned_per_dc": state.assigned_per_dc.tolist(),
            "spills": state.spills,
            "cap_per_dc": params["cap"],
        }
        return g_starts, entry, boundary, info

    @staticmethod
    def _carry_for(
        g_starts: np.ndarray,
        entry: "dict[int, _ScoutState]",
        boundary: "dict[int, _ScoutState]",
        info: "dict[str, Any]",
        start: int,
        stop: int,
    ) -> "dict[str, Any]":
        """Carried state for serving ``[start, stop)`` in index order.

        Each snapshot lands in exactly one carry (a group start lies in
        exactly one shard), so carries stay mutation-safe even when shards
        execute sequentially in-process.
        """
        g0 = int(np.searchsorted(g_starts, start, side="right") - 1)
        active = entry[g0] if start == int(g_starts[g0]) else boundary[start]
        return {
            "g_starts": g_starts,
            "start": start,
            "active": active,
            "entry": {
                g: entry[g]
                for g in range(int(g_starts.size - 1))
                if start < int(g_starts[g]) < stop
            },
            "info": info,
        }

    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        from repro.workloads.streaming import ConstantCloudlets

        params = self._fleet_params(stream)
        if isinstance(stream.cloudlets, ConstantCloudlets) and params["cyclic_dcs"]:
            with _TEL.span("hbo.scout"):
                return self._open_constant(stream, params)
        if carry is not None:
            return _HoneyBeeGeneralAssigner(
                params,
                np.asarray(carry["g_starts"], dtype=np.int64),
                carry["active"],
                dict(carry["entry"]),
                dict(carry["info"]),
                int(carry["start"]),
            )
        with _TEL.span("hbo.scout"):
            g_starts, entry, boundary, info = self._prepass(stream, params, ())
        serial = self._carry_for(g_starts, entry, boundary, info, 0, stream.num_cloudlets)
        return _HoneyBeeGeneralAssigner(
            params, g_starts, serial["active"], serial["entry"], info, 0
        )

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        from repro.workloads.streaming import ConstantCloudlets

        params = self._fleet_params(stream)
        if isinstance(stream.cloudlets, ConstantCloudlets) and params["cyclic_dcs"]:
            return [None] * len(plans)  # offset-pure: workers open() fresh
        boundaries = tuple(plan.start for plan in plans if plan.start > 0)
        with _TEL.span("hbo.scout"):
            g_starts, entry, boundary, info = self._prepass(stream, params, boundaries)
        return [
            self._carry_for(g_starts, entry, boundary, info, plan.start, plan.stop)
            for plan in plans
        ]


# -- RBS --------------------------------------------------------------------

#: batch width for the RNG fast-forward pre-pass (decoupled from the
#: stream's chunk size so tiny chunks never degenerate to scalar draws).
_DRAW_BATCH = 65_536


def _generator_from_state(state: "dict[str, Any]") -> np.random.Generator:
    """A fresh ``Generator`` positioned at a captured bit-generator state.

    ``state`` is the dict ``rng.bit_generator.state`` returns; it names
    its own bit-generator class, so the clone works for any numpy bit
    generator, and draws from the clone continue the original stream
    bit-for-bit.
    """
    bit_cls = getattr(np.random, state["bit_generator"])
    bit_gen = bit_cls()
    bit_gen.state = state
    return np.random.Generator(bit_gen)


class StreamingRandomBiasedSampling(StreamingScheduler):
    """Chunked RBS (Algorithm 3), bit-equal to the in-memory scheduler.

    The monolithic scheduler draws all ``n`` walk lengths (ω) and then
    all ``n`` start groups from one generator.  Bounded-integer draws
    consume the underlying bit stream element by element (rejection
    sampling retries per value), so a chunked sequence of draws
    concatenates bit-identically to the monolithic draw *and* leaves the
    generator in the identical state.  ``open()`` exploits this to stay
    O(num_vms + chunk_size): it clones the incoming generator twice —
    one clone parked at the monolithic ω position, the other
    fast-forwarded past all ``n`` ω draws to the monolithic start-group
    position (a discarding pre-pass in bounded batches) — then draws
    both sequences lazily per chunk and feeds them straight to the
    shared :class:`~repro.schedulers.rbs.BiasedWalk`, whose O(q) state
    carries across chunks and shard boundaries.
    """

    def __init__(self, num_groups: int | None = None) -> None:
        if num_groups is not None and num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {num_groups}")
        self.num_groups = num_groups

    @property
    def name(self) -> str:
        return "rbs"

    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        from repro.schedulers.rbs import BiasedWalk

        n, m = stream.num_cloudlets, stream.num_vms
        q = self.num_groups if self.num_groups is not None else min(4, m)
        q = min(q, m)
        groups = [
            chunk for chunk in np.array_split(np.arange(m), q) if chunk.size
        ]
        q = len(groups)
        walk = BiasedWalk(groups)

        if carry is None:
            omega_state = rng.bit_generator.state
            # Fast-forward past the n ω draws so the starts clone begins
            # exactly where the monolithic starts draw would.  Rejection
            # sampling consumes the bit stream per element, so batched
            # discarding lands on the identical state.
            remaining = n
            while remaining > 0:
                block = min(remaining, _DRAW_BATCH)
                rng.integers(1, q + 1, size=block)
                remaining -= block
            starts_state = rng.bit_generator.state
            start = 0
        else:
            omega_state = carry["omega_state"]
            starts_state = carry["starts_state"]
            walk.load_state(carry["walk"])
            start = int(carry["start"])

        omega_gen = _generator_from_state(omega_state)
        starts_gen = _generator_from_state(starts_state)

        class Assigner(ChunkAssigner):
            def __init__(self) -> None:
                self._pos = start

            def assign(self, chunk: ScenarioArrays, offset: int) -> np.ndarray:
                return self.assign_range(offset, chunk.num_cloudlets)

            def assign_range(self, offset: int, k: int) -> np.ndarray:
                # The walk needs only the lazy draws, never the cloudlet
                # columns — plan_carries exploits this to advance through
                # the horizon without generating any chunk.
                if offset != self._pos:
                    raise ValueError(
                        "rbs assigner is sequential: expected offset "
                        f"{self._pos}, got {offset}"
                    )
                omegas = omega_gen.integers(1, q + 1, size=k)
                starts = starts_gen.integers(0, q, size=k)
                with _TEL.span("rbs.walk"):
                    out, walks = walk.walk(omegas, starts)
                if _TEL.enabled:
                    _TEL.count("rbs.walk_hops", walks)
                self._pos = offset + k
                return out

            def info(self) -> dict[str, Any]:
                return {
                    "num_groups": q,
                    "mean_walk_length": walk.walks_total / n if n else 0.0,
                }

            def carry_out(self) -> dict[str, Any]:
                return {
                    "omega_state": omega_gen.bit_generator.state,
                    "starts_state": starts_gen.bit_generator.state,
                    "walk": walk.state_dict(),
                    "start": self._pos,
                }

        return Assigner()

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        """Serial walk pre-pass snapshotting RNG + walk state per boundary.

        The walk is strictly sequential (NID depletion depends on every
        earlier draw), so boundary states come from advancing a serial
        assigner — in draw batches, never materialising assignments.
        Workers then re-walk only their own range; the planner's pass is
        the serial-schedule cost every carry-planning scheduler pays.
        """
        assigner = self.open(stream, rng)
        carries: "list[dict[str, Any] | None]" = []
        for i, plan in enumerate(plans):
            carries.append(assigner.carry_out())
            if i == len(plans) - 1:
                break
            pos = plan.start
            while pos < plan.stop:
                k = min(_DRAW_BATCH, plan.stop - pos)
                assigner.assign_range(pos, k)
                pos += k
        return carries


# -- fallback for in-memory-only schedulers ---------------------------------


class InMemoryFallback(StreamingScheduler):
    """Adapter declaring a policy in-memory-only.

    ``open()`` materialises the stream via ``ScenarioChunks.to_spec()``
    (O(n) memory — the point of the declaration), runs the wrapped
    scheduler once over the full context, and serves the assignment in
    chunk slices.  The scheduler sees the same RNG the streaming engine
    derived, so results match ``FastSimulation`` on the equivalent spec.
    """

    streaming_native = False

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    @property
    def name(self) -> str:
        return self.scheduler.name

    def open(
        self,
        stream: ScenarioChunks,
        rng: np.random.Generator,
        carry: "dict[str, Any] | None" = None,
    ) -> ChunkAssigner:
        if carry is not None:
            return _precomputed_from_carry(carry)
        spec = stream.to_spec()
        context = SchedulingContext(
            arrays=spec.arrays(), rng=rng, scenario_name=spec.name
        )
        decision = self.scheduler.schedule_checked(context)
        return _PrecomputedAssigner(decision.assignment, dict(decision.info))

    def plan_carries(
        self, stream: ScenarioChunks, rng: np.random.Generator, plans
    ) -> "list[dict[str, Any] | None]":
        assigner = self.open(stream, rng)
        return _sliced_carries(assigner.assignment, assigner.info(), plans)


#: Native streaming implementations keyed by registry name.
STREAMING_SCHEDULERS: dict[str, type[StreamingScheduler]] = {
    "basetest": StreamingRoundRobin,
    "greedy-mct": StreamingGreedy,
    "honeybee": StreamingHoneyBee,
    "rbs": StreamingRandomBiasedSampling,
}


def make_streaming_scheduler(name: str, **kwargs) -> StreamingScheduler:
    """Instantiate a native streaming scheduler by registry name."""
    try:
        cls = STREAMING_SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"no native streaming scheduler {name!r}; "
            f"available: {sorted(STREAMING_SCHEDULERS)} "
            "(others run through as_streaming()'s in-memory fallback)"
        ) from None
    return cls(**kwargs)


def as_streaming(scheduler: "Scheduler | StreamingScheduler") -> StreamingScheduler:
    """The streaming counterpart of an in-memory scheduler.

    Native implementations (round-robin, greedy, HBO, RBS) are constructed
    with the wrapped scheduler's own parameters; anything else — the
    metaheuristics in particular — is wrapped in :class:`InMemoryFallback`,
    which materialises the workload before scheduling.
    """
    if isinstance(scheduler, StreamingScheduler):
        return scheduler
    name = scheduler.name
    if name == "basetest":
        return StreamingRoundRobin(start_offset=scheduler.start_offset)
    if name == "greedy-mct":
        return StreamingGreedy()
    if name == "honeybee":
        return StreamingHoneyBee(
            load_balance_factor=scheduler.load_balance_factor,
            scout_time_bias=scheduler.scout_time_bias,
        )
    if name == "rbs":
        return StreamingRandomBiasedSampling(num_groups=scheduler.num_groups)
    return InMemoryFallback(scheduler)


__all__ = [
    "ChunkAssigner",
    "StreamingScheduler",
    "StreamingRoundRobin",
    "StreamingGreedy",
    "StreamingHoneyBee",
    "StreamingRandomBiasedSampling",
    "InMemoryFallback",
    "STREAMING_SCHEDULERS",
    "make_streaming_scheduler",
    "as_streaming",
]
