"""Scheduling as a service: live batch admission over the streaming path.

The streaming schedulers (PR 5/7) decide each chunk in O(num_vms) from
carried per-VM state, so a long-lived process can hold one open
:class:`~repro.schedulers.streaming.ChunkAssigner` per fleet and answer
cloudlet batches as they arrive — same code path, same arithmetic, same
placements as an offline run.  This package is that process:

* :mod:`repro.serve.service` — fleets, submission handling, telemetry
  (``serve.requests`` / ``serve.batch_size`` counters, per-fleet p50/p99
  latency gauges) and manifest provenance;
* :mod:`repro.serve.protocol` — the JSON wire contract and 4xx error
  taxonomy;
* :mod:`repro.serve.http` — a stdlib asyncio HTTP/1.1 façade;
* :mod:`repro.serve.loadgen` — a deterministic open-loop load generator
  with SLO gates and the offline bit-identity check.

Determinism guarantee (pinned in ``tests/serve`` and
``tools/serve_smoke.py``): for any sequence of accepted submissions, the
concatenated live placements equal an offline
:class:`~repro.cloud.fast.StreamingSimulation` over the same cloudlets in
admission order, bit for bit — see docs/serving.md.

The whole API is importable from the package root::

    >>> from repro.serve import FleetSpec, SchedulerService
    >>> service = SchedulerService()
    >>> _ = service.add_fleet(FleetSpec(name="edge", num_vms=3, scheduler="basetest"))
    >>> service.submit("edge", {"count": 5, "length": 900.0}).placements.tolist()
    [0, 1, 2, 0, 1]

and rejects what it cannot serve deterministically::

    >>> from repro.serve import ServeError
    >>> try:
    ...     FleetSpec(name="edge", scheduler="honeybee")
    ... except ServeError as exc:
    ...     (exc.status, exc.code)
    (400, 'unservable-scheduler')
"""

from repro.serve.http import ServeHTTP, ServerHandle, run_server, start_http_server
from repro.serve.loadgen import (
    LoadReport,
    LoadTrace,
    SloSpec,
    TraceSpec,
    assert_bit_identical,
    build_trace,
    replay,
    replay_inprocess,
)
from repro.serve.protocol import (
    MAX_BATCH,
    MAX_BODY_BYTES,
    ServeError,
    SubmissionBatch,
    parse_submission,
)
from repro.serve.service import (
    SERVABLE_SCHEDULERS,
    Fleet,
    FleetSpec,
    Placement,
    SchedulerService,
    concat_batches,
    offline_assignments,
)

__all__ = [
    "SERVABLE_SCHEDULERS",
    "MAX_BATCH",
    "MAX_BODY_BYTES",
    "ServeError",
    "SubmissionBatch",
    "parse_submission",
    "FleetSpec",
    "Fleet",
    "Placement",
    "SchedulerService",
    "concat_batches",
    "offline_assignments",
    "ServeHTTP",
    "ServerHandle",
    "run_server",
    "start_http_server",
    "TraceSpec",
    "LoadTrace",
    "build_trace",
    "SloSpec",
    "LoadReport",
    "replay",
    "replay_inprocess",
    "assert_bit_identical",
]
