"""Minimal asyncio HTTP/1.1 façade over :class:`~repro.serve.service.SchedulerService`.

Stdlib only (``asyncio.start_server`` plus hand-rolled request parsing):
the repo's no-new-dependencies rule extends to the serving layer.  The
surface is deliberately small:

=======  ==============================  =======================================
Method   Path                            Response
=======  ==============================  =======================================
GET      ``/healthz``                    ``{"status": "ok", "fleets": [...]}``
GET      ``/v1/fleets``                  fleet stats (one entry per fleet)
GET      ``/v1/fleets/{name}``           fleet stats + full run manifest
GET      ``/v1/stats``                   alias of ``/v1/fleets``
POST     ``/v1/fleets/{name}/submit``    ``{"offset": ..., "placements": [...]}``
=======  ==============================  =======================================

Connections are keep-alive by default.  Every client-side fault maps to
a JSON 4xx via :class:`~repro.serve.protocol.ServeError` and the
connection loop continues; unexpected exceptions map to a JSON 500 and
are counted as ``serve.errors`` — the server loop itself never dies from
a request (pinned in ``tests/serve/test_http.py``).

Two entry points: :func:`run_server` blocks the calling thread (the CLI
``serve`` target), and :func:`start_http_server` runs the loop on a
daemon thread and returns a handle with the bound port — what the tests,
the load generator and the smoke tool use.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any

from repro.obs.telemetry import TELEMETRY as _TEL
from repro.serve.protocol import MAX_BODY_BYTES, ServeError, decode_json
from repro.serve.service import SchedulerService

_MAX_HEADER_BYTES = 16 * 1024
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _encode_response(status: int, payload: Any, keep_alive: bool) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> "tuple[str, str, dict[str, str], bytes] | None":
    """Parse one request; ``None`` on clean EOF before a request line."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServeError(400, "bad-http", "truncated request line")
    except asyncio.LimitOverrunError:
        raise ServeError(400, "bad-http", "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ServeError(400, "bad-http", f"malformed request line: {line[:80]!r}")
    method, path, _version = parts

    headers: dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ServeError(400, "bad-http", "truncated headers")
        if line == b"\r\n":
            break
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise ServeError(400, "bad-http", "headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ServeError(400, "bad-http", f"malformed header: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ServeError(400, "bad-http", "non-numeric Content-Length")
        if length < 0:
            raise ServeError(400, "bad-http", "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise ServeError(
                413, "body-too-large",
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} cap",
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ServeError(400, "bad-http", "body shorter than Content-Length")
    return method, path, headers, body


class ServeHTTP:
    """The asyncio protocol handler bound to one service instance."""

    def __init__(self, service: SchedulerService) -> None:
        self.service = service
        self._server: "asyncio.AbstractServer | None" = None
        self.port: "int | None" = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=2**16
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                    if request is None:
                        break
                    method, path, headers, body = request
                    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                    status, payload = self._route(method, path, body)
                except ServeError as exc:
                    # Client fault: answer and, for protocol-level faults
                    # (we may be desynchronised mid-stream), drop the
                    # connection — the server loop itself stays up.
                    keep_alive = exc.code not in ("bad-http", "body-too-large")
                    status, payload = exc.status, exc.to_payload()
                except (ConnectionResetError, BrokenPipeError):
                    break
                except Exception as exc:  # noqa: BLE001 - the loop must survive
                    _TEL.count("serve.errors")
                    keep_alive = True
                    status, payload = 500, {"error": "internal", "detail": str(exc)}
                writer.write(_encode_response(status, payload, keep_alive))
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not keep_alive:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _route(self, method: str, path: str, body: bytes) -> tuple[int, Any]:
        service = self.service
        if path == "/healthz":
            if method != "GET":
                raise ServeError(405, "method-not-allowed", f"{method} {path}")
            return 200, {"status": "ok", "fleets": service.fleet_names}
        if path in ("/v1/fleets", "/v1/stats"):
            if method != "GET":
                raise ServeError(405, "method-not-allowed", f"{method} {path}")
            return 200, service.stats()
        if path.startswith("/v1/fleets/"):
            rest = path[len("/v1/fleets/"):]
            if rest.endswith("/submit"):
                if method != "POST":
                    raise ServeError(405, "method-not-allowed", f"{method} {path}")
                name = rest[: -len("/submit")]
                t0 = time.perf_counter()
                placed = service.submit(name, decode_json(body))
                service.fleet(name).observe_latency(time.perf_counter() - t0)
                return 200, placed.to_payload()
            if method != "GET":
                raise ServeError(405, "method-not-allowed", f"{method} {path}")
            return 200, service.fleet(rest).describe()
        raise ServeError(404, "not-found", f"no route for {method} {path}")


def run_server(
    service: SchedulerService, host: str = "127.0.0.1", port: int = 8080
) -> None:
    """Serve on the calling thread until interrupted (the CLI entry point)."""

    async def _main() -> None:
        http = ServeHTTP(service)
        await http.start(host, port)
        print(f"serving on http://{host}:{http.port} (Ctrl-C to stop)")
        await http.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class ServerHandle:
    """A live background server: ``host``/``port``/``url``, ``close()`` stops it."""

    def __init__(self, host: str, port: int, loop, thread) -> None:
        self.host = host
        self.port = port
        self.url = f"http://{host}:{port}"
        self._loop = loop
        self._thread = thread

    def close(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_http_server(
    service: SchedulerService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Start the HTTP layer on a daemon thread; returns once it is listening.

    ``port=0`` binds an ephemeral port (the tests' and smoke tool's mode);
    read the bound one off the returned handle.
    """
    loop = asyncio.new_event_loop()
    http = ServeHTTP(service)
    started = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(http.start(host, port))
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(http.aclose())
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve-http", daemon=True)
    thread.start()
    started.wait(timeout=10)
    if failure:
        raise failure[0]
    assert http.port is not None
    return ServerHandle(host, http.port, loop, thread)


__all__ = ["ServeHTTP", "ServerHandle", "run_server", "start_http_server"]
