"""Deterministic open-loop load generator for the serving layer.

A :class:`TraceSpec` fully determines a :class:`LoadTrace`: request
arrival instants come from
:class:`~repro.workloads.timeline.TimelineArrivals` (the PR-6 exact
inversion sampler — here a constant-rate profile plus optional burst
batches) under the ``serve/arrivals`` RNG stream, and per-request batch
sizes and cloudlet lengths are drawn monolithically from
``serve/workload``.  Two processes building the same spec get the same
trace bit-for-bit, which is what makes the smoke's SLO gate and
differential check reproducible.

Replay is **open-loop**: request ``i`` is dispatched at its scheduled
instant regardless of whether earlier responses have arrived (up to a
connection cap that only bounds sockets, not the schedule), and latency
is measured from the *scheduled* instant to response completion — queue
wait counts against the service, so the percentiles are free of
coordinated omission.  ``time_scale=0`` collapses the schedule into a
max-throughput replay.

:func:`assert_bit_identical` closes the loop with the offline engine: it
reorders the responses by admission offset, rebuilds the submitted
columns in that order, and requires
:func:`~repro.serve.service.offline_assignments` to reproduce the
service's placements bit-for-bit at several chunk geometries.

Example::

    >>> from repro.serve.loadgen import TraceSpec, build_trace
    >>> trace = build_trace(TraceSpec(requests=3, rate=100.0, seed=7))
    >>> trace.num_requests, trace.num_cloudlets > 0
    (3, True)
    >>> again = build_trace(TraceSpec(requests=3, rate=100.0, seed=7))
    >>> again.lengths.tolist() == trace.lengths.tolist()
    True
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.rng import spawn_rng
from repro.serve.protocol import SubmissionBatch
from repro.serve.service import (
    FleetSpec,
    SchedulerService,
    concat_batches,
    offline_assignments,
)
from repro.workloads.streaming import DEFAULT_CHUNK_SIZE
from repro.workloads.timeline import TimelineArrivals


@dataclass(frozen=True)
class TraceSpec:
    """Seeded description of one load run (arrivals + workload shape)."""

    requests: int = 1_000
    #: mean request arrival rate, requests per second.
    rate: float = 500.0
    #: extra arrival batches: ``(instant_seconds, request_count)`` pairs.
    bursts: tuple = ()
    #: per-request batch size is uniform on [batch_low, batch_high].
    batch_low: int = 1
    batch_high: int = 32
    #: per-cloudlet length is uniform on [length_low, length_high).
    length_low: float = 500.0
    length_high: float = 2_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if not 1 <= self.batch_low <= self.batch_high:
            raise ValueError(
                f"need 1 <= batch_low <= batch_high, got "
                f"[{self.batch_low}, {self.batch_high}]"
            )
        if not 0 < self.length_low <= self.length_high:
            raise ValueError(
                f"need 0 < length_low <= length_high, got "
                f"[{self.length_low}, {self.length_high}]"
            )


@dataclass(frozen=True)
class LoadTrace:
    """A materialised trace: schedule plus flat per-cloudlet columns."""

    spec: TraceSpec
    #: scheduled dispatch instant of each request, seconds from t=0.
    times: np.ndarray
    #: request ``i`` owns cloudlets ``[offsets[i], offsets[i+1])``.
    offsets: np.ndarray
    lengths: np.ndarray

    @property
    def num_requests(self) -> int:
        return int(self.times.shape[0])

    @property
    def num_cloudlets(self) -> int:
        return int(self.lengths.shape[0])

    def batch(self, i: int) -> SubmissionBatch:
        lengths = self.lengths[self.offsets[i]:self.offsets[i + 1]]
        k = lengths.shape[0]
        return SubmissionBatch(
            cloudlet_length=lengths,
            cloudlet_pes=np.ones(k, dtype=np.int64),
            cloudlet_file_size=np.zeros(k),
            cloudlet_output_size=np.zeros(k),
        )

    def body(self, i: int) -> bytes:
        lengths = self.lengths[self.offsets[i]:self.offsets[i + 1]]
        return json.dumps({"cloudlets": lengths.tolist()}).encode("utf-8")


def build_trace(spec: TraceSpec) -> LoadTrace:
    """Materialise the trace a :class:`TraceSpec` describes (deterministic)."""
    arrivals = TimelineArrivals(
        ((0.0, math.inf, spec.rate, 0.0),), tuple(spec.bursts)
    )
    times = arrivals.sample(spawn_rng(spec.seed, "serve/arrivals"), spec.requests)
    workload_rng = spawn_rng(spec.seed, "serve/workload")
    sizes = workload_rng.integers(
        spec.batch_low, spec.batch_high + 1, size=spec.requests
    )
    offsets = np.zeros(spec.requests + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    lengths = workload_rng.uniform(
        spec.length_low, spec.length_high, size=int(offsets[-1])
    )
    return LoadTrace(spec=spec, times=times, offsets=offsets, lengths=lengths)


@dataclass(frozen=True)
class SloSpec:
    """Latency/error/throughput gates evaluated against a :class:`LoadReport`."""

    p50_ms: "float | None" = None
    p99_ms: "float | None" = None
    max_error_rate: float = 0.0
    min_throughput_rps: "float | None" = None

    def violations(self, report: "LoadReport") -> list[str]:
        out = []
        if self.p50_ms is not None and report.p50_ms > self.p50_ms:
            out.append(f"p50 {report.p50_ms:.2f} ms > budget {self.p50_ms:g} ms")
        if self.p99_ms is not None and report.p99_ms > self.p99_ms:
            out.append(f"p99 {report.p99_ms:.2f} ms > budget {self.p99_ms:g} ms")
        if report.error_rate > self.max_error_rate:
            out.append(
                f"error rate {report.error_rate:.4f} > budget {self.max_error_rate:g}"
            )
        if (
            self.min_throughput_rps is not None
            and report.throughput_rps < self.min_throughput_rps
        ):
            out.append(
                f"throughput {report.throughput_rps:.0f} rps < "
                f"budget {self.min_throughput_rps:g} rps"
            )
        return out


@dataclass
class LoadReport:
    """Outcome of one replay, in request order."""

    #: scheduled-instant → response-completion latency per request, ms.
    latencies_ms: np.ndarray
    #: admission offset returned per request (-1 on error).
    offsets: np.ndarray
    #: placements per request (``None`` when ``collect=False``).
    placements: "list[np.ndarray] | None"
    errors: int
    elapsed_s: float
    cloudlets: int

    @property
    def requests(self) -> int:
        return int(self.latencies_ms.shape[0])

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def p50_ms(self) -> float:
        return float(np.percentile(self.latencies_ms, 50))

    @property
    def p99_ms(self) -> float:
        return float(np.percentile(self.latencies_ms, 99))

    def to_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "cloudlets": self.cloudlets,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.p50_ms,
            "latency_p99_ms": self.p99_ms,
            "latency_max_ms": float(self.latencies_ms.max()),
        }


async def _http_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    body: bytes,
) -> tuple[int, Any]:
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: loadgen\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n"
        "\r\n"
    ).encode("ascii")
    writer.write(head + body)
    await writer.drain()
    status_line = await reader.readuntil(b"\r\n")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readuntil(b"\r\n")
        if line == b"\r\n":
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    payload = json.loads(await reader.readexactly(length)) if length else None
    return status, payload


async def _replay_async(
    trace: LoadTrace,
    fleet: str,
    host: str,
    port: int,
    time_scale: float,
    max_connections: int,
    collect: bool,
) -> LoadReport:
    n = trace.num_requests
    latencies = np.zeros(n)
    offsets = np.full(n, -1, dtype=np.int64)
    placements: "list[np.ndarray] | None" = [np.empty(0, np.int64)] * n if collect else None
    errors = 0
    pool: "asyncio.Queue" = asyncio.Queue()
    opened = 0
    loop = asyncio.get_running_loop()
    path = f"/v1/fleets/{fleet}/submit"
    t0 = loop.time()

    async def fire(i: int, scheduled: float) -> None:
        nonlocal errors, opened
        if pool.empty() and opened < max_connections:
            opened += 1
            conn = await asyncio.open_connection(host, port)
        else:
            conn = await pool.get()
        try:
            status, payload = await _http_request(
                *conn, "POST", path, trace.body(i)
            )
            latencies[i] = (loop.time() - t0 - scheduled) * 1e3
            if status == 200:
                offsets[i] = payload["offset"]
                if placements is not None:
                    placements[i] = np.asarray(payload["placements"], dtype=np.int64)
            else:
                errors += 1
        except (ConnectionError, asyncio.IncompleteReadError):
            latencies[i] = (loop.time() - t0 - scheduled) * 1e3
            errors += 1
            conn[1].close()
            opened -= 1
            return
        pool.put_nowait(conn)

    tasks = []
    for i in range(n):
        scheduled = float(trace.times[i]) * time_scale
        delay = t0 + scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(i, scheduled)))
    await asyncio.gather(*tasks)
    elapsed = loop.time() - t0
    while not pool.empty():
        _, writer = pool.get_nowait()
        writer.close()
    return LoadReport(
        latencies_ms=latencies,
        offsets=offsets,
        placements=placements,
        errors=errors,
        elapsed_s=elapsed,
        cloudlets=trace.num_cloudlets,
    )


def replay(
    trace: LoadTrace,
    fleet: str,
    host: str,
    port: int,
    time_scale: float = 1.0,
    max_connections: int = 16,
    collect: bool = True,
) -> LoadReport:
    """Replay a trace against a live server; returns the measured report."""
    if time_scale < 0:
        raise ValueError(f"time_scale must be >= 0, got {time_scale}")
    if max_connections < 1:
        raise ValueError(f"max_connections must be >= 1, got {max_connections}")
    return asyncio.run(
        _replay_async(trace, fleet, host, port, time_scale, max_connections, collect)
    )


def replay_inprocess(
    trace: LoadTrace, service: SchedulerService, fleet: str
) -> LoadReport:
    """Sequential no-HTTP replay (differential tests, latency floor bench)."""
    n = trace.num_requests
    latencies = np.zeros(n)
    offsets = np.empty(n, dtype=np.int64)
    placements: list[np.ndarray] = []
    t0 = time.perf_counter()
    for i in range(n):
        start = time.perf_counter()
        placed = service.submit(fleet, trace.batch(i))
        latencies[i] = (time.perf_counter() - start) * 1e3
        offsets[i] = placed.offset
        placements.append(placed.placements)
        service.fleet(fleet).observe_latency(latencies[i] / 1e3)
    return LoadReport(
        latencies_ms=latencies,
        offsets=offsets,
        placements=placements,
        errors=0,
        elapsed_s=time.perf_counter() - t0,
        cloudlets=trace.num_cloudlets,
    )


def assert_bit_identical(
    fleet_spec: FleetSpec,
    trace: LoadTrace,
    report: LoadReport,
    chunk_sizes: tuple = (1_024, DEFAULT_CHUNK_SIZE),
) -> None:
    """Require the offline engine to reproduce the service's placements.

    Responses are reordered by admission offset (concurrent replays may
    admit requests out of dispatch order — the guarantee is stated against
    *admission* order), the submitted columns are rebuilt in that order,
    and :func:`~repro.serve.service.offline_assignments` must match the
    concatenated live placements bit-for-bit at every chunk geometry.
    """
    if report.placements is None:
        raise ValueError("replay ran with collect=False; placements unavailable")
    if report.errors:
        raise AssertionError(f"{report.errors} failed requests in the replay")
    order = np.argsort(report.offsets, kind="stable")
    admitted = concat_batches([trace.batch(int(i)) for i in order])
    live = np.concatenate([report.placements[int(i)] for i in order])
    expected_offsets = np.cumsum(
        [0] + [trace.batch(int(i)).size for i in order[:-1]]
    )
    if not np.array_equal(report.offsets[order], expected_offsets):
        raise AssertionError("admission offsets are not contiguous")
    for chunk_size in chunk_sizes:
        offline = offline_assignments(fleet_spec, admitted, chunk_size=chunk_size)
        if not np.array_equal(offline, live):
            first = int(np.flatnonzero(offline != live)[0])
            raise AssertionError(
                f"placements diverge from offline replay at cloudlet {first} "
                f"(chunk_size={chunk_size}): {live[first]} != {offline[first]}"
            )


__all__ = [
    "TraceSpec",
    "LoadTrace",
    "build_trace",
    "SloSpec",
    "LoadReport",
    "replay",
    "replay_inprocess",
    "assert_bit_identical",
]
