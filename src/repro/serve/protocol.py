"""JSON wire contract for the serving layer.

A submission is a JSON object describing one cloudlet batch.  Two shapes
are accepted:

* explicit — ``{"cloudlets": [{"length": 1200.0}, 800.0, ...]}`` where
  each entry is either an object with a ``length`` field (``file_size``
  / ``output_size`` optional, default 0) or a bare number used as the
  length;
* constant shorthand — ``{"count": 64, "length": 1000.0}``, equivalent
  to 64 identical explicit entries.  The load generator uses this form
  so 50k-request traces stay cheap to encode.

Every client-side fault — undecodable JSON, an empty batch, a
non-positive length, an oversized batch, a multi-PE cloudlet — raises
:class:`ServeError` carrying an HTTP 4xx status and a stable machine
``code``.  The HTTP layer converts the error into a JSON response and
keeps the connection loop alive; nothing a client sends can crash the
server (pinned in ``tests/serve/test_http.py``).

Example::

    >>> from repro.serve.protocol import parse_submission
    >>> batch = parse_submission({"cloudlets": [1000.0, {"length": 500.0}]})
    >>> batch.cloudlet_length.tolist()
    [1000.0, 500.0]
    >>> parse_submission({"count": 3, "length": 250.0}).cloudlet_length.tolist()
    [250.0, 250.0, 250.0]
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from math import isfinite
from typing import Any, Mapping

import numpy as np

#: Largest cloudlet batch one submission may carry.  Mirrors the default
#: streaming chunk width: the service folds each submission as one chunk,
#: so this bound keeps per-request memory O(chunk) like the offline path.
MAX_BATCH = 65_536

#: Largest request body the HTTP layer will read, in bytes.
MAX_BODY_BYTES = 8 * 2**20


class ServeError(Exception):
    """A client-side fault mapped to a 4xx-style JSON response.

    ``status`` is the HTTP status code, ``code`` a stable machine-readable
    identifier (``bad-json``, ``bad-request``, ``unknown-fleet``, ...).
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_payload(self) -> dict[str, Any]:
        return {"error": self.code, "detail": self.message}


@dataclass(frozen=True)
class SubmissionBatch:
    """A validated cloudlet batch, as index-aligned numpy columns."""

    cloudlet_length: np.ndarray
    cloudlet_pes: np.ndarray
    cloudlet_file_size: np.ndarray
    cloudlet_output_size: np.ndarray

    @property
    def size(self) -> int:
        return int(self.cloudlet_length.shape[0])


def decode_json(body: bytes) -> Any:
    """Decode a request body, mapping decode failures to a 400."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(400, "bad-json", f"request body is not valid JSON: {exc}")


def _field(item: Mapping[str, Any], key: str, default: float, where: str) -> float:
    value = item.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeError(400, "bad-request", f"{where}: {key} must be a number")
    value = float(value)
    if not isfinite(value) or value < 0:
        raise ServeError(
            400, "bad-request", f"{where}: {key} must be finite and >= 0"
        )
    return value


def _length(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeError(400, "bad-request", f"{where}: length must be a number")
    value = float(value)
    if not isfinite(value) or value <= 0:
        raise ServeError(400, "bad-request", f"{where}: length must be finite and > 0")
    return value


def parse_submission(payload: Any, max_batch: int = MAX_BATCH) -> SubmissionBatch:
    """Validate a decoded submission payload into a :class:`SubmissionBatch`.

    Raises :class:`ServeError` (status 400 or 413) on any malformed input;
    the caller converts it into a clean error response.
    """
    if not isinstance(payload, Mapping):
        raise ServeError(400, "bad-request", "submission must be a JSON object")

    if "cloudlets" in payload and "count" in payload:
        raise ServeError(
            400, "bad-request", "submission has both 'cloudlets' and 'count'"
        )

    if "count" in payload:
        count = payload["count"]
        if isinstance(count, bool) or not isinstance(count, int):
            raise ServeError(400, "bad-request", "count must be an integer")
        if count < 1:
            raise ServeError(400, "bad-request", f"count must be >= 1, got {count}")
        if count > max_batch:
            raise ServeError(
                413, "batch-too-large", f"count {count} exceeds the {max_batch} cap"
            )
        length = _length(payload.get("length"), "constant submission")
        file_size = _field(payload, "file_size", 0.0, "constant submission")
        output_size = _field(payload, "output_size", 0.0, "constant submission")
        _reject_multi_pe(payload, "constant submission")
        return SubmissionBatch(
            cloudlet_length=np.full(count, length),
            cloudlet_pes=np.ones(count, dtype=np.int64),
            cloudlet_file_size=np.full(count, file_size),
            cloudlet_output_size=np.full(count, output_size),
        )

    cloudlets = payload.get("cloudlets")
    if not isinstance(cloudlets, list):
        raise ServeError(
            400, "bad-request", "submission requires a 'cloudlets' list or 'count'"
        )
    if not cloudlets:
        raise ServeError(400, "empty-batch", "cloudlets list must not be empty")
    if len(cloudlets) > max_batch:
        raise ServeError(
            413,
            "batch-too-large",
            f"batch of {len(cloudlets)} exceeds the {max_batch} cap",
        )

    n = len(cloudlets)
    lengths = np.empty(n)
    file_sizes = np.zeros(n)
    output_sizes = np.zeros(n)
    for i, item in enumerate(cloudlets):
        where = f"cloudlets[{i}]"
        if isinstance(item, Mapping):
            lengths[i] = _length(item.get("length"), where)
            file_sizes[i] = _field(item, "file_size", 0.0, where)
            output_sizes[i] = _field(item, "output_size", 0.0, where)
            _reject_multi_pe(item, where)
        else:
            lengths[i] = _length(item, where)
    return SubmissionBatch(
        cloudlet_length=lengths,
        cloudlet_pes=np.ones(n, dtype=np.int64),
        cloudlet_file_size=file_sizes,
        cloudlet_output_size=output_sizes,
    )


def _reject_multi_pe(item: Mapping[str, Any], where: str) -> None:
    # The streaming execution fold is single-PE only (the paper's setting),
    # so the contract rejects anything else up front instead of placing a
    # cloudlet the execution model cannot account for.
    pes = item.get("pes", 1)
    if isinstance(pes, bool) or not isinstance(pes, int) or pes != 1:
        raise ServeError(
            400, "bad-request", f"{where}: only single-PE cloudlets are servable"
        )


__all__ = [
    "MAX_BATCH",
    "MAX_BODY_BYTES",
    "ServeError",
    "SubmissionBatch",
    "decode_json",
    "parse_submission",
]
