"""Scheduling-as-a-service core: long-lived fleets answering live batches.

A :class:`SchedulerService` holds one :class:`Fleet` per configured
:class:`FleetSpec`.  Each fleet keeps an *open*
:class:`~repro.schedulers.streaming.ChunkAssigner` — the same object the
offline streaming engine drives — and feeds every accepted submission to
it as one chunk at the fleet's running cloudlet offset.  Because the
assigner carries its per-VM state across submissions exactly as it does
across chunks, the placements returned live are bit-identical to an
offline :class:`~repro.cloud.fast.StreamingSimulation` replay of the same
cloudlets in the same admission order (pinned by the differential suite
in ``tests/serve``; :func:`offline_assignments` is the reference side).

Only schedulers whose streaming form sets
:attr:`~repro.schedulers.streaming.StreamingScheduler.admits_online` are
servable — round-robin and greedy-MCT.  HBO orders cloudlet *groups* by
global descending length and RBS pre-draws its whole walk-length/start
sequence in one monolithic pass, so neither can decide a live batch
without the workload's future; requesting them is a 400, not a silent
approximation.

Example::

    >>> from repro.serve import FleetSpec, SchedulerService
    >>> service = SchedulerService()
    >>> fleet = service.add_fleet(
    ...     FleetSpec(name="edge", num_vms=4, scheduler="greedy-mct"))
    >>> placed = service.submit("edge", {"cloudlets": [1000.0, 500.0, 2000.0]})
    >>> placed.placements.tolist()
    [0, 1, 2]
    >>> service.submit("edge", {"cloudlets": [100.0]}).offset
    3
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.rng import spawn_rng
from repro.obs.manifest import RunManifest, capture_manifest
from repro.obs.telemetry import TELEMETRY as _TEL
from repro.schedulers.streaming import (
    STREAMING_SCHEDULERS,
    make_streaming_scheduler,
)
from repro.serve.protocol import ServeError, SubmissionBatch, parse_submission
from repro.workloads.spec import ScenarioArrays
from repro.workloads.streaming import (
    DEFAULT_CHUNK_SIZE,
    ScenarioChunks,
    heterogeneous_stream,
    homogeneous_stream,
)

#: Streaming schedulers that can answer live submissions bit-identically
#: to the offline path (``admits_online`` on their streaming class).
SERVABLE_SCHEDULERS: tuple[str, ...] = tuple(
    sorted(
        name for name, cls in STREAMING_SCHEDULERS.items() if cls.admits_online
    )
)

_FAMILIES = ("homogeneous", "heterogeneous")

#: Latency observations kept per fleet for the percentile gauges.
_LATENCY_WINDOW = 4096

#: Export latency gauges every this many observations (plus on demand in
#: ``stats()``), keeping the per-request overhead O(1).
_GAUGE_EVERY = 256


@dataclass(frozen=True)
class FleetSpec:
    """Configuration of one served fleet.

    ``family`` selects the paper's homogeneous or heterogeneous fleet
    template (same VM/datacenter arrays as the offline scenarios, derived
    from ``seed``); ``scheduler`` must be one of
    :data:`SERVABLE_SCHEDULERS`.
    """

    name: str
    num_vms: int = 100
    scheduler: str = "greedy-mct"
    family: str = "homogeneous"
    seed: int = 0
    num_datacenters: "int | None" = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ServeError(
                400, "bad-fleet", f"fleet name must be non-empty without '/': {self.name!r}"
            )
        if self.num_vms < 1:
            raise ServeError(400, "bad-fleet", f"num_vms must be >= 1, got {self.num_vms}")
        if self.family not in _FAMILIES:
            raise ServeError(
                400, "bad-fleet", f"unknown family {self.family!r}; one of {_FAMILIES}"
            )
        if self.scheduler not in STREAMING_SCHEDULERS:
            raise ServeError(
                400,
                "unknown-scheduler",
                f"no streaming scheduler {self.scheduler!r}; "
                f"servable: {list(SERVABLE_SCHEDULERS)}",
            )
        if self.scheduler not in SERVABLE_SCHEDULERS:
            raise ServeError(
                400,
                "unservable-scheduler",
                f"{self.scheduler!r} cannot admit live batches (its first "
                "decision depends on the whole workload); servable: "
                f"{list(SERVABLE_SCHEDULERS)}",
            )

    def fleet_stream(self) -> ScenarioChunks:
        """The fleet template: resident VM/DC arrays plus one placeholder cloudlet.

        The placeholder is never scheduled — :meth:`Fleet.submit` and
        :func:`offline_assignments` both swap in real cloudlet columns via
        :meth:`~repro.workloads.streaming.ScenarioChunks.with_cloudlets`,
        which keeps the stream name (and therefore the derived
        ``scheduler/{name}`` RNG stream) identical on both sides.
        """
        build = homogeneous_stream if self.family == "homogeneous" else heterogeneous_stream
        kwargs: dict[str, Any] = {"seed": self.seed, "name": f"serve-{self.name}"}
        if self.num_datacenters is not None:
            kwargs["num_datacenters"] = self.num_datacenters
        template = build(self.num_vms, 1, **kwargs)
        # A materialised placeholder keeps live and offline replays on the
        # same scheduler code path: greedy's constant-workload cyclic fast
        # path triggers on ConstantCloudlets, which a live fleet can never
        # promise (the next submission may carry any lengths).
        return template.with_cloudlets(np.ones(1))

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "num_vms": self.num_vms,
            "scheduler": self.scheduler,
            "family": self.family,
            "seed": self.seed,
            "num_datacenters": self.num_datacenters,
        }


@dataclass(frozen=True)
class Placement:
    """One accepted submission: where each cloudlet went.

    ``offset`` is the fleet's cloudlet index of ``placements[0]`` — the
    admission-order position that makes the response comparable to an
    offline replay (sort responses by offset, concatenate, compare).
    """

    fleet: str
    offset: int
    placements: np.ndarray

    @property
    def size(self) -> int:
        return int(self.placements.shape[0])

    def to_payload(self) -> dict[str, Any]:
        return {
            "fleet": self.fleet,
            "offset": self.offset,
            "count": self.size,
            "placements": self.placements.tolist(),
        }


class LatencyWindow:
    """Sliding window of the last N latencies with on-demand percentiles."""

    def __init__(self, size: int = _LATENCY_WINDOW) -> None:
        self._values = np.zeros(size)
        self._count = 0

    def observe(self, seconds: float) -> None:
        self._values[self._count % self._values.shape[0]] = seconds
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def percentile_ms(self, q: float) -> float:
        filled = min(self._count, self._values.shape[0])
        if filled == 0:
            return 0.0
        return float(np.percentile(self._values[:filled], q)) * 1e3


class Fleet:
    """One served fleet: resident arrays, an open assigner, running totals."""

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec
        self.scheduler = make_streaming_scheduler(spec.scheduler)
        stream = spec.fleet_stream()
        self._stream = stream
        self.assigner = self.scheduler.open(
            stream, spawn_rng(spec.seed, f"scheduler/{stream.name}")
        )
        m = stream.num_vms
        self._inv_capacity = 1.0 / (stream.vm_mips * stream.vm_pes)
        self.offset = 0
        self.requests = 0
        self.backlog = np.zeros(m)
        self.counts = np.zeros(m, dtype=np.int64)
        self.latency = LatencyWindow()
        self.manifest: RunManifest = capture_manifest(
            scenario=stream,
            scheduler=self.scheduler,
            seed=spec.seed,
            engine="serve",
            fleet=spec.name,
            family=spec.family,
            servable=list(SERVABLE_SCHEDULERS),
        )

    def submit(self, batch: SubmissionBatch) -> Placement:
        stream = self._stream
        chunk = ScenarioArrays(
            cloudlet_length=batch.cloudlet_length,
            cloudlet_pes=batch.cloudlet_pes,
            cloudlet_file_size=batch.cloudlet_file_size,
            cloudlet_output_size=batch.cloudlet_output_size,
            vm_mips=stream.vm_mips,
            vm_pes=stream.vm_pes,
            vm_ram=stream.vm_ram,
            vm_bw=stream.vm_bw,
            vm_size=stream.vm_size,
            vm_datacenter=stream.vm_datacenter,
            dc_cost_per_mem=stream.dc_cost_per_mem,
            dc_cost_per_storage=stream.dc_cost_per_storage,
            dc_cost_per_bw=stream.dc_cost_per_bw,
            dc_cost_per_cpu=stream.dc_cost_per_cpu,
        )
        offset = self.offset
        with _TEL.span("serve.submit"):
            assignment = np.asarray(self.assigner.assign(chunk, offset))
        k = batch.size
        if assignment.shape != (k,) or not np.issubdtype(assignment.dtype, np.integer):
            raise RuntimeError(
                f"assigner returned shape {assignment.shape} dtype "
                f"{assignment.dtype} for a batch of {k}"
            )
        if k and (assignment.min() < 0 or assignment.max() >= stream.num_vms):
            raise RuntimeError("assigner placed a cloudlet outside the fleet")
        # The same unbuffered fold the streaming engine uses, so the
        # fleet's running backlog matches an offline replay bit-for-bit.
        np.add.at(self.backlog, assignment, batch.cloudlet_length * self._inv_capacity[assignment])
        np.add.at(self.counts, assignment, 1)
        self.offset += k
        self.requests += 1
        if _TEL.enabled:
            _TEL.count("serve.requests")
            _TEL.count("serve.batch_size", k)
        return Placement(fleet=self.spec.name, offset=offset, placements=assignment)

    def observe_latency(self, seconds: float) -> None:
        self.latency.observe(seconds)
        if _TEL.enabled and self.latency.count % _GAUGE_EVERY == 0:
            self._export_gauges()

    def _export_gauges(self) -> None:
        _TEL.gauge(f"serve.{self.spec.name}.latency_p50_ms", self.latency.percentile_ms(50))
        _TEL.gauge(f"serve.{self.spec.name}.latency_p99_ms", self.latency.percentile_ms(99))

    def describe(self) -> dict[str, Any]:
        stats = self.stats()
        stats["manifest"] = self.manifest.to_dict()
        return stats

    def stats(self) -> dict[str, Any]:
        if _TEL.enabled and self.latency.count:
            self._export_gauges()
        info = self.assigner.info()
        return {
            **self.spec.to_dict(),
            "fingerprint": self.manifest.fingerprint(),
            "requests": self.requests,
            "cloudlets": self.offset,
            "latency_p50_ms": self.latency.percentile_ms(50),
            "latency_p99_ms": self.latency.percentile_ms(99),
            "backlog_max_s": float(self.backlog.max()),
            "backlog_mean_s": float(self.backlog.mean()),
            **({"estimated_makespan": info["estimated_makespan"]} if "estimated_makespan" in info else {}),
        }


class SchedulerService:
    """Fleet registry plus the submission entry point the HTTP layer calls.

    Thread-safe: a single lock serialises submissions, which *defines* the
    admission order that the determinism guarantee is stated against.
    """

    def __init__(self) -> None:
        self._fleets: dict[str, Fleet] = {}
        self._lock = threading.Lock()

    def add_fleet(self, spec: FleetSpec) -> Fleet:
        with self._lock:
            if spec.name in self._fleets:
                raise ServeError(409, "duplicate-fleet", f"fleet {spec.name!r} exists")
            fleet = Fleet(spec)
            self._fleets[spec.name] = fleet
            return fleet

    def fleet(self, name: str) -> Fleet:
        try:
            return self._fleets[name]
        except KeyError:
            raise ServeError(
                404, "unknown-fleet",
                f"no fleet {name!r}; configured: {sorted(self._fleets)}",
            ) from None

    @property
    def fleet_names(self) -> list[str]:
        return sorted(self._fleets)

    def submit(
        self, fleet_name: str, payload: "SubmissionBatch | Mapping[str, Any]"
    ) -> Placement:
        batch = (
            payload
            if isinstance(payload, SubmissionBatch)
            else parse_submission(payload)
        )
        with self._lock:
            return self.fleet(fleet_name).submit(batch)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "fleets": [self._fleets[name].stats() for name in sorted(self._fleets)]
            }


def concat_batches(batches: "list[SubmissionBatch]") -> SubmissionBatch:
    """Merge per-request batches into one column set, preserving order."""
    if not batches:
        raise ValueError("need at least one batch")
    return SubmissionBatch(
        cloudlet_length=np.concatenate([b.cloudlet_length for b in batches]),
        cloudlet_pes=np.concatenate([b.cloudlet_pes for b in batches]),
        cloudlet_file_size=np.concatenate([b.cloudlet_file_size for b in batches]),
        cloudlet_output_size=np.concatenate([b.cloudlet_output_size for b in batches]),
    )


def offline_assignments(
    spec: FleetSpec,
    batch: SubmissionBatch,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    shards: "int | None" = None,
) -> np.ndarray:
    """The offline streaming engine's placements for these cloudlets.

    Builds the same fleet from the same seed, binds the submitted columns
    in admission order, and runs
    :class:`~repro.cloud.fast.StreamingSimulation` in collect mode.  The
    differential suite asserts the returned assignment is bit-identical
    to the live service's concatenated placements, for any ``chunk_size``
    and shard count.
    """
    from repro.cloud.fast import StreamingSimulation

    stream = spec.fleet_stream().with_cloudlets(
        batch.cloudlet_length,
        cloudlet_pes=batch.cloudlet_pes,
        cloudlet_file_size=batch.cloudlet_file_size,
        cloudlet_output_size=batch.cloudlet_output_size,
        chunk_size=chunk_size,
    )
    result = StreamingSimulation(
        stream,
        make_streaming_scheduler(spec.scheduler),
        seed=spec.seed,
        collect=True,
        shards=shards,
        shard_parallel=False,
    ).run()
    return result.assignment


__all__ = [
    "SERVABLE_SCHEDULERS",
    "FleetSpec",
    "Placement",
    "LatencyWindow",
    "Fleet",
    "SchedulerService",
    "concat_batches",
    "offline_assignments",
]
