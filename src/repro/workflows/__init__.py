"""Workflow (DAG) scheduling extension.

The paper's related work is dominated by *workflow* scheduling — PSO for
workflow applications (Pandey et al. [18]), deadline-based workflow
provisioning (Rodriguez & Buyya [23]), QoS-constrained workflows (Chen &
Zhang [3]).  This subpackage provides the substrate those works assume:

* :mod:`repro.workflows.dag` — an immutable DAG workload model on top of
  ``networkx`` plus generators (layered, fork-join, random);
* :mod:`repro.workflows.schedulers` — list schedulers for DAGs, including
  HEFT (Heterogeneous Earliest Finish Time);
* :mod:`repro.workflows.broker` — a dependency-aware broker that releases
  each task into the DES only when its parents have completed and their
  output data has been transferred.
"""

from repro.workflows.broker import WorkflowResult, WorkflowSimulation, workflow_costs
from repro.workflows.dag import (
    WorkflowSpec,
    WorkflowTask,
    fork_join_workflow,
    layered_workflow,
    random_workflow,
)
from repro.workflows.schedulers import (
    DeadlineWorkflowScheduler,
    HeftScheduler,
    RoundRobinWorkflowScheduler,
    WorkflowScheduler,
)

__all__ = [
    "WorkflowTask",
    "WorkflowSpec",
    "layered_workflow",
    "fork_join_workflow",
    "random_workflow",
    "WorkflowScheduler",
    "HeftScheduler",
    "RoundRobinWorkflowScheduler",
    "WorkflowSimulation",
    "WorkflowResult",
    "workflow_costs",
    "DeadlineWorkflowScheduler",
]
