"""Dependency-aware workflow execution on the DES engine.

:class:`WorkflowBroker` releases each task only when every parent has
finished and its output has been transferred; :class:`WorkflowSimulation`
wires a workflow + scenario + workflow scheduler into the kernel and
reduces the run to a :class:`WorkflowResult`.

Transfer model: an edge carrying ``data`` MB delays the child by
``data / bw_child`` seconds when parent and child run on different VMs
(zero when co-located or when the child VM has no bandwidth attribute),
matching the Eq. 6 convention of pricing transfers at the consumer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cloud.cloudlet import Cloudlet, CloudletStatus
from repro.cloud.datacenter import Datacenter
from repro.cloud.simulation import build_hosts_for_datacenter
from repro.cloud.vm import Vm
from repro.core.engine import Simulation
from repro.core.entity import Entity
from repro.core.eventqueue import Event
from repro.core.tags import EventTag
from repro.workloads.spec import ScenarioSpec
from repro.workflows.dag import WorkflowSpec
from repro.workflows.schedulers import WorkflowScheduler


class WorkflowBroker(Entity):
    """Submits workflow tasks as their dependencies complete."""

    def __init__(
        self,
        name: str,
        workflow: WorkflowSpec,
        scenario: ScenarioSpec,
        vms: list[Vm],
        assignment: np.ndarray,
        vm_placement: dict[int, int],
    ) -> None:
        super().__init__(name)
        self.workflow = workflow
        self.scenario = scenario
        self.vms = vms
        self.assignment = np.asarray(assignment, dtype=np.int64)
        self.vm_placement = dict(vm_placement)
        self.cloudlets = [
            Cloudlet(
                cloudlet_id=t.task_id,
                length=t.length,
                pes=t.pes,
                file_size=t.file_size,
                output_size=t.output_size,
            )
            for t in workflow.tasks
        ]
        n = workflow.num_tasks
        self._remaining_parents = np.zeros(n, dtype=np.int64)
        for _, v, _ in workflow.edges:
            self._remaining_parents[v] += 1
        self._ready_time = np.zeros(n)
        self.finish = np.full(n, -1.0)
        self.start_times = np.full(n, -1.0)
        self.released = np.zeros(n, dtype=bool)
        self.transfer_seconds_total = 0.0
        self._acks_outstanding = 0
        self._done = 0

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        self._acks_outstanding = len(self.vms)
        for idx, vm in enumerate(self.vms):
            self.send(self.vm_placement[idx], 0.0, EventTag.VM_CREATE, data=vm)

    def process_event(self, event: Event) -> None:
        if event.tag is EventTag.VM_CREATE_ACK:
            self._process_ack(event)
        elif event.tag is EventTag.TIMER:
            self._submit(int(event.data))
        elif event.tag is EventTag.CLOUDLET_RETURN:
            self._process_return(event)
        else:
            raise ValueError(f"{self.name}: unexpected event tag {event.tag!r}")

    def _process_ack(self, event: Event) -> None:
        vm, success = event.data
        if not success:
            raise RuntimeError(f"{self.name}: datacenter rejected vm {vm.vm_id}")
        self._acks_outstanding -= 1
        if self._acks_outstanding == 0:
            for t in self.workflow.entry_tasks():
                self._release(t)

    def _release(self, task: int) -> None:
        """Schedule task submission at its data-ready time."""
        if self.released[task]:
            raise RuntimeError(f"task {task} released twice")
        self.released[task] = True
        delay = max(0.0, self._ready_time[task] - self.now)
        self.schedule_self(delay, EventTag.TIMER, data=task)

    def _submit(self, task: int) -> None:
        cloudlet = self.cloudlets[task]
        vm_idx = int(self.assignment[task])
        cloudlet.vm_id = self.vms[vm_idx].vm_id
        self.send_now(self.vm_placement[vm_idx], EventTag.CLOUDLET_SUBMIT, data=cloudlet)

    def _transfer_seconds(self, parent: int, child: int, data: float) -> float:
        if self.assignment[parent] == self.assignment[child]:
            return 0.0
        bw = self.scenario.vms[int(self.assignment[child])].bw
        return data / bw if bw > 0 else 0.0

    def _process_return(self, event: Event) -> None:
        cloudlet: Cloudlet = event.data
        if cloudlet.status is CloudletStatus.FAILED:
            raise RuntimeError(f"{self.name}: task {cloudlet.cloudlet_id} failed")
        task = cloudlet.cloudlet_id
        self.finish[task] = cloudlet.finish_time
        self.start_times[task] = cloudlet.exec_start_time
        self._done += 1
        for child, data in self.workflow.children(task):
            transfer = self._transfer_seconds(task, child, data)
            self.transfer_seconds_total += transfer
            self._ready_time[child] = max(
                self._ready_time[child], cloudlet.finish_time + transfer
            )
            self._remaining_parents[child] -= 1
            if self._remaining_parents[child] == 0:
                self._release(child)

    @property
    def all_finished(self) -> bool:
        return self._done == self.workflow.num_tasks


def workflow_costs(
    workflow: WorkflowSpec, scenario: ScenarioSpec, assignment: np.ndarray
) -> np.ndarray:
    """Per-task processing cost under the Table VII model.

    Same pricing as the batch metric (Section VI-C4): CPU seconds at the
    datacenter CPU rate, plus the assigned VM's RAM/storage footprint and
    the task's file transfer priced at the datacenter unit costs.
    """
    arr = scenario.arrays()
    vm = np.asarray(assignment, dtype=np.int64)
    dc = arr.vm_datacenter[vm]
    lengths = np.array([t.length for t in workflow.tasks])
    files = np.array([t.file_size + t.output_size for t in workflow.tasks])
    return (
        arr.dc_cost_per_cpu[dc] * lengths / arr.vm_mips[vm]
        + arr.dc_cost_per_mem[dc] * arr.vm_ram[vm]
        + arr.dc_cost_per_storage[dc] * arr.vm_size[vm]
        + arr.dc_cost_per_bw[dc] * files
    )


@dataclass
class WorkflowResult:
    """Outcome of one workflow execution."""

    workflow_name: str
    scheduler_name: str
    #: wall-clock seconds the workflow scheduler spent deciding.
    scheduling_time: float
    #: simulated completion time of the last task.
    makespan: float
    #: critical-path lower bound at the fastest VM's speed.
    critical_path_bound: float
    #: serial execution time on the fastest VM (speedup denominator).
    serial_time: float
    assignment: np.ndarray
    start_times: np.ndarray
    finish_times: np.ndarray
    #: total simulated seconds spent on cross-VM data transfers.
    transfer_seconds: float
    #: Table VII processing cost summed over tasks.
    total_cost: float = 0.0
    events_processed: int = 0
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Serial-on-fastest-VM time over achieved makespan."""
        return self.serial_time / self.makespan if self.makespan > 0 else float("inf")

    @property
    def efficiency_vs_bound(self) -> float:
        """Critical-path bound over achieved makespan (1.0 = optimal)."""
        return self.critical_path_bound / self.makespan if self.makespan > 0 else 1.0


class WorkflowSimulation:
    """Run one workflow scheduler on (workflow, scenario) through the DES."""

    def __init__(
        self,
        workflow: WorkflowSpec,
        scenario: ScenarioSpec,
        scheduler: WorkflowScheduler,
    ) -> None:
        self.workflow = workflow
        self.scenario = scenario
        self.scheduler = scheduler

    def run(self) -> WorkflowResult:
        workflow, scenario = self.workflow, self.scenario

        t0 = time.perf_counter()
        assignment = self.scheduler.schedule_checked(workflow, scenario)
        scheduling_time = time.perf_counter() - t0

        sim = Simulation()
        datacenters: list[Datacenter] = []
        for dc_idx, dc_spec in enumerate(scenario.datacenters):
            dc = Datacenter(
                name=f"dc-{dc_idx}",
                hosts=build_hosts_for_datacenter(scenario, dc_idx),
                characteristics=dc_spec.characteristics,
            )
            sim.register(dc)
            datacenters.append(dc)
        vms = [spec.build(vm_id=i) for i, spec in enumerate(scenario.vms)]
        broker = WorkflowBroker(
            name="workflow-broker",
            workflow=workflow,
            scenario=scenario,
            vms=vms,
            assignment=assignment,
            vm_placement={
                i: datacenters[scenario.vm_datacenter[i]].id for i in range(len(vms))
            },
        )
        sim.register(broker)
        sim.run()
        if not broker.all_finished:
            raise RuntimeError("workflow drained with unfinished tasks (dependency bug)")

        fastest = float(max(v.mips * v.pes for v in scenario.vms))
        serial = float(sum(t.length for t in workflow.tasks) / fastest)
        return WorkflowResult(
            workflow_name=workflow.name,
            scheduler_name=self.scheduler.name,
            scheduling_time=scheduling_time,
            makespan=float(broker.finish.max()),
            critical_path_bound=workflow.critical_path_seconds(fastest),
            serial_time=serial,
            assignment=assignment,
            start_times=broker.start_times,
            finish_times=broker.finish,
            transfer_seconds=broker.transfer_seconds_total,
            total_cost=float(workflow_costs(workflow, scenario, assignment).sum()),
            events_processed=sim.events_processed,
            info={"engine": "workflow-des"},
        )


__all__ = ["WorkflowBroker", "WorkflowResult", "WorkflowSimulation", "workflow_costs"]
