"""Workflow DAG model and generators.

A workflow is a set of tasks (cloudlet-like: MI length, file sizes) plus
directed data dependencies: edge ``(u, v, data_mb)`` means task ``v`` needs
``data_mb`` of ``u``'s output, transferred over the consumer VM's bandwidth
when the two tasks land on different VMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import networkx as nx
import numpy as np

from repro.core.rng import spawn_rng


@dataclass(frozen=True, slots=True)
class WorkflowTask:
    """One node of a workflow DAG."""

    task_id: int
    length: float
    pes: int = 1
    file_size: float = 0.0
    output_size: float = 0.0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"task length must be positive, got {self.length}")
        if self.pes < 1:
            raise ValueError(f"task pes must be >= 1, got {self.pes}")
        if min(self.file_size, self.output_size) < 0:
            raise ValueError("task file sizes must be non-negative")


@dataclass(frozen=True)
class WorkflowSpec:
    """An immutable workflow: tasks + data-dependency edges.

    Attributes
    ----------
    name:
        Label used in reports.
    tasks:
        Tasks with ids ``0 .. n-1`` in index order.
    edges:
        ``(parent_id, child_id, data_mb)`` triples; the graph must be a DAG.
    """

    name: str
    tasks: tuple[WorkflowTask, ...]
    edges: tuple[tuple[int, int, float], ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("workflow requires at least one task")
        for i, task in enumerate(self.tasks):
            if task.task_id != i:
                raise ValueError(
                    f"task ids must be 0..n-1 in order; index {i} holds id {task.task_id}"
                )
        n = len(self.tasks)
        seen: set[tuple[int, int]] = set()
        for u, v, data in self.edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) references unknown tasks")
            if u == v:
                raise ValueError(f"self-loop on task {u}")
            if (u, v) in seen:
                raise ValueError(f"duplicate edge ({u}, {v})")
            if data < 0:
                raise ValueError(f"edge ({u}, {v}) has negative data {data}")
            seen.add((u, v))
        if not nx.is_directed_acyclic_graph(self.graph()):
            raise ValueError("workflow edges contain a cycle")

    # -- graph views -------------------------------------------------------------

    def graph(self) -> nx.DiGraph:
        """``networkx`` view (rebuilt per call; cache at the caller)."""
        g = nx.DiGraph()
        g.add_nodes_from(range(len(self.tasks)))
        g.add_weighted_edges_from(self.edges, weight="data")
        return g

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def parents(self, task_id: int) -> Iterator[tuple[int, float]]:
        """(parent id, data MB) pairs feeding ``task_id``."""
        for u, v, data in self.edges:
            if v == task_id:
                yield u, data

    def children(self, task_id: int) -> Iterator[tuple[int, float]]:
        """(child id, data MB) pairs consuming ``task_id``'s output."""
        for u, v, data in self.edges:
            if u == task_id:
                yield v, data

    def entry_tasks(self) -> list[int]:
        """Tasks with no parents."""
        with_parents = {v for _, v, _ in self.edges}
        return [t for t in range(self.num_tasks) if t not in with_parents]

    def topological_order(self) -> list[int]:
        """One valid execution order."""
        return list(nx.topological_sort(self.graph()))

    def critical_path_seconds(self, mips: float, bandwidth: float | None = None) -> float:
        """Lower bound on the makespan at uniform speed ``mips``.

        Longest path through the DAG counting execution (``length/mips``)
        and, when ``bandwidth`` is given, worst-case data transfer on every
        edge.
        """
        if mips <= 0:
            raise ValueError(f"mips must be positive, got {mips}")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        g = self.graph()
        finish = np.zeros(self.num_tasks)
        for t in nx.topological_sort(g):
            start = 0.0
            for u, _, data in ((u, v, d["data"]) for u, v, d in g.in_edges(t, data=True)):
                transfer = 0.0 if bandwidth is None else data / bandwidth
                start = max(start, finish[u] + transfer)
            finish[t] = start + self.tasks[t].length / mips
        return float(finish.max())


# -- generators --------------------------------------------------------------------


def _sample_lengths(rng: np.random.Generator, n: int, length_range: tuple[float, float]) -> np.ndarray:
    low, high = length_range
    if not 0 < low <= high:
        raise ValueError(f"invalid length range {length_range}")
    return rng.uniform(low, high, size=n)


def layered_workflow(
    num_layers: int,
    width: int,
    seed: int | None = 0,
    length_range: tuple[float, float] = (1000.0, 20000.0),
    data_range: tuple[float, float] = (10.0, 200.0),
    name: str | None = None,
) -> WorkflowSpec:
    """A layered (pipeline-of-stages) DAG: every task feeds the next layer."""
    if num_layers < 1 or width < 1:
        raise ValueError("num_layers and width must be >= 1")
    rng = spawn_rng(seed, "workflow/layered")
    n = num_layers * width
    lengths = _sample_lengths(rng, n, length_range)
    tasks = tuple(
        WorkflowTask(task_id=i, length=float(lengths[i]), file_size=300.0, output_size=300.0)
        for i in range(n)
    )
    edges: list[tuple[int, int, float]] = []
    for layer in range(num_layers - 1):
        for a in range(width):
            for b in range(width):
                u = layer * width + a
                v = (layer + 1) * width + b
                edges.append((u, v, float(rng.uniform(*data_range))))
    return WorkflowSpec(
        name=name or f"layered-{num_layers}x{width}", tasks=tasks, edges=tuple(edges)
    )


def fork_join_workflow(
    branches: int,
    seed: int | None = 0,
    length_range: tuple[float, float] = (1000.0, 20000.0),
    data_range: tuple[float, float] = (10.0, 200.0),
    name: str | None = None,
) -> WorkflowSpec:
    """Fork-join: one source fans out to ``branches`` tasks, one sink joins."""
    if branches < 1:
        raise ValueError("branches must be >= 1")
    rng = spawn_rng(seed, "workflow/forkjoin")
    n = branches + 2
    lengths = _sample_lengths(rng, n, length_range)
    tasks = tuple(
        WorkflowTask(task_id=i, length=float(lengths[i]), file_size=300.0, output_size=300.0)
        for i in range(n)
    )
    edges: list[tuple[int, int, float]] = []
    sink = n - 1
    for b in range(1, branches + 1):
        edges.append((0, b, float(rng.uniform(*data_range))))
        edges.append((b, sink, float(rng.uniform(*data_range))))
    return WorkflowSpec(name=name or f"forkjoin-{branches}", tasks=tasks, edges=tuple(edges))


def random_workflow(
    num_tasks: int,
    edge_probability: float = 0.15,
    seed: int | None = 0,
    length_range: tuple[float, float] = (1000.0, 20000.0),
    data_range: tuple[float, float] = (10.0, 200.0),
    name: str | None = None,
) -> WorkflowSpec:
    """Random DAG: each forward pair ``(i, j>i)`` is an edge with probability
    ``edge_probability`` (upper-triangular construction, always acyclic)."""
    if num_tasks < 1:
        raise ValueError("num_tasks must be >= 1")
    if not 0 <= edge_probability <= 1:
        raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = spawn_rng(seed, "workflow/random")
    lengths = _sample_lengths(rng, num_tasks, length_range)
    tasks = tuple(
        WorkflowTask(task_id=i, length=float(lengths[i]), file_size=300.0, output_size=300.0)
        for i in range(num_tasks)
    )
    edges: list[tuple[int, int, float]] = []
    for i in range(num_tasks):
        for j in range(i + 1, num_tasks):
            if rng.random() < edge_probability:
                edges.append((i, j, float(rng.uniform(*data_range))))
    return WorkflowSpec(
        name=name or f"random-{num_tasks}", tasks=tasks, edges=tuple(edges)
    )


__all__ = [
    "WorkflowTask",
    "WorkflowSpec",
    "layered_workflow",
    "fork_join_workflow",
    "random_workflow",
]
