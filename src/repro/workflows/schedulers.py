"""Workflow (DAG) schedulers.

Static list schedulers producing a task→VM assignment before execution:

* :class:`RoundRobinWorkflowScheduler` — cyclic baseline;
* :class:`HeftScheduler` — Heterogeneous Earliest Finish Time (Topcuoglu
  et al.), the standard against which the cited cloud workflow works
  evaluate.  Tasks are ranked by *upward rank* (mean execution + mean
  communication along the longest downstream path) and placed, in rank
  order, on the VM minimising their earliest finish time, accounting for
  data-transfer delays from already-placed parents.

The schedulers are deliberately insertion-free (a VM executes its tasks in
placement order); this matches the space-shared FIFO execution model of the
DES broker, so predicted and simulated finish times line up exactly on
single-PE fleets.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.workloads.spec import ScenarioSpec
from repro.workflows.dag import WorkflowSpec


class WorkflowScheduler(abc.ABC):
    """Maps every workflow task to a VM index."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Registry-style scheduler name."""

    @abc.abstractmethod
    def schedule(self, workflow: WorkflowSpec, scenario: ScenarioSpec) -> np.ndarray:
        """Return an ``int64`` array: task index → VM index."""

    def schedule_checked(self, workflow: WorkflowSpec, scenario: ScenarioSpec) -> np.ndarray:
        assignment = np.asarray(self.schedule(workflow, scenario), dtype=np.int64)
        if assignment.shape != (workflow.num_tasks,):
            raise ValueError(
                f"assignment shape {assignment.shape} != ({workflow.num_tasks},)"
            )
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= scenario.num_vms
        ):
            raise ValueError("assignment contains out-of-range VM indices")
        return assignment


class RoundRobinWorkflowScheduler(WorkflowScheduler):
    """Cyclic placement in topological order."""

    @property
    def name(self) -> str:
        return "workflow-roundrobin"

    def schedule(self, workflow: WorkflowSpec, scenario: ScenarioSpec) -> np.ndarray:
        order = workflow.topological_order()
        assignment = np.empty(workflow.num_tasks, dtype=np.int64)
        for position, task in enumerate(order):
            assignment[task] = position % scenario.num_vms
        return assignment


class HeftScheduler(WorkflowScheduler):
    """Heterogeneous Earliest Finish Time."""

    @property
    def name(self) -> str:
        return "heft"

    def schedule(self, workflow: WorkflowSpec, scenario: ScenarioSpec) -> np.ndarray:
        arr = scenario.arrays()
        capacity = arr.vm_mips * arr.vm_pes  # (m,)
        mean_capacity = float(capacity.mean())
        mean_bw = float(arr.vm_bw[arr.vm_bw > 0].mean()) if (arr.vm_bw > 0).any() else 0.0

        ranks = self._upward_ranks(workflow, mean_capacity, mean_bw)
        order = sorted(range(workflow.num_tasks), key=lambda t: -ranks[t])

        m = scenario.num_vms
        vm_ready = np.zeros(m)
        finish = np.zeros(workflow.num_tasks)
        assignment = np.full(workflow.num_tasks, -1, dtype=np.int64)
        parents = {
            t: list(workflow.parents(t)) for t in range(workflow.num_tasks)
        }
        for t in order:
            exec_times = workflow.tasks[t].length / capacity  # (m,)
            # Data-ready time on each VM given already-placed parents.
            ready = vm_ready.copy()
            for parent, data in parents[t]:
                if assignment[parent] < 0:
                    raise RuntimeError(
                        "HEFT rank order placed a child before its parent; "
                        "workflow ranks are inconsistent"
                    )
                arrival = np.where(
                    np.arange(m) == assignment[parent],
                    finish[parent],
                    finish[parent]
                    + np.where(arr.vm_bw > 0, data / np.maximum(arr.vm_bw, 1e-12), 0.0),
                )
                ready = np.maximum(ready, arrival)
            eft = ready + exec_times
            j = int(np.argmin(eft))
            assignment[t] = j
            finish[t] = eft[j]
            vm_ready[j] = eft[j]
        return assignment

    @staticmethod
    def _upward_ranks(
        workflow: WorkflowSpec, mean_capacity: float, mean_bw: float
    ) -> np.ndarray:
        """Classic HEFT upward rank with mean costs."""
        ranks = np.zeros(workflow.num_tasks)
        children = {
            t: list(workflow.children(t)) for t in range(workflow.num_tasks)
        }
        for t in reversed(workflow.topological_order()):
            mean_exec = workflow.tasks[t].length / mean_capacity
            downstream = 0.0
            for child, data in children[t]:
                comm = data / mean_bw if mean_bw > 0 else 0.0
                downstream = max(downstream, comm + ranks[child])
            ranks[t] = mean_exec + downstream
        return ranks


class DeadlineWorkflowScheduler(WorkflowScheduler):
    """Deadline-distributed cost-aware workflow scheduler.

    After Rodriguez & Buyya's deadline-based provisioning (the paper's
    reference [23]), simplified to the static fleet of this study: the
    workflow deadline is distributed over tasks in proportion to their
    upward-rank share of the critical path, and each task (in rank order)
    takes the *cheapest* VM whose earliest finish meets its sub-deadline —
    falling back to the earliest-finishing VM when none does.

    A loose deadline therefore buys HBO-like cost savings; a tight one
    collapses to HEFT-like behaviour.

    Parameters
    ----------
    deadline:
        Absolute workflow deadline in simulated seconds.  ``None``
        synthesizes ``slack_factor ×`` the critical-path time at the mean
        fleet speed.
    slack_factor:
        Slack used when synthesizing the deadline.
    """

    def __init__(self, deadline: float | None = None, slack_factor: float = 2.0) -> None:
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if slack_factor <= 0:
            raise ValueError(f"slack_factor must be positive, got {slack_factor}")
        self.deadline = deadline
        self.slack_factor = slack_factor

    @property
    def name(self) -> str:
        return "workflow-deadline"

    def schedule(self, workflow: WorkflowSpec, scenario: ScenarioSpec) -> np.ndarray:
        arr = scenario.arrays()
        capacity = arr.vm_mips * arr.vm_pes
        mean_capacity = float(capacity.mean())
        mean_bw = float(arr.vm_bw[arr.vm_bw > 0].mean()) if (arr.vm_bw > 0).any() else 0.0

        ranks = HeftScheduler._upward_ranks(workflow, mean_capacity, mean_bw)
        total_path = float(ranks.max())
        deadline = (
            self.deadline
            if self.deadline is not None
            else self.slack_factor * workflow.critical_path_seconds(mean_capacity, None)
        )
        # Sub-deadline: the fraction of the critical path still ahead of a
        # task maps to the fraction of the budget it may consume.
        sub_deadline = {
            t: deadline * (1.0 - (ranks[t] - workflow.tasks[t].length / mean_capacity) / total_path)
            if total_path > 0
            else deadline
            for t in range(workflow.num_tasks)
        }

        dc = arr.vm_datacenter
        # $ of running one second on each VM plus its fixed footprint.
        vm_cost_rate = arr.dc_cost_per_cpu[dc] / (arr.vm_mips * arr.vm_pes)
        vm_fixed = (
            arr.dc_cost_per_mem[dc] * arr.vm_ram
            + arr.dc_cost_per_storage[dc] * arr.vm_size
        )

        m = scenario.num_vms
        order = sorted(range(workflow.num_tasks), key=lambda t: -ranks[t])
        vm_ready = np.zeros(m)
        finish = np.zeros(workflow.num_tasks)
        assignment = np.full(workflow.num_tasks, -1, dtype=np.int64)
        parents = {t: list(workflow.parents(t)) for t in range(workflow.num_tasks)}
        for t in order:
            exec_times = workflow.tasks[t].length / capacity
            ready = vm_ready.copy()
            for parent, data in parents[t]:
                arrival = np.where(
                    np.arange(m) == assignment[parent],
                    finish[parent],
                    finish[parent]
                    + np.where(arr.vm_bw > 0, data / np.maximum(arr.vm_bw, 1e-12), 0.0),
                )
                ready = np.maximum(ready, arrival)
            eft = ready + exec_times
            cost = vm_cost_rate * workflow.tasks[t].length + vm_fixed
            meets = eft <= sub_deadline[t] + 1e-9
            if meets.any():
                candidates = np.flatnonzero(meets)
                j = int(candidates[np.argmin(cost[candidates])])
            else:
                j = int(np.argmin(eft))
            assignment[t] = j
            finish[t] = eft[j]
            vm_ready[j] = eft[j]
        return assignment


__all__ = [
    "WorkflowScheduler",
    "RoundRobinWorkflowScheduler",
    "HeftScheduler",
    "DeadlineWorkflowScheduler",
]
