"""Workload and scenario generation.

``spec`` holds the value objects (VM / cloudlet / datacenter specs and the
:class:`~repro.workloads.spec.ScenarioSpec` bundle).  ``homogeneous`` and
``heterogeneous`` encode the paper's two experimental setups (Tables III-VII).
``synthetic`` provides a general distribution-driven generator used by the
extension experiments, and ``traces`` round-trips scenarios through CSV/JSON
for offline workloads.  ``streaming`` generates the same scenarios one
fixed-size chunk at a time (bit-identical columns, bounded memory) for the
paper-scale streaming engine.
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BatchArrivals,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    UniformArrivals,
)
from repro.workloads.heterogeneous import heterogeneous_scenario
from repro.workloads.homogeneous import homogeneous_scenario
from repro.workloads.spec import (
    CloudletSpec,
    DatacenterSpec,
    ScenarioSpec,
    VmSpec,
)
from repro.workloads.streaming import (
    DEFAULT_CHUNK_SIZE,
    ScenarioChunks,
    heterogeneous_stream,
    homogeneous_stream,
)
from repro.workloads.synthetic import (
    DistributionSpec,
    SyntheticWorkloadBuilder,
)
from repro.workloads.timeline import (
    Burst,
    Drift,
    RateChange,
    RateRamp,
    Timeline,
    TimelineArrivals,
    Trigger,
    VmFault,
    parse_duration,
    parse_time,
    timeline_from_dict,
)
from repro.workloads.tracelike import diurnal_arrivals_for, tracelike_scenario
from repro.workloads.traces import load_scenario, save_scenario

__all__ = [
    "VmSpec",
    "CloudletSpec",
    "DatacenterSpec",
    "ScenarioSpec",
    "homogeneous_scenario",
    "heterogeneous_scenario",
    "ScenarioChunks",
    "homogeneous_stream",
    "heterogeneous_stream",
    "DEFAULT_CHUNK_SIZE",
    "DistributionSpec",
    "SyntheticWorkloadBuilder",
    "save_scenario",
    "load_scenario",
    "ArrivalProcess",
    "BatchArrivals",
    "UniformArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "tracelike_scenario",
    "diurnal_arrivals_for",
    "Timeline",
    "TimelineArrivals",
    "RateChange",
    "RateRamp",
    "Burst",
    "VmFault",
    "Drift",
    "Trigger",
    "parse_time",
    "parse_duration",
    "timeline_from_dict",
]
