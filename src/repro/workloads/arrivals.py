"""Cloudlet arrival processes.

The paper submits every cloudlet at t=0 (batch mode), but motivates the
schedulers by their ability to "adapt to changes along with defined
demand".  These processes generate per-cloudlet arrival times so the online
extension (``repro.cloud.online``) can exercise exactly that: steady
Poisson streams, fixed-rate streams, and bursty on/off load.

All processes are deterministic given ``(rng, n)`` and return a
non-decreasing float array of length ``n``.
"""

from __future__ import annotations

import abc

import numpy as np


class ArrivalProcess(abc.ABC):
    """Generates arrival times for a batch of cloudlets."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Return ``n`` non-decreasing arrival times starting at >= 0."""

    def _validate_n(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")


class BatchArrivals(ArrivalProcess):
    """Everything arrives at one instant (the paper's setting)."""

    def __init__(self, at: float = 0.0) -> None:
        if at < 0:
            raise ValueError(f"arrival instant must be non-negative, got {at}")
        self.at = at

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        self._validate_n(n)
        return np.full(n, self.at)


class UniformArrivals(ArrivalProcess):
    """Evenly spaced arrivals: one every ``interval`` seconds."""

    def __init__(self, interval: float, start: float = 0.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        self.interval = interval
        self.start = start

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        self._validate_n(n)
        return self.start + np.arange(n) * self.interval


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate`` cloudlets per second."""

    def __init__(self, rate: float, start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        self.rate = rate
        self.start = start

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        self._validate_n(n)
        gaps = rng.exponential(1.0 / self.rate, size=n)
        return self.start + np.cumsum(gaps)


class BurstyArrivals(ArrivalProcess):
    """On/off load: bursts of ``burst_size`` arrivals, silent gaps between.

    Within a burst, arrivals are Poisson at ``burst_rate``; bursts start
    every ``period`` seconds.  Models the "extreme load" spikes the paper's
    stress narrative describes.
    """

    def __init__(
        self, burst_size: int, burst_rate: float, period: float, start: float = 0.0
    ) -> None:
        if burst_size < 1:
            raise ValueError(f"burst_size must be >= 1, got {burst_size}")
        if burst_rate <= 0 or period <= 0:
            raise ValueError("burst_rate and period must be positive")
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        self.burst_size = burst_size
        self.burst_rate = burst_rate
        self.period = period
        self.start = start

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        self._validate_n(n)
        times = np.empty(n)
        filled = 0
        burst_index = 0
        while filled < n:
            count = min(self.burst_size, n - filled)
            offset = self.start + burst_index * self.period
            gaps = rng.exponential(1.0 / self.burst_rate, size=count)
            burst_times = offset + np.cumsum(gaps)
            times[filled : filled + count] = burst_times
            filled += count
            burst_index += 1
        return np.maximum.accumulate(times)


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated Poisson arrivals (day/night load cycles).

    The instantaneous rate is
    ``base_rate * (1 + amplitude * sin(2π t / period))``, sampled exactly
    with Lewis & Shedler thinning against the peak rate.  ``amplitude``
    must lie in [0, 1) so the rate stays positive.
    """

    def __init__(
        self, base_rate: float, period: float, amplitude: float = 0.8
    ) -> None:
        if base_rate <= 0 or period <= 0:
            raise ValueError("base_rate and period must be positive")
        if not 0 <= amplitude < 1:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        self.base_rate = base_rate
        self.period = period
        self.amplitude = amplitude

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        return self.base_rate * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period)
        )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        self._validate_n(n)
        peak = self.base_rate * (1.0 + self.amplitude)
        times = np.empty(n)
        t = 0.0
        filled = 0
        while filled < n:
            t += float(rng.exponential(1.0 / peak))
            if rng.random() < self.rate_at(t) / peak:
                times[filled] = t
                filled += 1
        return times


__all__ = [
    "ArrivalProcess",
    "BatchArrivals",
    "UniformArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
]
