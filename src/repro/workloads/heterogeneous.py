"""The heterogeneous scenario (paper Tables V, VI & VII).

VMs: MIPS uniform in [500, 4000]; other attributes as in Table V.
Cloudlets: length uniform in [1000, 20000]; 300 MB in/out files.
Datacenters: unit costs drawn uniformly from the Table VII ranges
(memory 0.01-0.05, storage 0.001-0.004, bandwidth 0.01-0.05,
processing fixed at 3).

The paper reduces the environment to 50-950 VMs and up to 5 000 cloudlets.
"""

from __future__ import annotations

from repro.cloud.characteristics import DatacenterCharacteristics
from repro.core.rng import spawn_rng
from repro.workloads.spec import CloudletSpec, DatacenterSpec, ScenarioSpec, VmSpec

#: Table V ranges/constants.
VM_MIPS_RANGE = (500.0, 4000.0)
VM_SIZE = 5000.0
VM_RAM = 512.0
VM_BW = 500.0

#: Table VI ranges/constants.
CLOUDLET_LENGTH_RANGE = (1000.0, 20000.0)
CLOUDLET_FILE_SIZE = 300.0
CLOUDLET_OUTPUT_SIZE = 300.0

#: Table VII ranges (the paper prints them high-to-low; stored low-to-high).
COST_PER_MEM_RANGE = (0.01, 0.05)
COST_PER_STORAGE_RANGE = (0.001, 0.004)
COST_PER_BW_RANGE = (0.01, 0.05)
COST_PER_CPU = 3.0


def heterogeneous_scenario(
    num_vms: int,
    num_cloudlets: int,
    num_datacenters: int = 4,
    seed: int | None = 0,
    name: str | None = None,
) -> ScenarioSpec:
    """Build the paper's heterogeneous scenario.

    Parameters
    ----------
    num_vms:
        Number of VMs with uniformly random MIPS (paper sweep: 50-950).
    num_cloudlets:
        Number of cloudlets with uniformly random lengths (paper: up to
        5 000).
    num_datacenters:
        Number of datacenters with independently drawn Table VII prices.
        Four keeps HBO's datacenter ranking meaningful at every sweep point.
    seed:
        Root seed; VM, cloudlet and datacenter draws use independent
        derived streams so changing e.g. ``num_cloudlets`` does not reshuffle
        the VM fleet.
    """
    if num_vms < 1 or num_cloudlets < 1 or num_datacenters < 1:
        raise ValueError("num_vms, num_cloudlets and num_datacenters must be >= 1")
    if num_datacenters > num_vms:
        raise ValueError("cannot have more datacenters than VMs")

    vm_rng = spawn_rng(seed, "hetero/vms")
    cl_rng = spawn_rng(seed, "hetero/cloudlets")
    dc_rng = spawn_rng(seed, "hetero/datacenters")

    datacenters = tuple(
        DatacenterSpec(
            characteristics=DatacenterCharacteristics(
                cost_per_mem=float(dc_rng.uniform(*COST_PER_MEM_RANGE)),
                cost_per_storage=float(dc_rng.uniform(*COST_PER_STORAGE_RANGE)),
                cost_per_bw=float(dc_rng.uniform(*COST_PER_BW_RANGE)),
                cost_per_cpu=COST_PER_CPU,
            ),
            host_pes=64,
            host_mips=VM_MIPS_RANGE[1],
            host_ram=64 * VM_RAM,
            host_bw=64 * VM_BW,
            host_storage=64 * VM_SIZE * max(1, num_vms // num_datacenters // 64 + 1),
        )
        for _ in range(num_datacenters)
    )
    mips = vm_rng.uniform(*VM_MIPS_RANGE, size=num_vms)
    vms = tuple(
        VmSpec(mips=float(m), pes=1, ram=VM_RAM, bw=VM_BW, size=VM_SIZE) for m in mips
    )
    lengths = cl_rng.uniform(*CLOUDLET_LENGTH_RANGE, size=num_cloudlets)
    cloudlets = tuple(
        CloudletSpec(
            length=float(length),
            pes=1,
            file_size=CLOUDLET_FILE_SIZE,
            output_size=CLOUDLET_OUTPUT_SIZE,
        )
        for length in lengths
    )
    vm_datacenter = tuple(i % num_datacenters for i in range(num_vms))
    return ScenarioSpec(
        name=name or f"heterogeneous-{num_vms}vms-{num_cloudlets}cl",
        datacenters=datacenters,
        vms=vms,
        cloudlets=cloudlets,
        vm_datacenter=vm_datacenter,
        seed=seed,
    )


__all__ = [
    "heterogeneous_scenario",
    "VM_MIPS_RANGE",
    "CLOUDLET_LENGTH_RANGE",
    "COST_PER_MEM_RANGE",
    "COST_PER_STORAGE_RANGE",
    "COST_PER_BW_RANGE",
    "COST_PER_CPU",
]
