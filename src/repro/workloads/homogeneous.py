"""The homogeneous scenario (paper Tables III & IV).

Every VM: 1000 MIPS, 1 PE, 512 MB RAM, 500 Mbit/s, 5000 MB image.
Every cloudlet: 250 MI, 1 PE, 300 MB in/out files.

The paper sweeps 1 000-100 000 VMs against 1 000 000 cloudlets; both counts
are parameters here so the sweep can be run scaled down (see DESIGN.md §2).
"""

from __future__ import annotations

from repro.cloud.characteristics import DatacenterCharacteristics
from repro.workloads.spec import CloudletSpec, DatacenterSpec, ScenarioSpec, VmSpec

#: Table III values.
HOMOGENEOUS_VM = VmSpec(mips=1000.0, pes=1, ram=512.0, bw=500.0, size=5000.0)
#: Table IV values.
HOMOGENEOUS_CLOUDLET = CloudletSpec(length=250.0, pes=1, file_size=300.0, output_size=300.0)


def homogeneous_scenario(
    num_vms: int,
    num_cloudlets: int,
    num_datacenters: int = 2,
    seed: int | None = 0,
    name: str | None = None,
) -> ScenarioSpec:
    """Build the paper's homogeneous scenario.

    Parameters
    ----------
    num_vms:
        Number of identical VMs (paper: 1 000-100 000).
    num_cloudlets:
        Number of identical cloudlets (paper: 1 000 000).
    num_datacenters:
        Datacenters the VMs are spread over round-robin.  The paper does not
        state a count; two is the minimum that exercises HBO's
        datacenter-ranking step without changing any other scheduler.
    seed:
        Recorded in the spec; the homogeneous generator itself is
        deterministic.
    """
    if num_vms < 1 or num_cloudlets < 1 or num_datacenters < 1:
        raise ValueError("num_vms, num_cloudlets and num_datacenters must be >= 1")
    if num_datacenters > num_vms:
        raise ValueError("cannot have more datacenters than VMs")

    # Identical pricing everywhere: cost plays no role in this scenario.
    characteristics = DatacenterCharacteristics(
        cost_per_mem=0.05, cost_per_storage=0.001, cost_per_bw=0.0, cost_per_cpu=3.0
    )
    vms_per_dc = -(-num_vms // num_datacenters)  # ceil division
    datacenters = tuple(
        DatacenterSpec(
            characteristics=characteristics,
            host_pes=64,
            host_mips=HOMOGENEOUS_VM.mips,
            host_ram=64 * HOMOGENEOUS_VM.ram,
            host_bw=64 * HOMOGENEOUS_VM.bw,
            host_storage=64 * HOMOGENEOUS_VM.size * max(1, vms_per_dc // 64 + 1),
        )
        for _ in range(num_datacenters)
    )
    vms = tuple(HOMOGENEOUS_VM for _ in range(num_vms))
    cloudlets = tuple(HOMOGENEOUS_CLOUDLET for _ in range(num_cloudlets))
    vm_datacenter = tuple(i % num_datacenters for i in range(num_vms))
    return ScenarioSpec(
        name=name or f"homogeneous-{num_vms}vms-{num_cloudlets}cl",
        datacenters=datacenters,
        vms=vms,
        cloudlets=cloudlets,
        vm_datacenter=vm_datacenter,
        seed=seed,
    )


__all__ = ["homogeneous_scenario", "HOMOGENEOUS_VM", "HOMOGENEOUS_CLOUDLET"]
