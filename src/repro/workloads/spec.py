"""Scenario value objects.

A :class:`ScenarioSpec` is a complete, immutable description of one
experiment instance: the datacenters (with Table VII unit costs), the VMs
(Table III / V) and the cloudlets (Table IV / VI), plus which datacenter
each VM lives in.  Schedulers see scenarios only through the array views
(:meth:`ScenarioSpec.arrays`), which is also what keeps the hot paths
numpy-vectorizable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.cloud.characteristics import DatacenterCharacteristics
from repro.cloud.cloudlet import Cloudlet
from repro.cloud.vm import Vm


@dataclass(frozen=True, slots=True)
class VmSpec:
    """Immutable description of a VM (Table III / Table V row)."""

    mips: float
    pes: int = 1
    ram: float = 512.0
    bw: float = 500.0
    size: float = 5000.0

    def __post_init__(self) -> None:
        if self.mips <= 0 or self.pes < 1:
            raise ValueError(f"invalid VmSpec: mips={self.mips}, pes={self.pes}")
        if min(self.ram, self.bw, self.size) < 0:
            raise ValueError("VmSpec ram/bw/size must be non-negative")

    def build(self, vm_id: int, cloudlet_scheduler=None) -> Vm:
        """Materialise a runtime :class:`~repro.cloud.vm.Vm`."""
        return Vm(
            vm_id=vm_id,
            mips=self.mips,
            pes=self.pes,
            ram=self.ram,
            bw=self.bw,
            size=self.size,
            cloudlet_scheduler=cloudlet_scheduler,
        )


@dataclass(frozen=True, slots=True)
class CloudletSpec:
    """Immutable description of a cloudlet (Table IV / Table VI row)."""

    length: float
    pes: int = 1
    file_size: float = 300.0
    output_size: float = 300.0

    def __post_init__(self) -> None:
        if self.length <= 0 or self.pes < 1:
            raise ValueError(f"invalid CloudletSpec: length={self.length}, pes={self.pes}")
        if min(self.file_size, self.output_size) < 0:
            raise ValueError("CloudletSpec file sizes must be non-negative")

    def build(self, cloudlet_id: int) -> Cloudlet:
        """Materialise a runtime :class:`~repro.cloud.cloudlet.Cloudlet`."""
        return Cloudlet(
            cloudlet_id=cloudlet_id,
            length=self.length,
            pes=self.pes,
            file_size=self.file_size,
            output_size=self.output_size,
        )


@dataclass(frozen=True, slots=True)
class DatacenterSpec:
    """Immutable description of a datacenter: pricing + host sizing.

    Host sizing is synthesized at build time so that the datacenter can hold
    its share of VMs: the simulation façade computes per-datacenter host
    requirements from the VM specs it must place.
    """

    characteristics: DatacenterCharacteristics = field(
        default_factory=DatacenterCharacteristics
    )
    #: PEs per host created in this datacenter.
    host_pes: int = 32
    #: MIPS per host PE (must cover the fastest VM assigned here).
    host_mips: float = 4000.0
    #: host RAM in MB.
    host_ram: float = 65536.0
    #: host bandwidth in Mbit/s.
    host_bw: float = 100_000.0
    #: host storage in MB.
    host_storage: float = 10_000_000.0

    def __post_init__(self) -> None:
        if self.host_pes < 1 or self.host_mips <= 0:
            raise ValueError("DatacenterSpec requires host_pes >= 1 and host_mips > 0")


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete experiment instance.

    Attributes
    ----------
    name:
        Scenario label used in reports.
    datacenters:
        Datacenter descriptions (pricing + host sizing).
    vms:
        VM descriptions, index-aligned with ``vm_datacenter``.
    cloudlets:
        Cloudlet descriptions.
    vm_datacenter:
        For each VM index, the index of the datacenter hosting it.
    seed:
        Seed the scenario was generated from (metadata; generators also
        derive their streams from it).
    """

    name: str
    datacenters: tuple[DatacenterSpec, ...]
    vms: tuple[VmSpec, ...]
    cloudlets: tuple[CloudletSpec, ...]
    vm_datacenter: tuple[int, ...]
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.datacenters:
            raise ValueError("scenario requires at least one datacenter")
        if not self.vms:
            raise ValueError("scenario requires at least one VM")
        if not self.cloudlets:
            raise ValueError("scenario requires at least one cloudlet")
        if len(self.vm_datacenter) != len(self.vms):
            raise ValueError("vm_datacenter must be index-aligned with vms")
        n_dc = len(self.datacenters)
        for vm_idx, dc_idx in enumerate(self.vm_datacenter):
            if not 0 <= dc_idx < n_dc:
                raise ValueError(f"vm {vm_idx} mapped to invalid datacenter {dc_idx}")

    # -- sizes -------------------------------------------------------------------

    @property
    def num_vms(self) -> int:
        return len(self.vms)

    @property
    def num_cloudlets(self) -> int:
        return len(self.cloudlets)

    @property
    def num_datacenters(self) -> int:
        return len(self.datacenters)

    def vms_in_datacenter(self, dc_idx: int) -> Iterator[int]:
        """VM indices placed in datacenter ``dc_idx``."""
        for vm_idx, dc in enumerate(self.vm_datacenter):
            if dc == dc_idx:
                yield vm_idx

    # -- array views ---------------------------------------------------------------

    def arrays(self) -> "ScenarioArrays":
        """Vectorised view of the scenario (cached per instance)."""
        cached = getattr(self, "_arrays_cache", None)
        if cached is None:
            cached = ScenarioArrays.from_spec(self)
            object.__setattr__(self, "_arrays_cache", cached)
        return cached


@dataclass(frozen=True)
class ScenarioArrays:
    """Numpy views over a :class:`ScenarioSpec` for vectorised consumers."""

    cloudlet_length: np.ndarray
    cloudlet_pes: np.ndarray
    cloudlet_file_size: np.ndarray
    cloudlet_output_size: np.ndarray
    vm_mips: np.ndarray
    vm_pes: np.ndarray
    vm_ram: np.ndarray
    vm_bw: np.ndarray
    vm_size: np.ndarray
    vm_datacenter: np.ndarray
    dc_cost_per_mem: np.ndarray
    dc_cost_per_storage: np.ndarray
    dc_cost_per_bw: np.ndarray
    dc_cost_per_cpu: np.ndarray

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "ScenarioArrays":
        return cls(
            cloudlet_length=np.array([c.length for c in spec.cloudlets], dtype=float),
            cloudlet_pes=np.array([c.pes for c in spec.cloudlets], dtype=np.int64),
            cloudlet_file_size=np.array([c.file_size for c in spec.cloudlets], dtype=float),
            cloudlet_output_size=np.array(
                [c.output_size for c in spec.cloudlets], dtype=float
            ),
            vm_mips=np.array([v.mips for v in spec.vms], dtype=float),
            vm_pes=np.array([v.pes for v in spec.vms], dtype=np.int64),
            vm_ram=np.array([v.ram for v in spec.vms], dtype=float),
            vm_bw=np.array([v.bw for v in spec.vms], dtype=float),
            vm_size=np.array([v.size for v in spec.vms], dtype=float),
            vm_datacenter=np.array(spec.vm_datacenter, dtype=np.int64),
            dc_cost_per_mem=np.array(
                [d.characteristics.cost_per_mem for d in spec.datacenters], dtype=float
            ),
            dc_cost_per_storage=np.array(
                [d.characteristics.cost_per_storage for d in spec.datacenters], dtype=float
            ),
            dc_cost_per_bw=np.array(
                [d.characteristics.cost_per_bw for d in spec.datacenters], dtype=float
            ),
            dc_cost_per_cpu=np.array(
                [d.characteristics.cost_per_cpu for d in spec.datacenters], dtype=float
            ),
        )

    @property
    def num_cloudlets(self) -> int:
        return int(self.cloudlet_length.shape[0])

    @property
    def num_vms(self) -> int:
        return int(self.vm_mips.shape[0])

    @property
    def num_datacenters(self) -> int:
        return int(self.dc_cost_per_cpu.shape[0])

    def expected_exec_time(self, cloudlet_idx: int) -> np.ndarray:
        """Per-VM expected completion-time row ``d_ij`` (Eq. 6 of the paper).

        ``d_ij = length_i / (pes_j * mips_j) + file_size_i / bw_j``

        Bandwidth terms with ``bw_j == 0`` contribute zero (no transfer cost).
        """
        length = self.cloudlet_length[cloudlet_idx]
        infile = self.cloudlet_file_size[cloudlet_idx]
        compute = length / (self.vm_pes * self.vm_mips)
        with np.errstate(divide="ignore"):
            transfer = np.where(self.vm_bw > 0, infile / self.vm_bw, 0.0)
        return compute + transfer

    def exec_time_matrix(self) -> np.ndarray:
        """Full ``(num_cloudlets, num_vms)`` matrix of Eq. 6 values.

        Only suitable for scenarios where the product fits in memory; large
        sweeps use :meth:`expected_exec_time` row by row.
        """
        compute = np.outer(self.cloudlet_length, 1.0 / (self.vm_pes * self.vm_mips))
        with np.errstate(divide="ignore"):
            inv_bw = np.where(self.vm_bw > 0, 1.0 / self.vm_bw, 0.0)
        transfer = np.outer(self.cloudlet_file_size, inv_bw)
        return compute + transfer

    def take(self, cloudlet_indices, vm_indices) -> "ScenarioArrays":
        """Sub-problem view: the selected cloudlets over the selected VMs.

        Local index ``j`` of the result refers to global index
        ``vm_indices[j]`` (and likewise for cloudlets) — callers own the
        mapping back.  Datacenter cost vectors are kept whole because
        ``vm_datacenter`` still indexes into them.  Used by failure-aware
        rescheduling to re-run a scheduler over the surviving fleet.
        """
        ci = np.asarray(cloudlet_indices, dtype=np.int64)
        vi = np.asarray(vm_indices, dtype=np.int64)
        if ci.size == 0 or vi.size == 0:
            raise ValueError("sub-problem needs at least one cloudlet and one VM")
        return ScenarioArrays(
            cloudlet_length=self.cloudlet_length[ci],
            cloudlet_pes=self.cloudlet_pes[ci],
            cloudlet_file_size=self.cloudlet_file_size[ci],
            cloudlet_output_size=self.cloudlet_output_size[ci],
            vm_mips=self.vm_mips[vi],
            vm_pes=self.vm_pes[vi],
            vm_ram=self.vm_ram[vi],
            vm_bw=self.vm_bw[vi],
            vm_size=self.vm_size[vi],
            vm_datacenter=self.vm_datacenter[vi],
            dc_cost_per_mem=self.dc_cost_per_mem,
            dc_cost_per_storage=self.dc_cost_per_storage,
            dc_cost_per_bw=self.dc_cost_per_bw,
            dc_cost_per_cpu=self.dc_cost_per_cpu,
        )


__all__ = [
    "VmSpec",
    "CloudletSpec",
    "DatacenterSpec",
    "ScenarioSpec",
    "ScenarioArrays",
]
