"""Chunked scenario generation for the streaming execution path.

The paper's homogeneous study (Figs. 4-5) runs 1 000 000 cloudlets; the
monolithic :class:`~repro.workloads.spec.ScenarioSpec` route materialises
every cloudlet as a Python object plus fourteen full-length numpy columns.
:class:`ScenarioChunks` instead keeps only the O(num_vms) VM/datacenter
columns resident and synthesises the cloudlet columns chunk by chunk, so
the peak footprint of a sweep point is O(num_vms + chunk_size) regardless
of the cloudlet count.

Chunking never changes the workload: every chunk pass re-derives its
random streams from the same ``(seed, label)`` pair the monolithic
generators use, and ``numpy.random.Generator`` draws are consumed
sequentially, so the concatenation of the chunked columns is bit-for-bit
identical to the monolithic arrays (pinned by ``tests/properties``).

Example — chunked generation matches the monolithic arrays exactly::

    >>> import numpy as np
    >>> from repro.workloads.homogeneous import homogeneous_scenario
    >>> from repro.workloads.streaming import ScenarioChunks, homogeneous_stream
    >>> stream = homogeneous_stream(4, 10, chunk_size=3, seed=0)
    >>> stream.num_chunks
    4
    >>> spec = homogeneous_scenario(4, 10, seed=0)
    >>> chunks = [c.cloudlet_length for _, c in stream]
    >>> bool(np.array_equal(np.concatenate(chunks), spec.arrays().cloudlet_length))
    True
    >>> stream.name == spec.name
    True

Streams are re-iterable (each pass restarts the derived generators) and
picklable, so they ship to spawn-based sweep workers like specs do::

    >>> first = [c.cloudlet_length.sum() for _, c in stream]
    >>> second = [c.cloudlet_length.sum() for _, c in stream]
    >>> first == second
    True
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.cloud.characteristics import DatacenterCharacteristics
from repro.core.rng import spawn_rng
from repro.workloads.heterogeneous import (
    CLOUDLET_FILE_SIZE,
    CLOUDLET_LENGTH_RANGE,
    CLOUDLET_OUTPUT_SIZE,
    COST_PER_BW_RANGE,
    COST_PER_CPU,
    COST_PER_MEM_RANGE,
    COST_PER_STORAGE_RANGE,
    VM_BW,
    VM_MIPS_RANGE,
    VM_RAM,
    VM_SIZE,
)
from repro.workloads.homogeneous import HOMOGENEOUS_CLOUDLET, HOMOGENEOUS_VM
from repro.workloads.spec import (
    CloudletSpec,
    DatacenterSpec,
    ScenarioArrays,
    ScenarioSpec,
    VmSpec,
)

#: Default slice width of the streaming path.  64k cloudlets keep every
#: per-chunk temporary around half a megabyte while amortising numpy call
#: overhead; ``benchmarks/bench_paperscale_homogeneous.py`` sweeps this.
DEFAULT_CHUNK_SIZE = 65_536

#: cloudlet columns a chunk source must produce, in ScenarioArrays order.
_CLOUDLET_FIELDS = (
    "cloudlet_length",
    "cloudlet_pes",
    "cloudlet_file_size",
    "cloudlet_output_size",
)


class _ChunkPass:
    """One sequential pass over a cloudlet source (see ``open_pass``)."""

    def take(self, k: int) -> dict[str, np.ndarray]:  # pragma: no cover - protocol
        raise NotImplementedError


def _advance_uniform_draws(rng: np.random.Generator, count: int) -> None:
    """Skip exactly ``count`` ``rng.uniform`` outputs, bit-exactly.

    ``Generator.uniform`` consumes one 64-bit word per double, and PCG64's
    ``advance`` jumps the state by an output count, so advancing by
    ``count`` lands on the identical state a ``uniform(size=count)`` draw
    would leave behind (pinned in ``tests/properties``).  Bit generators
    without ``advance`` fall back to drawing and discarding in bounded
    blocks, which is slower but still exact.
    """
    if count <= 0:
        return
    advance = getattr(rng.bit_generator, "advance", None)
    if advance is not None:
        advance(count)
        return
    remaining = count  # pragma: no cover - non-PCG64 generators only
    while remaining > 0:  # pragma: no cover
        block = min(remaining, 1 << 20)
        rng.uniform(size=block)
        remaining -= block


@dataclass(frozen=True)
class ConstantCloudlets:
    """Cloudlet source for identical cloudlets (the homogeneous workload)."""

    length: float
    pes: int = 1
    file_size: float = 300.0
    output_size: float = 300.0

    def open_pass(self, seed: int | None, start: int = 0) -> _ChunkPass:
        source = self

        class Pass(_ChunkPass):
            def take(self, k: int) -> dict[str, np.ndarray]:
                return {
                    "cloudlet_length": np.full(k, source.length, dtype=float),
                    "cloudlet_pes": np.full(k, source.pes, dtype=np.int64),
                    "cloudlet_file_size": np.full(k, source.file_size, dtype=float),
                    "cloudlet_output_size": np.full(k, source.output_size, dtype=float),
                }

        return Pass()


@dataclass(frozen=True)
class UniformLengthCloudlets:
    """Cloudlet source drawing lengths uniformly (heterogeneous workload).

    Each pass spawns a fresh generator from ``(seed, rng_label)``; since
    ``Generator.uniform`` consumes exactly one state advance per output,
    chunked draws concatenate to the monolithic ``uniform(size=n)`` array
    bit-for-bit.
    """

    low: float
    high: float
    pes: int = 1
    file_size: float = 300.0
    output_size: float = 300.0
    rng_label: str = "hetero/cloudlets"

    def open_pass(self, seed: int | None, start: int = 0) -> _ChunkPass:
        source = self
        rng = spawn_rng(seed, self.rng_label)
        _advance_uniform_draws(rng, start)

        class Pass(_ChunkPass):
            def take(self, k: int) -> dict[str, np.ndarray]:
                return {
                    "cloudlet_length": rng.uniform(source.low, source.high, size=k),
                    "cloudlet_pes": np.full(k, source.pes, dtype=np.int64),
                    "cloudlet_file_size": np.full(k, source.file_size, dtype=float),
                    "cloudlet_output_size": np.full(k, source.output_size, dtype=float),
                }

        return Pass()


@dataclass(frozen=True)
class MaterializedCloudlets:
    """Cloudlet source slicing pre-built columns (``ScenarioChunks.from_spec``).

    Holds full-length columns, so it is *not* memory-bounded — it exists
    for differential tests and for chunking scenarios that were already
    materialised anyway.
    """

    cloudlet_length: np.ndarray
    cloudlet_pes: np.ndarray
    cloudlet_file_size: np.ndarray
    cloudlet_output_size: np.ndarray

    def open_pass(self, seed: int | None, start: int = 0) -> _ChunkPass:
        source = self

        class Pass(_ChunkPass):
            def __init__(self) -> None:
                self.cursor = start

            def take(self, k: int) -> dict[str, np.ndarray]:
                lo, hi = self.cursor, self.cursor + k
                self.cursor = hi
                return {name: getattr(source, name)[lo:hi] for name in _CLOUDLET_FIELDS}

        return Pass()


@dataclass(frozen=True)
class ScenarioChunks:
    """A scenario whose cloudlet columns are produced in fixed-size slices.

    VM and datacenter columns (O(num_vms + num_datacenters)) are resident;
    iterating yields ``(offset, ScenarioArrays)`` pairs whose cloudlet
    columns cover ``[offset, offset + chunk)`` and whose VM/datacenter
    columns are shared references to the resident arrays.  Instances are
    immutable, re-iterable and picklable.
    """

    name: str
    seed: int | None
    chunk_size: int
    num_cloudlets: int
    cloudlets: Any  # ConstantCloudlets | UniformLengthCloudlets | MaterializedCloudlets
    vm_mips: np.ndarray
    vm_pes: np.ndarray
    vm_ram: np.ndarray
    vm_bw: np.ndarray
    vm_size: np.ndarray
    vm_datacenter: np.ndarray
    dc_cost_per_mem: np.ndarray
    dc_cost_per_storage: np.ndarray
    dc_cost_per_bw: np.ndarray
    dc_cost_per_cpu: np.ndarray

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.num_cloudlets < 1:
            raise ValueError(f"num_cloudlets must be >= 1, got {self.num_cloudlets}")
        if self.vm_mips.shape[0] < 1:
            raise ValueError("stream requires at least one VM")

    # -- sizes --------------------------------------------------------------

    @property
    def num_vms(self) -> int:
        return int(self.vm_mips.shape[0])

    @property
    def num_datacenters(self) -> int:
        return int(self.dc_cost_per_cpu.shape[0])

    @property
    def num_chunks(self) -> int:
        return -(-self.num_cloudlets // self.chunk_size)  # ceil division

    # -- iteration ----------------------------------------------------------

    def chunk_offset(self, chunk_index: int) -> int:
        """First cloudlet index of chunk ``chunk_index``."""
        return chunk_index * self.chunk_size

    def __iter__(self) -> Iterator[tuple[int, ScenarioArrays]]:
        return self.iter_range(0, self.num_chunks)

    def iter_range(
        self, chunk_start: int, chunk_stop: int
    ) -> Iterator[tuple[int, ScenarioArrays]]:
        """Iterate chunks ``[chunk_start, chunk_stop)`` only.

        The underlying pass seeks straight to the range's first cloudlet
        (``open_pass(seed, start)``), so a shard can generate its slice
        without producing the preceding chunks — and the produced columns
        are bit-identical to the same chunks of a full pass (pinned in
        ``tests/properties``).
        """
        if not 0 <= chunk_start <= chunk_stop <= self.num_chunks:
            raise ValueError(
                f"chunk range [{chunk_start}, {chunk_stop}) outside "
                f"[0, {self.num_chunks})"
            )
        start = self.chunk_offset(chunk_start)
        stop = min(self.chunk_offset(chunk_stop), self.num_cloudlets)
        return self.iter_cloudlet_range(start, stop)

    def iter_cloudlet_range(
        self, start: int, stop: int
    ) -> Iterator[tuple[int, ScenarioArrays]]:
        """Iterate chunk-size slices of cloudlets ``[start, stop)``.

        Unlike :meth:`iter_range` the bounds need not be chunk-aligned:
        generation is keyed by absolute cloudlet position (``open_pass``
        seeks, and chunked draws concatenate bit-for-bit), so any slicing
        of the same range yields identical values.  Schedulers whose
        pre-passes follow non-chunk boundaries (HBO's contiguous cloudlet
        groups) read their ranges through this without materialising
        anything O(n).
        """
        if not 0 <= start <= stop <= self.num_cloudlets:
            raise ValueError(
                f"cloudlet range [{start}, {stop}) outside "
                f"[0, {self.num_cloudlets})"
            )
        offset = start
        chunk_pass = self.cloudlets.open_pass(self.seed, offset)
        while offset < stop:
            k = min(self.chunk_size, stop - offset)
            columns = chunk_pass.take(k)
            yield offset, ScenarioArrays(
                **columns,
                vm_mips=self.vm_mips,
                vm_pes=self.vm_pes,
                vm_ram=self.vm_ram,
                vm_bw=self.vm_bw,
                vm_size=self.vm_size,
                vm_datacenter=self.vm_datacenter,
                dc_cost_per_mem=self.dc_cost_per_mem,
                dc_cost_per_storage=self.dc_cost_per_storage,
                dc_cost_per_bw=self.dc_cost_per_bw,
                dc_cost_per_cpu=self.dc_cost_per_cpu,
            )
            offset += k

    def with_chunk_size(self, chunk_size: int) -> "ScenarioChunks":
        """The same workload re-sliced at a different chunk width."""
        from dataclasses import replace

        return replace(self, chunk_size=chunk_size)

    def with_cloudlets(
        self,
        cloudlet_length: np.ndarray,
        cloudlet_pes: "np.ndarray | None" = None,
        cloudlet_file_size: "np.ndarray | None" = None,
        cloudlet_output_size: "np.ndarray | None" = None,
        chunk_size: "int | None" = None,
    ) -> "ScenarioChunks":
        """The same fleet serving explicitly provided cloudlet columns.

        Swaps the cloudlet source for a :class:`MaterializedCloudlets`
        over the given columns (``pes`` defaults to 1, file/output sizes
        to 0) while the resident VM and datacenter arrays stay shared.
        The serving layer uses this to replay live submissions through
        the offline engines: the fleet keeps its name — and therefore its
        ``scheduler/{name}`` RNG stream — while the workload becomes
        whatever was submitted, in admission order.
        """
        from dataclasses import replace

        length = np.ascontiguousarray(cloudlet_length, dtype=float)
        if length.ndim != 1 or length.shape[0] < 1:
            raise ValueError("cloudlet_length must be a non-empty 1-D array")
        n = int(length.shape[0])

        def _column(values, default, dtype):
            if values is None:
                return np.full(n, default, dtype=dtype)
            out = np.ascontiguousarray(values, dtype=dtype)
            if out.shape != (n,):
                raise ValueError(
                    f"cloudlet column shape {out.shape} != ({n},)"
                )
            return out

        return replace(
            self,
            num_cloudlets=n,
            chunk_size=chunk_size if chunk_size is not None else self.chunk_size,
            cloudlets=MaterializedCloudlets(
                cloudlet_length=length,
                cloudlet_pes=_column(cloudlet_pes, 1, np.int64),
                cloudlet_file_size=_column(cloudlet_file_size, 0.0, float),
                cloudlet_output_size=_column(cloudlet_output_size, 0.0, float),
            ),
        )

    # -- conversions --------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: ScenarioSpec, chunk_size: int = DEFAULT_CHUNK_SIZE) -> "ScenarioChunks":
        """Chunked view over an already-materialised scenario.

        Shares the spec's columns (no copies), so this is for differential
        testing and convenience — it cannot reduce the footprint of a
        scenario that already exists.
        """
        arr = spec.arrays()
        return cls(
            name=spec.name,
            seed=spec.seed,
            chunk_size=chunk_size,
            num_cloudlets=spec.num_cloudlets,
            cloudlets=MaterializedCloudlets(
                cloudlet_length=arr.cloudlet_length,
                cloudlet_pes=arr.cloudlet_pes,
                cloudlet_file_size=arr.cloudlet_file_size,
                cloudlet_output_size=arr.cloudlet_output_size,
            ),
            vm_mips=arr.vm_mips,
            vm_pes=arr.vm_pes,
            vm_ram=arr.vm_ram,
            vm_bw=arr.vm_bw,
            vm_size=arr.vm_size,
            vm_datacenter=arr.vm_datacenter,
            dc_cost_per_mem=arr.dc_cost_per_mem,
            dc_cost_per_storage=arr.dc_cost_per_storage,
            dc_cost_per_bw=arr.dc_cost_per_bw,
            dc_cost_per_cpu=arr.dc_cost_per_cpu,
        )

    def to_spec(self) -> ScenarioSpec:
        """Materialise the full monolithic :class:`ScenarioSpec`.

        O(num_cloudlets) memory — this is the explicit escape hatch the
        in-memory-only schedulers (metaheuristics) fall back through.
        """
        columns = {name: [] for name in _CLOUDLET_FIELDS}
        for _, chunk in self:
            for name in _CLOUDLET_FIELDS:
                columns[name].append(getattr(chunk, name))
        length, pes, file_size, output_size = (
            np.concatenate(columns[name]) for name in _CLOUDLET_FIELDS
        )
        cloudlets = tuple(
            CloudletSpec(
                length=float(length[i]),
                pes=int(pes[i]),
                file_size=float(file_size[i]),
                output_size=float(output_size[i]),
            )
            for i in range(self.num_cloudlets)
        )
        vms = tuple(
            VmSpec(
                mips=float(self.vm_mips[i]),
                pes=int(self.vm_pes[i]),
                ram=float(self.vm_ram[i]),
                bw=float(self.vm_bw[i]),
                size=float(self.vm_size[i]),
            )
            for i in range(self.num_vms)
        )
        datacenters = tuple(
            DatacenterSpec(
                characteristics=DatacenterCharacteristics(
                    cost_per_mem=float(self.dc_cost_per_mem[d]),
                    cost_per_storage=float(self.dc_cost_per_storage[d]),
                    cost_per_bw=float(self.dc_cost_per_bw[d]),
                    cost_per_cpu=float(self.dc_cost_per_cpu[d]),
                )
            )
            for d in range(self.num_datacenters)
        )
        return ScenarioSpec(
            name=self.name,
            datacenters=datacenters,
            vms=vms,
            cloudlets=cloudlets,
            vm_datacenter=tuple(int(d) for d in self.vm_datacenter),
            seed=self.seed,
        )

    # -- identity -----------------------------------------------------------

    def digest(self) -> str:
        """SHA-256 digest of the full numeric content, chunk-size independent.

        Cloudlet columns are folded through one streaming sub-hasher per
        field during a single pass, then a master hash covers every field's
        ``(name, dtype, digest-or-bytes)`` in sorted field order — so two
        streams describing the same workload at different chunk sizes agree,
        and any value change anywhere changes the digest.  (The scheme
        differs from :func:`repro.cache.scenario_digest`; the cache never
        compares the two because the engine string differs.)
        """
        sub = {name: hashlib.sha256() for name in _CLOUDLET_FIELDS}
        dtypes: dict[str, str] = {}
        for _, chunk in self:
            for name in _CLOUDLET_FIELDS:
                column = np.ascontiguousarray(getattr(chunk, name))
                dtypes[name] = str(column.dtype)
                sub[name].update(column.tobytes())
        h = hashlib.sha256()
        static = {
            name: getattr(self, name)
            for name in (
                "vm_mips", "vm_pes", "vm_ram", "vm_bw", "vm_size", "vm_datacenter",
                "dc_cost_per_mem", "dc_cost_per_storage", "dc_cost_per_bw",
                "dc_cost_per_cpu",
            )
        }
        for name in sorted(set(_CLOUDLET_FIELDS) | set(static)):
            h.update(name.encode())
            if name in sub:
                h.update(dtypes[name].encode())
                h.update(sub[name].hexdigest().encode())
            else:
                column = np.ascontiguousarray(static[name])
                h.update(str(column.dtype).encode())
                h.update(column.tobytes())
        return h.hexdigest()

    def manifest_summary(self) -> dict[str, Any]:
        """Scenario summary for :func:`repro.obs.manifest.capture_manifest`."""
        return {
            "name": self.name,
            "num_vms": self.num_vms,
            "num_cloudlets": self.num_cloudlets,
            "num_datacenters": self.num_datacenters,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class ShardPlan:
    """One shard's contiguous chunk range within a :class:`ScenarioChunks`.

    Shards never split a chunk: the executor's fold is chunk-at-a-time, so
    aligning shard boundaries to chunk boundaries makes a shard boundary
    semantically identical to a chunk boundary.  ``start``/``stop`` are the
    cloudlet offsets covered, precomputed so planners and carry logic never
    re-derive them.
    """

    index: int
    num_shards: int
    chunk_start: int
    chunk_stop: int
    start: int
    stop: int

    @property
    def num_chunks(self) -> int:
        return self.chunk_stop - self.chunk_start

    @property
    def num_cloudlets(self) -> int:
        return self.stop - self.start


def plan_shards(stream: ScenarioChunks, shards: int) -> tuple[ShardPlan, ...]:
    """Split a stream into ≤ ``shards`` contiguous, balanced chunk ranges.

    Chunk counts follow ``np.array_split`` semantics (earlier shards get
    the remainder), empty shards are dropped, and the ranges partition
    ``[0, num_chunks)`` exactly — so executing the plans in index order and
    merging reproduces the serial pass.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    num_chunks = stream.num_chunks
    shards = min(shards, num_chunks)
    base, extra = divmod(num_chunks, shards)
    plans = []
    chunk_start = 0
    for index in range(shards):
        chunk_stop = chunk_start + base + (1 if index < extra else 0)
        plans.append(
            ShardPlan(
                index=index,
                num_shards=shards,
                chunk_start=chunk_start,
                chunk_stop=chunk_stop,
                start=stream.chunk_offset(chunk_start),
                stop=min(stream.chunk_offset(chunk_stop), stream.num_cloudlets),
            )
        )
        chunk_start = chunk_stop
    return tuple(plans)


def homogeneous_stream(
    num_vms: int,
    num_cloudlets: int,
    num_datacenters: int = 2,
    seed: int | None = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    name: str | None = None,
) -> ScenarioChunks:
    """Chunked form of :func:`~repro.workloads.homogeneous.homogeneous_scenario`.

    Same name, same seed, same columns bit-for-bit — only the cloudlet
    columns are produced lazily, so the paper's 10^6-cloudlet points fit
    in O(num_vms + chunk_size) memory.
    """
    if num_vms < 1 or num_cloudlets < 1 or num_datacenters < 1:
        raise ValueError("num_vms, num_cloudlets and num_datacenters must be >= 1")
    if num_datacenters > num_vms:
        raise ValueError("cannot have more datacenters than VMs")
    vm = HOMOGENEOUS_VM
    cl = HOMOGENEOUS_CLOUDLET
    return ScenarioChunks(
        name=name or f"homogeneous-{num_vms}vms-{num_cloudlets}cl",
        seed=seed,
        chunk_size=chunk_size,
        num_cloudlets=num_cloudlets,
        cloudlets=ConstantCloudlets(
            length=cl.length, pes=cl.pes,
            file_size=cl.file_size, output_size=cl.output_size,
        ),
        vm_mips=np.full(num_vms, vm.mips, dtype=float),
        vm_pes=np.full(num_vms, vm.pes, dtype=np.int64),
        vm_ram=np.full(num_vms, vm.ram, dtype=float),
        vm_bw=np.full(num_vms, vm.bw, dtype=float),
        vm_size=np.full(num_vms, vm.size, dtype=float),
        vm_datacenter=np.arange(num_vms, dtype=np.int64) % num_datacenters,
        # Identical pricing everywhere, matching homogeneous_scenario.
        dc_cost_per_mem=np.full(num_datacenters, 0.05),
        dc_cost_per_storage=np.full(num_datacenters, 0.001),
        dc_cost_per_bw=np.full(num_datacenters, 0.0),
        dc_cost_per_cpu=np.full(num_datacenters, 3.0),
    )


def heterogeneous_stream(
    num_vms: int,
    num_cloudlets: int,
    num_datacenters: int = 4,
    seed: int | None = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    name: str | None = None,
) -> ScenarioChunks:
    """Chunked form of :func:`~repro.workloads.heterogeneous.heterogeneous_scenario`.

    VM and datacenter draws use the same ``(seed, label)`` streams as the
    monolithic generator; cloudlet lengths are drawn chunk by chunk from
    the ``hetero/cloudlets`` stream, which concatenates to the monolithic
    draw bit-for-bit (sequential generator consumption).
    """
    if num_vms < 1 or num_cloudlets < 1 or num_datacenters < 1:
        raise ValueError("num_vms, num_cloudlets and num_datacenters must be >= 1")
    if num_datacenters > num_vms:
        raise ValueError("cannot have more datacenters than VMs")
    vm_rng = spawn_rng(seed, "hetero/vms")
    dc_rng = spawn_rng(seed, "hetero/datacenters")
    # Match the monolithic per-datacenter draw order exactly: mem, storage,
    # bw for datacenter 0, then datacenter 1, ...
    mem = np.empty(num_datacenters)
    storage = np.empty(num_datacenters)
    bw = np.empty(num_datacenters)
    for d in range(num_datacenters):
        mem[d] = dc_rng.uniform(*COST_PER_MEM_RANGE)
        storage[d] = dc_rng.uniform(*COST_PER_STORAGE_RANGE)
        bw[d] = dc_rng.uniform(*COST_PER_BW_RANGE)
    return ScenarioChunks(
        name=name or f"heterogeneous-{num_vms}vms-{num_cloudlets}cl",
        seed=seed,
        chunk_size=chunk_size,
        num_cloudlets=num_cloudlets,
        cloudlets=UniformLengthCloudlets(
            low=CLOUDLET_LENGTH_RANGE[0],
            high=CLOUDLET_LENGTH_RANGE[1],
            pes=1,
            file_size=CLOUDLET_FILE_SIZE,
            output_size=CLOUDLET_OUTPUT_SIZE,
        ),
        vm_mips=vm_rng.uniform(*VM_MIPS_RANGE, size=num_vms),
        vm_pes=np.ones(num_vms, dtype=np.int64),
        vm_ram=np.full(num_vms, VM_RAM),
        vm_bw=np.full(num_vms, VM_BW),
        vm_size=np.full(num_vms, VM_SIZE),
        vm_datacenter=np.arange(num_vms, dtype=np.int64) % num_datacenters,
        dc_cost_per_mem=mem,
        dc_cost_per_storage=storage,
        dc_cost_per_bw=bw,
        dc_cost_per_cpu=np.full(num_datacenters, COST_PER_CPU),
    )


__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ScenarioChunks",
    "ShardPlan",
    "plan_shards",
    "ConstantCloudlets",
    "UniformLengthCloudlets",
    "MaterializedCloudlets",
    "homogeneous_stream",
    "heterogeneous_stream",
]
