"""Distribution-driven synthetic workload builder.

The paper's two setups are special cases (constant and uniform draws), but
the extension experiments — burstiness ablations, skewed task mixes — need
richer shapes.  :class:`SyntheticWorkloadBuilder` assembles a
:class:`~repro.workloads.spec.ScenarioSpec` from named distributions,
validated and clipped to physical bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cloud.characteristics import DatacenterCharacteristics
from repro.core.rng import spawn_rng
from repro.workloads.spec import CloudletSpec, DatacenterSpec, ScenarioSpec, VmSpec

#: distribution name -> required parameter names
_SUPPORTED: Mapping[str, tuple[str, ...]] = {
    "constant": ("value",),
    "uniform": ("low", "high"),
    "normal": ("mean", "std"),
    "lognormal": ("mean", "sigma"),
    "pareto": ("shape", "scale"),
    "exponential": ("scale",),
    "bimodal": ("low", "high", "p_high"),
    "choice": ("values",),
}


@dataclass(frozen=True)
class DistributionSpec:
    """A named random distribution with parameters.

    Supported kinds: ``constant``, ``uniform``, ``normal``, ``lognormal``,
    ``pareto``, ``exponential``, ``bimodal`` (mixture of two constants) and
    ``choice`` (uniform over a finite set).
    """

    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _SUPPORTED:
            raise ValueError(
                f"unknown distribution {self.kind!r}; supported: {sorted(_SUPPORTED)}"
            )
        missing = [p for p in _SUPPORTED[self.kind] if p not in self.params]
        if missing:
            raise ValueError(f"distribution {self.kind!r} missing parameters {missing}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` samples."""
        p = self.params
        if self.kind == "constant":
            return np.full(size, float(p["value"]))  # type: ignore[arg-type]
        if self.kind == "uniform":
            return rng.uniform(float(p["low"]), float(p["high"]), size)  # type: ignore[arg-type]
        if self.kind == "normal":
            return rng.normal(float(p["mean"]), float(p["std"]), size)  # type: ignore[arg-type]
        if self.kind == "lognormal":
            return rng.lognormal(float(p["mean"]), float(p["sigma"]), size)  # type: ignore[arg-type]
        if self.kind == "pareto":
            shape = float(p["shape"])  # type: ignore[arg-type]
            scale = float(p["scale"])  # type: ignore[arg-type]
            return scale * (1.0 + rng.pareto(shape, size))
        if self.kind == "exponential":
            return rng.exponential(float(p["scale"]), size)  # type: ignore[arg-type]
        if self.kind == "bimodal":
            low = float(p["low"])  # type: ignore[arg-type]
            high = float(p["high"])  # type: ignore[arg-type]
            p_high = float(p["p_high"])  # type: ignore[arg-type]
            if not 0.0 <= p_high <= 1.0:
                raise ValueError(f"p_high must be a probability, got {p_high}")
            picks = rng.random(size) < p_high
            return np.where(picks, high, low)
        if self.kind == "choice":
            values = np.asarray(p["values"], dtype=float)
            if values.size == 0:
                raise ValueError("choice distribution needs at least one value")
            return rng.choice(values, size)
        raise AssertionError(f"unhandled kind {self.kind}")  # pragma: no cover


class SyntheticWorkloadBuilder:
    """Fluent builder for synthetic scenarios.

    Examples
    --------
    >>> spec = (
    ...     SyntheticWorkloadBuilder(seed=3)
    ...     .vms(10, mips=DistributionSpec("uniform", {"low": 500, "high": 4000}))
    ...     .cloudlets(100, length=DistributionSpec("pareto", {"shape": 2.0, "scale": 1000.0}))
    ...     .datacenters(2)
    ...     .build("pareto-mix")
    ... )
    >>> spec.num_vms, spec.num_cloudlets, spec.num_datacenters
    (10, 100, 2)
    """

    def __init__(self, seed: int | None = 0) -> None:
        self.seed = seed
        self._num_vms = 0
        self._num_cloudlets = 0
        self._num_datacenters = 1
        self._vm_mips = DistributionSpec("constant", {"value": 1000.0})
        self._vm_ram = DistributionSpec("constant", {"value": 512.0})
        self._vm_bw = DistributionSpec("constant", {"value": 500.0})
        self._vm_size = DistributionSpec("constant", {"value": 5000.0})
        self._cl_length = DistributionSpec("constant", {"value": 250.0})
        self._cl_file_size = DistributionSpec("constant", {"value": 300.0})
        self._cl_output_size = DistributionSpec("constant", {"value": 300.0})
        self._cost_per_mem = DistributionSpec("uniform", {"low": 0.01, "high": 0.05})
        self._cost_per_storage = DistributionSpec("uniform", {"low": 0.001, "high": 0.004})
        self._cost_per_bw = DistributionSpec("uniform", {"low": 0.01, "high": 0.05})
        self._cost_per_cpu = DistributionSpec("constant", {"value": 3.0})

    # -- fluent configuration ---------------------------------------------------

    def vms(
        self,
        count: int,
        mips: DistributionSpec | None = None,
        ram: DistributionSpec | None = None,
        bw: DistributionSpec | None = None,
        size: DistributionSpec | None = None,
    ) -> "SyntheticWorkloadBuilder":
        """Configure the VM fleet."""
        if count < 1:
            raise ValueError("need at least one VM")
        self._num_vms = count
        self._vm_mips = mips or self._vm_mips
        self._vm_ram = ram or self._vm_ram
        self._vm_bw = bw or self._vm_bw
        self._vm_size = size or self._vm_size
        return self

    def cloudlets(
        self,
        count: int,
        length: DistributionSpec | None = None,
        file_size: DistributionSpec | None = None,
        output_size: DistributionSpec | None = None,
    ) -> "SyntheticWorkloadBuilder":
        """Configure the cloudlet batch."""
        if count < 1:
            raise ValueError("need at least one cloudlet")
        self._num_cloudlets = count
        self._cl_length = length or self._cl_length
        self._cl_file_size = file_size or self._cl_file_size
        self._cl_output_size = output_size or self._cl_output_size
        return self

    def datacenters(
        self,
        count: int,
        cost_per_mem: DistributionSpec | None = None,
        cost_per_storage: DistributionSpec | None = None,
        cost_per_bw: DistributionSpec | None = None,
        cost_per_cpu: DistributionSpec | None = None,
    ) -> "SyntheticWorkloadBuilder":
        """Configure datacenter count and pricing distributions."""
        if count < 1:
            raise ValueError("need at least one datacenter")
        self._num_datacenters = count
        self._cost_per_mem = cost_per_mem or self._cost_per_mem
        self._cost_per_storage = cost_per_storage or self._cost_per_storage
        self._cost_per_bw = cost_per_bw or self._cost_per_bw
        self._cost_per_cpu = cost_per_cpu or self._cost_per_cpu
        return self

    # -- build -------------------------------------------------------------------

    def build(self, name: str = "synthetic") -> ScenarioSpec:
        """Sample every attribute and assemble the scenario."""
        if self._num_vms < 1:
            raise ValueError("call .vms(count) before .build()")
        if self._num_cloudlets < 1:
            raise ValueError("call .cloudlets(count) before .build()")
        if self._num_datacenters > self._num_vms:
            raise ValueError("cannot have more datacenters than VMs")

        vm_rng = spawn_rng(self.seed, "synthetic/vms")
        cl_rng = spawn_rng(self.seed, "synthetic/cloudlets")
        dc_rng = spawn_rng(self.seed, "synthetic/datacenters")

        def positive(dist: DistributionSpec, rng: np.random.Generator, size: int, floor: float) -> np.ndarray:
            return np.maximum(dist.sample(rng, size), floor)

        mips = positive(self._vm_mips, vm_rng, self._num_vms, 1.0)
        ram = positive(self._vm_ram, vm_rng, self._num_vms, 0.0)
        bw = positive(self._vm_bw, vm_rng, self._num_vms, 0.0)
        size = positive(self._vm_size, vm_rng, self._num_vms, 0.0)
        vms = tuple(
            VmSpec(mips=float(m), ram=float(r), bw=float(b), size=float(s))
            for m, r, b, s in zip(mips, ram, bw, size)
        )

        length = positive(self._cl_length, cl_rng, self._num_cloudlets, 1.0)
        file_size = positive(self._cl_file_size, cl_rng, self._num_cloudlets, 0.0)
        output_size = positive(self._cl_output_size, cl_rng, self._num_cloudlets, 0.0)
        cloudlets = tuple(
            CloudletSpec(length=float(ln), file_size=float(f), output_size=float(o))
            for ln, f, o in zip(length, file_size, output_size)
        )

        host_mips = float(mips.max())
        datacenters = tuple(
            DatacenterSpec(
                characteristics=DatacenterCharacteristics(
                    cost_per_mem=float(positive(self._cost_per_mem, dc_rng, 1, 0.0)[0]),
                    cost_per_storage=float(
                        positive(self._cost_per_storage, dc_rng, 1, 0.0)[0]
                    ),
                    cost_per_bw=float(positive(self._cost_per_bw, dc_rng, 1, 0.0)[0]),
                    cost_per_cpu=float(positive(self._cost_per_cpu, dc_rng, 1, 0.0)[0]),
                ),
                host_pes=64,
                host_mips=host_mips,
                host_ram=float(64 * ram.max() if ram.size else 0.0),
                host_bw=float(64 * bw.max() if bw.size else 0.0),
                host_storage=float(
                    64 * size.max() * max(1, self._num_vms // self._num_datacenters // 64 + 1)
                ),
            )
            for _ in range(self._num_datacenters)
        )
        vm_datacenter = tuple(i % self._num_datacenters for i in range(self._num_vms))
        return ScenarioSpec(
            name=name,
            datacenters=datacenters,
            vms=vms,
            cloudlets=cloudlets,
            vm_datacenter=vm_datacenter,
            seed=self.seed,
        )


__all__ = ["DistributionSpec", "SyntheticWorkloadBuilder"]
